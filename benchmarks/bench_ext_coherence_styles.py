"""Experiment A3 — extension: snoopy vs directory coherence, CPU scaling.

Section 4.1 says directory schemes "can be added with relative ease";
having added one (repro.compmodel.directory), this bench shows the
textbook crossover it exists for: snoopy broadcast costs are flat per
transaction but the single bus saturates with CPU count, while the
directory pays a lookup per miss yet scales on a crossbar fabric whose
transfers overlap.
"""

from __future__ import annotations

import pytest

from repro import Workbench, smp_node
from repro.analysis import format_table
from repro.core.results import ExperimentRecord
from repro.operations import MemType, load, store


def private_streaming(cpu: int, lines: int = 128, reps: int = 2) -> list:
    """Disjoint per-CPU regions: pure capacity traffic, no sharing."""
    base = 0x100000 * (cpu + 1)
    ops = []
    for _ in range(reps):
        for i in range(lines):
            ops.append(load(MemType.INT64, base + i * 32))
    return ops


def shared_readers(cpu: int, lines: int = 64, reps: int = 2) -> list:
    """All CPUs read one region (directory copysets grow)."""
    ops = []
    for _ in range(reps):
        for i in range(lines):
            ops.append(load(MemType.INT64, 0x200000 + i * 32))
    return ops


CONFIGS = [
    ("snoopy/bus", dict(coherence_style="snoopy", fabric="bus")),
    ("directory/bus", dict(coherence_style="directory", fabric="bus")),
    ("directory/crossbar", dict(coherence_style="directory",
                                fabric="crossbar")),
]


def run_experiment() -> list[dict]:
    rows = []
    for n_cpus in (2, 4, 8):
        for label, overrides in CONFIGS:
            machine = smp_node(n_cpus)
            for key, value in overrides.items():
                setattr(machine.node, key, value)
            machine.validate()
            wb = Workbench(machine)
            res = wb.run_smp([private_streaming(c) for c in range(n_cpus)])
            rows.append({
                "workload": "private",
                "style": label,
                "cpus": n_cpus,
                "cycles": res.total_cycles,
                "transactions": res.coherence_summary["transactions"],
            })
    return rows


@pytest.mark.benchmark(group="extension")
def test_coherence_style_scaling(benchmark, emit):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record = ExperimentRecord(
        "A3", "extension: snoopy/bus vs directory/bus vs "
        "directory/crossbar, private-data streaming, 2-8 CPUs")
    record.add_rows(rows)
    emit("A3_coherence_styles", format_table(
        rows, title="coherence style x fabric x CPU count:"), record)

    by = {(r["style"], r["cpus"]): r["cycles"] for r in rows}
    # Crossbar transfers overlap: at 8 CPUs it beats both bus variants.
    assert by[("directory/crossbar", 8)] < by[("snoopy/bus", 8)]
    assert by[("directory/crossbar", 8)] < by[("directory/bus", 8)]
    # On the same bus, the directory's lookup latency makes it at best
    # comparable to the snoop for uncontended private data.
    assert by[("directory/bus", 2)] >= by[("snoopy/bus", 2)] * 0.9
    # Crossbar scaling: doubling CPUs less than doubles runtime...
    assert by[("directory/crossbar", 8)] < 2 * by[("directory/crossbar", 4)]
    # ...while the saturated buses scale at best linearly.
    assert by[("snoopy/bus", 8)] >= 1.5 * by[("snoopy/bus", 4)]
