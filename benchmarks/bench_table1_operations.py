"""Experiment T1 — Table 1: the operation set.

Regenerates the paper's Table 1 by driving every computational and
communication operation through the models that consume it, reporting
the measured cost of each on the PowerPC-601-like node (computational
operations) and the generic multicomputer (communication operations).
The pytest-benchmark case times raw operation-execution throughput,
the Section-6 cost driver of detailed mode.
"""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer, powerpc601_node
from repro.analysis import format_table
from repro.compmodel import SingleNodeModel
from repro.core.results import ExperimentRecord
from repro.operations import (
    ArithType,
    MemType,
    add,
    arecv,
    asend,
    branch,
    call,
    compute,
    div,
    ifetch,
    load,
    load_const,
    mul,
    recv,
    ret,
    send,
    store,
    sub,
)

COMPUTATIONAL_ROWS = [
    ("load(mem-type, address)", load(MemType.FLOAT64, 0x1000),
     "accessing memory"),
    ("store(mem-type, address)", store(MemType.FLOAT64, 0x1008),
     "accessing memory"),
    ("load([f]constant)", load_const(MemType.FLOAT64),
     "accessing memory"),
    ("add(type)", add(ArithType.DOUBLE), "performing arithmetic"),
    ("sub(type)", sub(ArithType.DOUBLE), "performing arithmetic"),
    ("mul(type)", mul(ArithType.DOUBLE), "performing arithmetic"),
    ("div(type)", div(ArithType.DOUBLE), "performing arithmetic"),
    ("ifetch(address)", ifetch(0x400000), "instruction fetching"),
    ("branch(address)", branch(0x400040), "instruction fetching"),
    ("call(address)", call(0x400100), "instruction fetching"),
    ("ret(address)", ret(0x400104), "instruction fetching"),
]

COMMUNICATION_ROWS = [
    ("send(message-size, destination)", [send(1024, 1)], [recv(0)],
     "synchronous communication"),
    ("recv(source)", [send(1024, 1)], [recv(0)],
     "synchronous communication"),
    ("asend(message-size, destination)", [asend(1024, 1)], [arecv(0)],
     "asynchronous communication"),
    ("arecv(source)", [asend(1024, 1)], [arecv(0)],
     "asynchronous communication"),
    ("compute(duration)", [compute(500.0)], [],
     "computation"),
]


def measure_computational() -> list[dict]:
    rows = []
    for name, op, category in COMPUTATIONAL_ROWS:
        node = SingleNodeModel(powerpc601_node().node)
        # Cold then warm: report the steady-state (warm) cost.
        node.op_cycles(op)
        cost = node.op_cycles(op)
        rows.append({"operation": name, "category": category,
                     "warm_cycles": cost})
    return rows


def measure_communication() -> list[dict]:
    rows = []
    for name, ops0, ops1, category in COMMUNICATION_ROWS:
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        res = wb.run_comm_only([list(ops0), list(ops1), [], []])
        rows.append({"operation": name, "category": category,
                     "simulated_cycles": res.total_cycles})
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_reproduction(benchmark, emit):
    comp = benchmark.pedantic(measure_computational, rounds=1, iterations=1)
    comm = measure_communication()
    record = ExperimentRecord(
        "T1", "Table 1: the operation set, all 16 operations exercised")
    record.add_rows(comp)
    record.add_rows(comm)
    text = (format_table(comp, title="Computational operations "
                         "(PowerPC601 node, warm caches):")
            + "\n\n"
            + format_table(comm, title="Communication operations "
                           "(generic multicomputer):"))
    emit("T1_table1", text, record)
    assert len(comp) + len(comm) == 16
    assert all(r["warm_cycles"] > 0 for r in comp)


@pytest.mark.benchmark(group="table1")
def test_operation_execution_throughput(benchmark):
    """Raw detailed-mode op execution rate (ops/second on the host)."""
    ops = [ifetch(0x400000 + (i % 64) * 4) if i % 2 == 0
           else load(MemType.FLOAT64, 0x1000 + (i % 512) * 8)
           for i in range(10_000)]

    def run():
        node = SingleNodeModel(powerpc601_node().node)
        return node.run_trace(ops).cycles

    cycles = benchmark(run)
    assert cycles > 0
