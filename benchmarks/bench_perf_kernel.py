"""Kernel hot-path performance benchmark — the PR-6 trajectory record.

Measures the simulation hot path (Pearl kernel dispatch + batched
computational model + site-cached annotation translation) against the
seed per-op implementation, which stays selectable via
``REPRO_KERNEL=seed``.  Both dispatchers are proven byte-identical by
``tests/test_kernel_equivalence.py`` and ``tests/test_batch_equivalence``
properties, so this file measures *only* host speed.

Event metric
------------
One **event** is either

* a Pearl kernel event executed by the simulator
  (``Simulator.events_executed``: process resumptions, channel
  completions, timer fires), or
* one trace operation processed by a node model (ifetches, memory
  accesses, arithmetic, communication ops).

``events_per_sec = (kernel events + trace operations) / wall seconds``
over the S6a detailed-mode scenario (Section 6 of the paper): the
matmul/Jacobi/ping-pong mix on a T805-like 2x2 grid plus a stochastic
instruction-level workload on the PowerPC-601 node model.

Regeneration workflow
---------------------
Run on a quiet machine and commit the refreshed baseline::

    PYTHONPATH=src python benchmarks/bench_perf_kernel.py --repeats 5
    git add BENCH_kernel.json

CI gate (tiny scenario, machine-independent ratio check)::

    PYTHONPATH=src python benchmarks/bench_perf_kernel.py --check

``--check`` validates that the committed ``BENCH_kernel.json`` is
well-formed, re-times the tiny scenario under both kernels, and fails
(exit 1) if the measured fast/seed speedup ratio regressed more than
20% below the committed tiny-scenario baseline.  Comparing *ratios*
rather than absolute events/sec keeps the gate meaningful on CI
machines of any speed.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_JSON = REPO_ROOT / "BENCH_kernel.json"
SCHEMA = "repro-bench-kernel/1"
HOST_CLOCK_HZ = 2.0e9
#: --check fails when the measured tiny fast/seed ratio drops below
#: this fraction of the committed baseline ratio.
REGRESSION_TOLERANCE = 0.8

EVENTS_DEFINITION = (
    "kernel events executed by the Pearl simulator plus trace operations "
    "processed by the node models, divided by best-of-N wall seconds")

#: The recorded optimisation trajectory (aggregate S6a speedup vs seed).
PERF_TRAJECTORY = [
    {"stage": "seed", "aggregate_speedup": 1.0,
     "note": "per-op heap dispatch, per-op cost lookup, per-op "
             "annotation allocation"},
    {"stage": "kernel ring dispatch", "aggregate_speedup": 1.6,
     "note": "FastSimulator: same-time ready ring with preallocated "
             "slots and bound-method dispatch (pearl/kernel.py)"},
    {"stage": "batched computational model", "aggregate_speedup": 2.03,
     "note": "table-driven cost rows, inlined L1 lane, chunked "
             "InterleavedStream pulls, batch-flushed statistics "
             "(compmodel/batch.py)"},
    {"stage": "site-cached annotation ops", "aggregate_speedup": 2.6,
     "note": "AnnotationTranslator reuses the immutable per-site "
             "ifetch/loadc/arith/branch operations (tracegen/"
             "annotate.py)"},
]


# -- scenario -----------------------------------------------------------

def _workloads(tiny: bool):
    """The S6a quartet as (name, n_processors, thunk) triples."""
    from repro import Workbench, powerpc601_node, t805_grid
    from repro.apps import make_jacobi, make_matmul, make_pingpong
    from repro.tracegen import (StochasticAppDescription,
                                StochasticGenerator)

    if tiny:
        n, grid, iters, size, reps, stoch = 12, 12, 2, 1024, 4, 12_000
    else:
        n, grid, iters, size, reps, stoch = 24, 24, 3, 4096, 8, 60_000

    gen = StochasticGenerator(StochasticAppDescription(), 1, seed=3)
    trace = gen.generate_instruction_level(stoch)[0]

    def hybrid(app_factory):
        return Workbench(t805_grid(2, 2)).run_hybrid(app_factory())

    return [
        ("matmul", 4,
         lambda: hybrid(lambda: make_matmul(n=n))),
        ("jacobi", 4,
         lambda: hybrid(lambda: make_jacobi(grid=grid, iterations=iters))),
        ("pingpong", 4,
         lambda: hybrid(lambda: make_pingpong(size=size, repeats=reps))),
        ("stochastic", 1,
         lambda: Workbench(powerpc601_node()).run_single_node(trace)),
    ]


def _count_events(result) -> tuple[int, int]:
    """(kernel events, trace operations) of one workload result."""
    comm = getattr(result, "comm", None)
    if comm is not None:                       # HybridResult
        trace_ops = sum(ts.computational_ops + ts.communication_ops
                        for ts in result.task_stats)
        return comm.events_executed, trace_ops
    return 0, result.instructions              # NodeResult


def _measure_mode(mode: str, tiny: bool, repeats: int) -> dict:
    """Best-of-``repeats`` wall time + event counts under one kernel."""
    from repro.analysis.slowdown import SlowdownMeasurement

    os.environ["REPRO_KERNEL"] = mode
    rows: dict[str, dict] = {}
    for name, procs, thunk in _workloads(tiny):
        best = math.inf
        result = None
        for _ in range(repeats):
            # Host-side measurement: wall time IS the measurand.
            t0 = time.perf_counter()           # repro: noqa[PY002]
            result = thunk()
            best = min(best, time.perf_counter() - t0)  # repro: noqa[PY002]
        kernel_events, trace_ops = _count_events(result)
        cycles = float(getattr(result, "total_cycles", 0.0)
                       or getattr(result, "cycles", 0.0))
        m = SlowdownMeasurement(name, best, cycles, procs, HOST_CLOCK_HZ)
        rows[name] = {
            "wall_s": best,
            "kernel_events": kernel_events,
            "trace_ops": trace_ops,
            "events": kernel_events + trace_ops,
            "events_per_sec": (kernel_events + trace_ops) / best,
            "target_cycles": cycles,
            "slowdown_per_processor": m.slowdown_per_processor,
        }
    total_wall = sum(r["wall_s"] for r in rows.values())
    total_events = sum(r["events"] for r in rows.values())
    return {
        "workloads": rows,
        "total_wall_s": total_wall,
        "total_events": total_events,
        "events_per_sec": total_events / total_wall,
    }


def _measure_scenario(tiny: bool, repeats: int) -> dict:
    modes = {mode: _measure_mode(mode, tiny, repeats)
             for mode in ("seed", "fast")}
    seed, fast = modes["seed"], modes["fast"]
    per_workload = {
        name: seed["workloads"][name]["wall_s"]
        / fast["workloads"][name]["wall_s"]
        for name in fast["workloads"]}
    return {
        "modes": modes,
        "speedup": {
            "aggregate": seed["total_wall_s"] / fast["total_wall_s"],
            "events_per_sec_ratio": (fast["events_per_sec"]
                                     / seed["events_per_sec"]),
            "per_workload": per_workload,
        },
    }


# -- sweep cache --------------------------------------------------------

def _sweep_point_runner(machine) -> dict:
    """Module-level (picklable) runner for the cache-hit-rate probe."""
    from repro import Workbench
    from repro.apps import make_pingpong
    res = Workbench(machine).run_hybrid(make_pingpong(size=256, repeats=2))
    return {"cycles": res.total_cycles}


def _sweep_cache_stats() -> dict:
    """Run a 3-point sweep twice against one cache; report the hit rate."""
    from repro import generic_multicomputer, vary_machine
    from repro.parallel import ParallelSweepRunner, ResultCache

    base = generic_multicomputer("mesh", (2, 2))
    bandwidths = [0.5, 1.0, 2.0]
    machines = vary_machine(
        base, lambda m, bw: setattr(m.network, "link_bandwidth", bw),
        bandwidths)
    points = [({"link_bandwidth": bw}, m)
              for bw, m in zip(bandwidths, machines)]
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        runner = ParallelSweepRunner(workers=1, cache=cache)
        runner.run(_sweep_point_runner, points)   # cold pass: misses
        runner.run(_sweep_point_runner, points)   # warm pass: hits
        stats = cache.stats
        lookups = stats.hits + stats.misses
        return {
            "points": len(points),
            "lookups": lookups,
            "hits": stats.hits,
            "misses": stats.misses,
            "stores": stats.stores,
            "hit_rate": stats.hits / lookups if lookups else 0.0,
        }


# -- trio wall times ----------------------------------------------------

def _trio_wall_times(repeats: int) -> dict:
    """Fast-mode wall times of the pingpong/taskfarm/matmul trio."""
    from repro import Workbench, t805_grid
    from repro.apps import make_master_worker, make_matmul, make_pingpong

    os.environ["REPRO_KERNEL"] = "fast"
    thunks = {
        "pingpong": lambda: Workbench(t805_grid(2, 2)).run_hybrid(
            make_pingpong(size=4096, repeats=8)),
        "taskfarm": lambda: Workbench(t805_grid(2, 2)).run_hybrid(
            make_master_worker(n_tasks=16, mean_flops=600, seed=7,
                               task_bytes=8192)),
        "matmul": lambda: Workbench(t805_grid(2, 2)).run_hybrid(
            make_matmul(n=24)),
    }
    out = {}
    for name, thunk in thunks.items():
        best = math.inf
        for _ in range(repeats):
            t0 = time.perf_counter()           # repro: noqa[PY002]
            thunk()
            best = min(best, time.perf_counter() - t0)  # repro: noqa[PY002]
        out[name] = best
    return out


# -- report -------------------------------------------------------------

def build_report(repeats: int) -> dict:
    full = _measure_scenario(tiny=False, repeats=repeats)
    tiny = _measure_scenario(tiny=True, repeats=max(repeats, 5))
    return {
        "schema": SCHEMA,
        "scenario": ("S6a detailed-mode mix: matmul-24 / jacobi-24x24x3 / "
                     "pingpong-4k on t805_grid(2,2) hybrids + "
                     "stochastic-60k on powerpc601_node"),
        "events_definition": EVENTS_DEFINITION,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "repeats": repeats,
        "modes": full["modes"],
        "speedup": full["speedup"],
        "tiny": {
            "speedup_aggregate": tiny["speedup"]["aggregate"],
            "modes": {
                mode: {"total_wall_s": m["total_wall_s"],
                       "events_per_sec": m["events_per_sec"]}
                for mode, m in tiny["modes"].items()},
        },
        "sweep_cache": _sweep_cache_stats(),
        "trio_wall_s": _trio_wall_times(repeats),
        "perf_trajectory": PERF_TRAJECTORY,
    }


def validate_report(data: dict) -> list[str]:
    """Well-formedness problems of a BENCH_kernel.json payload."""
    problems = []
    if data.get("schema") != SCHEMA:
        problems.append(f"schema is {data.get('schema')!r}, "
                        f"expected {SCHEMA!r}")
    for mode in ("seed", "fast"):
        m = data.get("modes", {}).get(mode)
        if not isinstance(m, dict):
            problems.append(f"modes.{mode} missing")
            continue
        if not (isinstance(m.get("events_per_sec"), (int, float))
                and m["events_per_sec"] > 0):
            problems.append(f"modes.{mode}.events_per_sec not positive")
        if not m.get("workloads"):
            problems.append(f"modes.{mode}.workloads empty")
    speedup = data.get("speedup", {}).get("aggregate")
    if not (isinstance(speedup, (int, float)) and speedup > 0):
        problems.append("speedup.aggregate not positive")
    tiny = data.get("tiny", {}).get("speedup_aggregate")
    if not (isinstance(tiny, (int, float)) and tiny > 0):
        problems.append("tiny.speedup_aggregate not positive")
    cache = data.get("sweep_cache", {})
    if not (0.0 <= cache.get("hit_rate", -1.0) <= 1.0):
        problems.append("sweep_cache.hit_rate out of range")
    trio = data.get("trio_wall_s", {})
    for name in ("pingpong", "taskfarm", "matmul"):
        if not (isinstance(trio.get(name), (int, float))
                and trio[name] > 0):
            problems.append(f"trio_wall_s.{name} not positive")
    if not data.get("perf_trajectory"):
        problems.append("perf_trajectory empty")
    return problems


def run_check(path: Path, repeats: int) -> int:
    """The CI gate: well-formedness + tiny-scenario regression check."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read {path}: {exc}")
        return 1
    problems = validate_report(data)
    if problems:
        print(f"FAIL: {path} is malformed:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"{path.name}: well-formed "
          f"(committed aggregate speedup {data['speedup']['aggregate']:.2f}x)")

    baseline = data["tiny"]["speedup_aggregate"]
    measured = _measure_scenario(
        tiny=True, repeats=max(repeats, 5))["speedup"]["aggregate"]
    floor = REGRESSION_TOLERANCE * baseline
    print(f"tiny scenario fast/seed speedup: measured {measured:.2f}x, "
          f"committed baseline {baseline:.2f}x, floor {floor:.2f}x")
    if measured < floor:
        print(f"FAIL: events/sec regressed more than "
              f"{(1 - REGRESSION_TOLERANCE):.0%} vs the committed "
              "baseline; investigate, or regenerate BENCH_kernel.json "
              "if the change is intended (see module docstring)")
        return 1
    print("OK: no kernel performance regression")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--tiny", action="store_true",
                        help="time only the tiny scenario; print, do not "
                             "write the JSON")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed JSON and gate on the "
                             "tiny-scenario speedup ratio (CI mode)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N repeats per workload (default 3)")
    parser.add_argument("--output", type=Path, default=DEFAULT_JSON,
                        help="output path (default: repo-root "
                             "BENCH_kernel.json)")
    args = parser.parse_args(argv)

    saved_mode = os.environ.get("REPRO_KERNEL")
    try:
        if args.check:
            return run_check(args.output, args.repeats)
        if args.tiny:
            tiny = _measure_scenario(tiny=True, repeats=args.repeats)
            print(json.dumps(tiny, indent=2))
            return 0
        report = build_report(args.repeats)
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        agg = report["speedup"]["aggregate"]
        print(f"wrote {args.output} (aggregate fast/seed speedup "
              f"{agg:.2f}x; events/sec fast "
              f"{report['modes']['fast']['events_per_sec']:,.0f}, seed "
              f"{report['modes']['seed']['events_per_sec']:,.0f})")
        return 0
    finally:
        if saved_mode is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved_mode


if __name__ == "__main__":
    raise SystemExit(main())
