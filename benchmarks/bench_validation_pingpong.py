"""Experiment V1 — validation-style: ping-pong latency vs message size.

The companion report's validation methodology: measure point-to-point
latency over message size and check the affine model T(n) = alpha +
beta*n that characterizes real message-passing machines.  Regenerated
here per switching strategy at one hop and at the network diameter;
the fitted beta (cycles/byte) must recover the configured link
bandwidth, and the multi-hop alpha must grow with hop count while the
pipelined strategies keep beta hop-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.apps import pingpong_task_traces
from repro.core.results import ExperimentRecord

SIZES = (8, 64, 512, 4096, 32768)


def latency_series(switching: str, hops: int) -> dict[int, float]:
    series = {}
    for size in SIZES:
        machine = generic_multicomputer("mesh", (hops + 1, 1),
                                        switching=switching)
        # Single-packet regime keeps the affine model exact.
        machine.network.packet_bytes = max(SIZES) + 1
        wb = Workbench(machine)
        res = wb.run_comm_only(pingpong_task_traces(
            machine.n_nodes, size=size, repeats=4, b=hops))
        series[size] = res.message_latency.mean
    return series


def fit(series: dict[int, float]) -> tuple[float, float]:
    sizes = np.array(list(series.keys()), dtype=float)
    lats = np.array(list(series.values()))
    beta, alpha = np.polyfit(sizes, lats, 1)
    return float(alpha), float(beta)


def run_experiment() -> list[dict]:
    rows = []
    for switching in ("store_and_forward", "virtual_cut_through",
                      "wormhole"):
        for hops in (1, 4):
            series = latency_series(switching, hops)
            alpha, beta = fit(series)
            row = {"switching": switching, "hops": hops,
                   "alpha_cycles": alpha, "beta_cyc_per_byte": beta,
                   "bandwidth_B_per_cyc": 1.0 / beta}
            for size, lat in series.items():
                row[f"T({size})"] = lat
            rows.append(row)
    return rows


@pytest.mark.benchmark(group="validation")
def test_pingpong_latency_model(benchmark, emit):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record = ExperimentRecord(
        "V1", "ping-pong latency vs size: affine fit per switching "
        "strategy and hop count",
        parameters={"configured_bandwidth": 4.0, "sizes": list(SIZES)})
    record.add_rows(rows)
    emit("V1_pingpong", format_table(
        rows, title="ping-pong latency model T(n) = alpha + beta*n:"),
        record)

    by = {(r["switching"], r["hops"]): r for r in rows}
    # All strategies recover the configured bandwidth (4 B/cyc) at 1 hop.
    for sw in ("store_and_forward", "virtual_cut_through", "wormhole"):
        assert by[(sw, 1)]["bandwidth_B_per_cyc"] == pytest.approx(
            4.0, rel=0.05)
    # SAF pays bandwidth per hop: beta scales with hops.
    assert by[("store_and_forward", 4)]["beta_cyc_per_byte"] == \
        pytest.approx(4 * by[("store_and_forward", 1)]["beta_cyc_per_byte"],
                      rel=0.05)
    # Pipelined strategies keep beta hop-independent.
    for sw in ("virtual_cut_through", "wormhole"):
        assert by[(sw, 4)]["beta_cyc_per_byte"] == pytest.approx(
            by[(sw, 1)]["beta_cyc_per_byte"], rel=0.05)
        # ... while alpha (path setup) grows with distance.
        assert by[(sw, 4)]["alpha_cycles"] > by[(sw, 1)]["alpha_cycles"]
    # Latency is affine: interior points sit on the fitted line.
    for r in rows:
        for size in SIZES:
            predicted = r["alpha_cycles"] + r["beta_cyc_per_byte"] * size
            assert r[f"T({size})"] == pytest.approx(predicted, rel=0.08,
                                                    abs=30)
