"""Experiment S6c — Section 6: simulator memory usage.

Paper: "Since Mermaid does not interpret machine instructions, it is not
necessary to store large quantities of state information during
simulation runs.  For example, the contents of the memory does not have
to be modelled and simulated caches only need to hold addresses (tags),
not data.  As a consequence, the simulation of parallel platforms is
only constrained by the memory consumption of the (threaded)
trace-generating applications."

Two sweeps regenerate that claim:

1. simulator heap vs *simulated working-set size* — flat (tags only;
   the simulated data is never stored);
2. simulator heap vs *node count* — grows only with the number of node
   models / trace threads, not with the memory they simulate.
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest

from repro import Workbench, t805_grid
from repro.analysis import format_table
from repro.apps import alltoall_task_traces
from repro.core.results import ExperimentRecord
from repro.machines import powerpc601_node
from repro.tracegen import (
    MemoryBehaviour,
    StochasticAppDescription,
    StochasticGenerator,
)


def heap_during(fn) -> tuple[float, object]:
    """Peak traced heap (MiB) while running ``fn``."""
    gc.collect()
    tracemalloc.start()
    result = fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / (1 << 20), result


def sweep_working_set() -> list[dict]:
    """Same trace length, working sets from 256 KiB to 256 MiB."""
    rows = []
    machine = powerpc601_node()
    for ws_mib in (0.25, 4, 64, 256):
        desc = StochasticAppDescription(
            memory=MemoryBehaviour(working_set_bytes=int(ws_mib * (1 << 20))))
        gen = StochasticGenerator(desc, 1, seed=1)
        trace = gen.generate_instruction_level(30_000)[0]

        def run(trace=trace):
            return Workbench(machine).run_single_node(trace)

        peak, _ = heap_during(run)
        rows.append({"simulated_working_set_mib": ws_mib,
                     "simulator_peak_heap_mib": peak})
    return rows


def sweep_nodes() -> list[dict]:
    """Fixed per-node traffic (pairwise exchange rounds), 4 to 64 nodes."""
    rows = []
    for side in (2, 4, 8):
        machine = t805_grid(side, side)
        n = machine.n_nodes
        desc = StochasticAppDescription(mean_task_cycles=10_000.0)
        traces = StochasticGenerator(desc, n, seed=2).generate_task_level(10)

        def run(machine=machine, traces=traces):
            return Workbench(machine).run_comm_only(traces)

        peak, _ = heap_during(run)
        rows.append({"nodes": n, "simulator_peak_heap_mib": peak})
    return rows


@pytest.mark.benchmark(group="memory")
def test_memory_flat_in_simulated_working_set(benchmark, emit):
    rows = benchmark.pedantic(sweep_working_set, rounds=1, iterations=1)
    record = ExperimentRecord(
        "S6c-ws", "simulator heap vs simulated working set (claim: flat — "
        "caches hold tags, memory contents never modelled)")
    record.add_rows(rows)
    text = format_table(rows, title="heap vs simulated working set:")
    first, last = rows[0], rows[-1]
    ratio = (last["simulator_peak_heap_mib"]
             / max(first["simulator_peak_heap_mib"], 1e-9))
    text += (f"\n\nheap ratio across a {256 / 0.25:.0f}x working-set "
             f"increase: {ratio:.2f}x (claim: ~1x)")
    emit("S6c_memory_working_set", text, record)
    # A 1024x larger simulated memory must not noticeably grow the heap.
    assert ratio < 1.5


@pytest.mark.benchmark(group="memory")
def test_memory_scales_with_nodes_only(benchmark, emit):
    rows = benchmark.pedantic(sweep_nodes, rounds=1, iterations=1)
    record = ExperimentRecord(
        "S6c-nodes", "simulator heap vs node count (claim: bounded by the "
        "per-node models/trace state, not simulated memory)")
    record.add_rows(rows)
    text = format_table(rows, title="heap vs node count:")
    emit("S6c_memory_nodes", text, record)
    heaps = [r["simulator_peak_heap_mib"] for r in rows]
    nodes = [r["nodes"] for r in rows]
    # Sub-linear-or-linear growth: 16x nodes => well under 64x heap.
    assert heaps[-1] / max(heaps[0], 1e-9) < 4 * nodes[-1] / nodes[0]
