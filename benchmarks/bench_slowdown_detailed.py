"""Experiment S6a — Section 6: detailed-mode simulation slowdown.

Paper: "For a mix of application loads, we measured a typical slowdown
of about 750 to 4,000 per processor" on the T805-multicomputer and
PowerPC-601 models; i.e. 30k-200k target cycles simulated per host
second on a 143 MHz Ultra SPARC.

We regenerate the measurement with the same structure: an application
mix (matmul, Jacobi, ping-pong) on a T805-like grid plus a PowerPC-601
single-node workload, reporting slowdown-per-processor and target
cycles per host second.  Absolute values differ (Python host vs
compiled Pearl), but the defining shape — a detailed-mode slowdown
2-4 orders of magnitude above the task-level mode of S6b — must hold;
the cross-check lives in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro import Workbench, powerpc601_node, t805_grid
from repro.analysis import SlowdownMeter, format_table, geometric_mean
from repro.apps import make_jacobi, make_matmul, make_pingpong
from repro.core.results import ExperimentRecord
from repro.tracegen import StochasticAppDescription, StochasticGenerator

#: Assumed host clock for the cycles-based slowdown metric.
HOST_CLOCK_HZ = 2.0e9


def detailed_mix() -> SlowdownMeter:
    meter = SlowdownMeter(host_clock_hz=HOST_CLOCK_HZ)
    grid = Workbench(t805_grid(2, 2))
    meter.measure("matmul-24 @ t805-2x2 (hybrid)", 4,
                  lambda: grid.run_hybrid(make_matmul(n=24)))
    meter.measure("jacobi-24x24x3 @ t805-2x2 (hybrid)", 4,
                  lambda: grid.run_hybrid(make_jacobi(grid=24,
                                                      iterations=3)))
    # Ping-pong is the communication-dominated outlier: most simulated
    # cycles are link transfers with no instructions behind them, so its
    # per-cycle slowdown is far below the compute-bearing workloads'.
    meter.measure("pingpong-4k @ t805-2x2 (comm-dominated)", 4,
                  lambda: grid.run_hybrid(make_pingpong(size=4096,
                                                        repeats=8)))
    # The paper's second target: a PowerPC 601 single node, two cache
    # levels, instruction-level workload.
    ppc = Workbench(powerpc601_node())
    gen = StochasticGenerator(StochasticAppDescription(), 1, seed=3)
    trace = gen.generate_instruction_level(60_000)[0]
    meter.measure("stochastic-60k @ ppc601 (single node)", 1,
                  lambda: ppc.run_single_node(trace),
                  target_cycles_of=lambda r: r.cycles)
    return meter


@pytest.mark.benchmark(group="slowdown-detailed")
def test_detailed_slowdown(benchmark, emit):
    meter = benchmark.pedantic(detailed_mix, rounds=1, iterations=1)
    rows = [m.summary() for m in meter.measurements]
    compute_bearing = [m for m in meter.measurements
                       if "comm-dominated" not in m.label]
    lo = min(m.slowdown_per_processor for m in compute_bearing)
    hi = max(m.slowdown_per_processor for m in compute_bearing)
    gm = geometric_mean([m.slowdown_per_processor
                         for m in compute_bearing])
    record = ExperimentRecord(
        "S6a", "Section 6 detailed-mode slowdown (paper: 750-4000/proc)",
        parameters={"host_clock_hz": HOST_CLOCK_HZ,
                    "paper_range": [750, 4000]})
    record.add_rows(rows)
    record.add_row(measured_range=[lo, hi], geometric_mean=gm)
    text = (meter.format()
            + f"\n\nmeasured slowdown/processor range "
            + f"(compute-bearing workloads): {lo:.0f} .. {hi:.0f}"
            + f" (geo-mean {gm:.0f}); paper reported 750 .. 4000 on a"
            + " compiled simulator")
    emit("S6a_slowdown_detailed", text, record)
    assert all(m.target_cycles > 0 for m in meter.measurements)
    # Detailed mode is necessarily slow: well above 10x per processor
    # for anything that actually executes instructions.
    assert lo > 10


@pytest.mark.benchmark(group="slowdown-detailed")
def test_detailed_mode_host_cost(benchmark):
    """Host cost of one detailed hybrid run (pytest-benchmark timing)."""
    def run():
        wb = Workbench(t805_grid(2, 2))
        return wb.run_hybrid(make_matmul(n=16)).total_cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
