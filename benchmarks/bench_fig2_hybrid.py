"""Experiment F2 — Figure 2: the hybrid model split.

Figure 2 shows the computational model deriving computational tasks
(simulated time between communication operations) that, together with
the communication operations, drive the communication model.  This
bench regenerates the figure's *behavioural* content:

1. consistency — the tasks fed into the network are exactly the cycles
   the node models charged (the two models agree);
2. the accuracy/cost trade — running the same workload comm-only with
   approximated task durations is much cheaper on the host but loses
   the cache/contention detail (predicted time diverges).
"""

from __future__ import annotations

import time

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.apps import ThreadedApplication, make_jacobi
from repro.core.results import ExperimentRecord
from repro.operations import OpCode, compute
from repro.operations.trace import Trace, TraceSet


def run_experiment() -> dict:
    machine = generic_multicomputer("mesh", (2, 2))
    wb = Workbench(machine)
    program = make_jacobi(grid=24, iterations=4)

    # --- accurate path: full hybrid (Fig 2, both models) -------------
    t0 = time.perf_counter()
    hybrid = wb.run_hybrid(program)
    hybrid_host = time.perf_counter() - t0

    # --- fast path: comm-only with mean-task approximation -----------
    # Replace every per-phase task duration by the global mean task
    # (what a fast-prototyping user would guess), keeping the comm ops.
    mean_task = (sum(t.total_task_cycles for t in hybrid.task_stats)
                 / max(sum(t.tasks_emitted for t in hybrid.task_stats), 1))
    recorded = ThreadedApplication(program, wb.n_nodes).record()
    approx_traces = []
    for tr in recorded:
        ops = []
        pending_comp = False
        for op in tr:
            if op.code in (OpCode.SEND, OpCode.RECV, OpCode.ASEND,
                           OpCode.ARECV):
                if pending_comp:
                    ops.append(compute(mean_task))
                    pending_comp = False
                ops.append(op)
            else:
                pending_comp = True
        if pending_comp:
            ops.append(compute(mean_task))
        approx_traces.append(Trace(tr.node, ops))
    t0 = time.perf_counter()
    comm_only = wb.run_comm_only(TraceSet(approx_traces))
    comm_host = time.perf_counter() - t0

    return {
        "hybrid_cycles": hybrid.total_cycles,
        "comm_only_cycles": comm_only.total_cycles,
        "hybrid_host_s": hybrid_host,
        "comm_only_host_s": comm_host,
        "task_consistency": [
            (hybrid.comm.activity[i].compute_cycles,
             hybrid.task_stats[i].total_task_cycles)
            for i in range(wb.n_nodes)],
        "mean_task": mean_task,
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_hybrid_model(benchmark, emit):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    err = abs(data["comm_only_cycles"] - data["hybrid_cycles"]) \
        / data["hybrid_cycles"]
    speedup = data["hybrid_host_s"] / max(data["comm_only_host_s"], 1e-9)
    rows = [
        {"mode": "hybrid (Fig 2, both models)",
         "predicted_cycles": data["hybrid_cycles"],
         "host_seconds": data["hybrid_host_s"]},
        {"mode": "comm-only (mean-task approx.)",
         "predicted_cycles": data["comm_only_cycles"],
         "host_seconds": data["comm_only_host_s"]},
    ]
    record = ExperimentRecord(
        "F2", "Fig 2: hybrid computational+communication co-simulation vs "
        "comm-only fast prototyping", parameters={
            "prediction_divergence": err, "host_speedup": speedup})
    record.add_rows(rows)
    text = (format_table(rows, title="Jacobi 24x24x4 on generic 2x2 mesh:")
            + f"\n\ncomm-only host speedup: {speedup:.1f}x; prediction "
            f"divergence from accurate mode: {err:.2%}")
    emit("F2_hybrid_model", text, record)

    # Consistency: the network consumed exactly the node models' cycles.
    for compute_cycles, task_cycles in data["task_consistency"]:
        assert compute_cycles == pytest.approx(task_cycles)
    # The fast path must actually be faster on the host.
    assert speedup > 2
