"""Experiment E1 — extension: virtual shared memory (Sec 5.1 future work).

The paper promises a VSM "to hide all explicit communication"; this
repo implements it (repro.vsm).  The bench quantifies the transparency
tax: the same data-sharing workload written with explicit messages and
against the VSM, across page sizes — reproducing the canonical DSM
trade-off curve (small pages: many faults; large pages: false sharing).
"""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.core.results import ExperimentRecord
from repro.operations import ArithType, MemType
from repro.vsm import SharedRegion, VSMConfig, VSMModel

N = 512
ITERS = 3


def message_program(ctx):
    me, p = ctx.node_id, ctx.n_nodes
    local = N // p
    U = ctx.global_var("U", MemType.FLOAT64, local + 2)
    for _ in ctx.loop(range(ITERS)):
        if me % 2 == 0:
            if me + 1 < p:
                ctx.send(me + 1, 8)
                ctx.recv(me + 1)
            if me > 0:
                ctx.send(me - 1, 8)
                ctx.recv(me - 1)
        else:
            ctx.recv(me - 1)
            ctx.send(me - 1, 8)
            if me + 1 < p:
                ctx.recv(me + 1)
                ctx.send(me + 1, 8)
        for i in ctx.loop(range(1, local + 1)):
            ctx.read(U, i - 1)
            ctx.read(U, i + 1)
            ctx.add(ArithType.DOUBLE)
            ctx.write(U, i)


def make_vsm_program(page_bytes: int):
    def program(ctx):
        me, p = ctx.node_id, ctx.n_nodes
        local = N // p
        lo, hi = me * local, (me + 1) * local
        grid = SharedRegion(ctx, f"grid{page_bytes}", N, MemType.FLOAT64,
                            page_bytes=page_bytes)
        for _ in ctx.loop(range(ITERS)):
            for i in ctx.loop(range(lo, hi)):
                grid.read(max(i - 1, 0))
                grid.read(min(i + 1, N - 1))
                ctx.add(ArithType.DOUBLE)
                grid.write(i)
            ctx.barrier()
    return program


def run_experiment() -> list[dict]:
    machine = generic_multicomputer("mesh", (4, 1))
    rows = []
    mp = Workbench(machine).run_hybrid(message_program)
    rows.append({"variant": "explicit messages", "page_bytes": 0,
                 "cycles": mp.total_cycles, "faults": 0,
                 "bytes_moved": mp.comm.activity and sum(
                     a.summary().get("bytes", 0) for a in mp.comm.activity)
                 or 0})
    for page in (256, 1024, 4096):
        model = VSMModel(machine, VSMConfig())
        res = model.run_application(make_vsm_program(page))
        rows.append({"variant": f"vsm page={page}", "page_bytes": page,
                     "cycles": res.total_cycles, "faults": res.faults,
                     "bytes_moved": res.vsm["page_bytes_moved"]})
    return rows


@pytest.mark.benchmark(group="extension")
def test_vsm_vs_message_passing(benchmark, emit):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record = ExperimentRecord(
        "E1", "extension: VSM (paper's future work) vs explicit message "
        "passing, 1-D stencil, page-size sweep")
    record.add_rows(rows)
    emit("E1_vsm", format_table(
        rows, title="VSM vs explicit messages (512-pt stencil, 4 nodes):"),
        record)

    mp_cycles = rows[0]["cycles"]
    vsm_rows = rows[1:]
    # Transparency costs something on this hand-tunable workload...
    assert all(r["cycles"] > mp_cycles for r in vsm_rows)
    # ...but stays within an order of magnitude.
    assert all(r["cycles"] < 20 * mp_cycles for r in vsm_rows)
    # Bigger pages -> fewer faults (amortization) on this layout.
    faults = [r["faults"] for r in vsm_rows]
    assert faults[0] >= faults[-1]
