"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation
(a table, a figure, or a Section-6 measurement); the regenerated rows
are printed and saved as JSON under ``benchmarks/results/`` so
EXPERIMENTS.md can be refreshed from real runs.
"""

from __future__ import annotations

import os
import sys

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a report block (visible with -s) and persist it."""
    def _emit(experiment_id: str, text: str, record=None) -> None:
        banner = f"\n=== {experiment_id} " + "=" * max(60 - len(experiment_id), 0)
        sys.stdout.write(banner + "\n" + text + "\n")
        path = os.path.join(results_dir, f"{experiment_id}.txt")
        with open(path, "w") as fp:
            fp.write(text + "\n")
        if record is not None:
            record.save(os.path.join(results_dir, f"{experiment_id}.json"))
    return _emit
