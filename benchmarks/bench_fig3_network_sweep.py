"""Experiment F3b — Figure 3b: multi-node template parameterization.

Figure 3b is the communication template (abstract processor, router,
links, topology).  This bench sweeps topology x switching strategy
under a fixed all-to-all load and a long-haul ping-pong, reporting the
simulated completion time and message latency — the network design
study the template exists for.  Shape checks: richer topologies finish
the all-to-all sooner; pipelined switching beats store-and-forward on
multi-hop paths.

The 15-point topology x switching cross product is expressed as a
two-axis :class:`~repro.core.experiment.Sweep` and fanned out over
worker processes; determinism makes the rows identical to a serial
run.  ``REPRO_SWEEP_WORKERS=1`` forces serial execution and
``REPRO_SWEEP_CACHE`` enables cross-run result reuse.
"""

from __future__ import annotations

import os

import pytest

from repro import Sweep, Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.apps import alltoall_task_traces, pingpong_task_traces
from repro.core.results import ExperimentRecord

TOPOLOGIES = [
    ("ring", (16,)),
    ("mesh", (4, 4)),
    ("torus", (4, 4)),
    ("hypercube", (4,)),
    ("fat_tree", (2, 4)),     # 16 leaves + 15 switches (extension)
]
TOPOLOGY_DIMS = dict(TOPOLOGIES)
SWITCHINGS = ["store_and_forward", "virtual_cut_through", "wormhole"]

WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS",
                             str(min(4, os.cpu_count() or 1))))
CACHE_DIR = os.environ.get("REPRO_SWEEP_CACHE")


def set_topology(machine, kind: str) -> None:
    machine.network.topology.kind = kind
    machine.network.topology.dims = TOPOLOGY_DIMS[kind]
    # Dimension order is undefined on trees; use the table.
    machine.network.routing = ("shortest_path" if kind == "fat_tree"
                               else "dimension_order")


def set_switching(machine, switching: str) -> None:
    machine.network.switching = switching


def run_network_point(machine) -> dict:
    n = machine.n_nodes
    wb = Workbench(machine)
    a2a = wb.run_comm_only(alltoall_task_traces(
        n, block_bytes=1024, rounds=2, compute_cycles=2_000.0))
    # Long-haul single-packet ping-pong (latency, not throughput):
    # the farthest partner; on a ring n-1 is adjacent, use n/2.
    far = n // 2 if machine.network.topology.kind == "ring" else n - 1
    pp = wb.run_comm_only(pingpong_task_traces(
        n, size=200, repeats=4, b=far))
    return {
        "alltoall_cycles": a2a.total_cycles,
        "pingpong_latency": pp.message_latency.mean,
        "max_link_util": max(a2a.link_utilization.values()),
    }


def sweep() -> list[dict]:
    design_space = (
        Sweep(generic_multicomputer("mesh", (4, 4)), "fig3b")
        .axis("topology", set_topology, [kind for kind, _ in TOPOLOGIES])
        .axis("switching", set_switching, SWITCHINGS))
    return design_space.run(run_network_point, workers=WORKERS,
                            cache=CACHE_DIR,
                            workload_id="fig3b-a2a1k-pp200")


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_network_design_space(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F3b", "Fig 3b template: topology x switching design space, "
        "16 nodes, all-to-all + long-haul ping-pong")
    record.add_rows(rows)
    emit("F3b_network_sweep", format_table(
        rows, title="topology x switching sweep (16 nodes):"), record)

    by = {(r["topology"], r["switching"]): r for r in rows}
    # Richer topology helps the bisection-limited all-to-all.
    assert by[("hypercube", "wormhole")]["alltoall_cycles"] < \
        by[("ring", "wormhole")]["alltoall_cycles"]
    # Wraparound links shorten paths: torus beats mesh under SAF (the
    # wormhole comparison is confounded by dateline-VC serialization).
    assert by[("torus", "store_and_forward")]["alltoall_cycles"] <= \
        by[("mesh", "store_and_forward")]["alltoall_cycles"] * 1.05
    # Pipelined switching beats SAF for single-packet multi-hop latency.
    for kind, _ in TOPOLOGIES:
        saf = by[(kind, "store_and_forward")]["pingpong_latency"]
        wh = by[(kind, "wormhole")]["pingpong_latency"]
        vct = by[(kind, "virtual_cut_through")]["pingpong_latency"]
        assert wh <= saf * 1.001
        assert vct <= saf * 1.001


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_routing_strategies(benchmark, emit):
    def run():
        rows = []
        for routing in ("dimension_order", "shortest_path"):
            machine = generic_multicomputer("torus", (4, 4))
            machine.network.routing = routing
            n = machine.n_nodes
            res = Workbench(machine).run_comm_only(alltoall_task_traces(
                n, block_bytes=1024, rounds=2, compute_cycles=2_000.0))
            rows.append({"routing": routing,
                         "alltoall_cycles": res.total_cycles,
                         "mean_latency": res.message_latency.mean})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F3b-routing", "Fig 3b template: routing strategy comparison")
    record.add_rows(rows)
    emit("F3b_routing", format_table(
        rows, title="routing strategies on 4x4 torus:"), record)
    # Both are minimal on a torus: times within 2x of each other.
    a, b = rows[0]["alltoall_cycles"], rows[1]["alltoall_cycles"]
    assert 0.5 < a / b < 2.0
