"""Experiment F3b — Figure 3b: multi-node template parameterization.

Figure 3b is the communication template (abstract processor, router,
links, topology).  This bench sweeps topology x switching strategy
under a fixed all-to-all load and a long-haul ping-pong, reporting the
simulated completion time and message latency — the network design
study the template exists for.  Shape checks: richer topologies finish
the all-to-all sooner; pipelined switching beats store-and-forward on
multi-hop paths.
"""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.apps import alltoall_task_traces, pingpong_task_traces
from repro.core.results import ExperimentRecord

TOPOLOGIES = [
    ("ring", (16,)),
    ("mesh", (4, 4)),
    ("torus", (4, 4)),
    ("hypercube", (4,)),
    ("fat_tree", (2, 4)),     # 16 leaves + 15 switches (extension)
]
SWITCHINGS = ["store_and_forward", "virtual_cut_through", "wormhole"]


def sweep() -> list[dict]:
    rows = []
    for kind, dims in TOPOLOGIES:
        for switching in SWITCHINGS:
            machine = generic_multicomputer(kind, dims, switching=switching)
            if kind == "fat_tree":
                # Dimension order is undefined on trees; use the table.
                machine.network.routing = "shortest_path"
            n = machine.n_nodes
            wb = Workbench(machine)
            a2a = wb.run_comm_only(alltoall_task_traces(
                n, block_bytes=1024, rounds=2, compute_cycles=2_000.0))
            # Long-haul single-packet ping-pong (latency, not throughput):
            # the farthest partner; on a ring n-1 is adjacent, use n/2.
            far = n // 2 if kind == "ring" else n - 1
            pp = wb.run_comm_only(pingpong_task_traces(
                n, size=200, repeats=4, b=far))
            rows.append({
                "topology": kind,
                "switching": switching,
                "alltoall_cycles": a2a.total_cycles,
                "pingpong_latency": pp.message_latency.mean,
                "max_link_util": max(a2a.link_utilization.values()),
            })
    return rows


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_network_design_space(benchmark, emit):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F3b", "Fig 3b template: topology x switching design space, "
        "16 nodes, all-to-all + long-haul ping-pong")
    record.add_rows(rows)
    emit("F3b_network_sweep", format_table(
        rows, title="topology x switching sweep (16 nodes):"), record)

    by = {(r["topology"], r["switching"]): r for r in rows}
    # Richer topology helps the bisection-limited all-to-all.
    assert by[("hypercube", "wormhole")]["alltoall_cycles"] < \
        by[("ring", "wormhole")]["alltoall_cycles"]
    # Wraparound links shorten paths: torus beats mesh under SAF (the
    # wormhole comparison is confounded by dateline-VC serialization).
    assert by[("torus", "store_and_forward")]["alltoall_cycles"] <= \
        by[("mesh", "store_and_forward")]["alltoall_cycles"] * 1.05
    # Pipelined switching beats SAF for single-packet multi-hop latency.
    for kind, _ in TOPOLOGIES:
        saf = by[(kind, "store_and_forward")]["pingpong_latency"]
        wh = by[(kind, "wormhole")]["pingpong_latency"]
        vct = by[(kind, "virtual_cut_through")]["pingpong_latency"]
        assert wh <= saf * 1.001
        assert vct <= saf * 1.001


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_routing_strategies(benchmark, emit):
    def run():
        rows = []
        for routing in ("dimension_order", "shortest_path"):
            machine = generic_multicomputer("torus", (4, 4))
            machine.network.routing = routing
            n = machine.n_nodes
            res = Workbench(machine).run_comm_only(alltoall_task_traces(
                n, block_bytes=1024, rounds=2, compute_cycles=2_000.0))
            rows.append({"routing": routing,
                         "alltoall_cycles": res.total_cycles,
                         "mean_latency": res.message_latency.mean})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F3b-routing", "Fig 3b template: routing strategy comparison")
    record.add_rows(rows)
    emit("F3b_routing", format_table(
        rows, title="routing strategies on 4x4 torus:"), record)
    # Both are minimal on a torus: times within 2x of each other.
    a, b = rows[0]["alltoall_cycles"], rows[1]["alltoall_cycles"]
    assert 0.5 < a / b < 2.0
