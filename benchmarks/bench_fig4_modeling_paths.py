"""Experiment F4 — Figure 4: the application-modelling framework.

Figure 4 spans two axes — workload origin (reality-based vs stochastic)
and abstraction level (instruction vs task) — with only the
reality-based/instruction-level path operational in the paper (the
shaded area).  This repo implements all four quadrants; the bench runs
the same logical workload (a halo-exchange stencil) down each path and
reports predicted time and host cost, reproducing the figure as a
capability/cost matrix.
"""

from __future__ import annotations

import time

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.apps import ThreadedApplication, make_jacobi
from repro.compmodel import SingleNodeModel, extract_tasks
from repro.core.results import ExperimentRecord
from repro.operations.trace import Trace, TraceSet
from repro.tracegen import (
    CommunicationBehaviour,
    StochasticAppDescription,
    StochasticGenerator,
)


def run_paths() -> list[dict]:
    machine = generic_multicomputer("mesh", (2, 2))
    n = machine.n_nodes
    rows = []

    def timed(label, origin, level, fn):
        t0 = time.perf_counter()
        cycles = fn()
        host = time.perf_counter() - t0
        rows.append({"path": label, "origin": origin, "level": level,
                     "predicted_cycles": cycles, "host_seconds": host})

    program = make_jacobi(grid=24, iterations=4)

    # Quadrant 1 (the paper's shaded path): reality-based, instruction.
    timed("reality/instruction (paper's operational path)",
          "reality", "instruction",
          lambda: Workbench(machine).run_hybrid(program).total_cycles)

    # Quadrant 2: reality-based, task level — record, extract, comm-only.
    def reality_task():
        recorded = ThreadedApplication(program, n).record()
        task_traces = []
        for tr in recorded:
            node = SingleNodeModel(machine.node, node_id=tr.node)
            task_traces.append(Trace(tr.node,
                                     list(extract_tasks(node, tr))))
        return Workbench(machine).run_comm_only(
            TraceSet(task_traces)).total_cycles
    timed("reality/task (extracted tasks)", "reality", "task", reality_task)

    # Quadrants 3 & 4: stochastic descriptions of the same class.
    desc = StochasticAppDescription(
        mean_task_cycles=30_000.0,
        comm=CommunicationBehaviour(pattern="neighbour",
                                    min_message_bytes=192,
                                    max_message_bytes=192,
                                    mean_ops_between_rounds=10_000))
    timed("stochastic/instruction", "stochastic", "instruction",
          lambda: Workbench(machine).run_stochastic(
              desc, level="instruction", ops_per_node=40_000,
              seed=4).total_cycles)
    timed("stochastic/task", "stochastic", "task",
          lambda: Workbench(machine).run_stochastic(
              desc, level="task", rounds=4, seed=4).total_cycles)
    return rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_modeling_paths(benchmark, emit):
    rows = benchmark.pedantic(run_paths, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F4", "Fig 4: all four application-modelling paths "
        "(paper had only reality/instruction operational)")
    record.add_rows(rows)
    emit("F4_modeling_paths", format_table(
        rows, title="application-modelling paths (2x2 mesh):"), record)

    by = {r["path"].split(" ")[0]: r for r in rows}
    ri = by["reality/instruction"]
    rt = by["reality/task"]
    # Same workload, same machine: the two reality-based paths agree on
    # predicted time (task extraction preserves the timing).
    assert rt["predicted_cycles"] == pytest.approx(
        ri["predicted_cycles"], rel=0.05)
    # Task-level paths must be cheaper on the host than their
    # instruction-level siblings.
    assert by["stochastic/task"]["host_seconds"] < \
        by["stochastic/instruction"]["host_seconds"]
    assert all(r["predicted_cycles"] > 0 for r in rows)
