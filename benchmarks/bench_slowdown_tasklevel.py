"""Experiment S6b — Section 6: task-level (fast-prototyping) slowdown.

Paper: "simulation at this level of abstraction results in a typical
slowdown of between 0.5 and 4 per processor.  This means that an entire
multicomputer can be simulated with only a minor slowdown."  The
defining shape: task-level mode is ~3 orders of magnitude cheaper than
the detailed mode of S6a, and its slowdown depends on the amount of
communication in the workload ("computation can be simulated extremely
fast ... whereas communication is simulated in more detail").
"""

from __future__ import annotations

import pytest

from repro import Workbench, t805_grid
from repro.analysis import SlowdownMeter, format_table, geometric_mean
from repro.apps import alltoall_task_traces, pipeline_task_traces
from repro.core.results import ExperimentRecord
from repro.tracegen import (
    CommunicationBehaviour,
    StochasticAppDescription,
    StochasticGenerator,
)

HOST_CLOCK_HZ = 2.0e9


def task_level_mix() -> SlowdownMeter:
    meter = SlowdownMeter(host_clock_hz=HOST_CLOCK_HZ)
    machine = t805_grid(4, 4)
    n = machine.n_nodes

    def stochastic(label, mean_task, rounds):
        desc = StochasticAppDescription(
            mean_task_cycles=mean_task,
            comm=CommunicationBehaviour(min_message_bytes=256,
                                        max_message_bytes=4096))
        gen = StochasticGenerator(desc, n, seed=11)
        traces = gen.generate_task_level(rounds)
        wb = Workbench(machine)
        meter.measure(label, n, lambda: wb.run_comm_only(traces))

    # Computation-heavy: long tasks between exchanges.
    stochastic("compute-heavy (200k cyc/task) @ t805-4x4", 200_000.0, 40)
    # Communication-heavy: short tasks.
    stochastic("comm-heavy (2k cyc/task) @ t805-4x4", 2_000.0, 40)
    wb = Workbench(machine)
    meter.measure(
        "alltoall task traces @ t805-4x4", n,
        lambda: wb.run_comm_only(
            alltoall_task_traces(n, block_bytes=1024, rounds=4,
                                 compute_cycles=50_000.0)))
    meter.measure(
        "pipeline task traces @ t805-4x4", n,
        lambda: wb.run_comm_only(
            pipeline_task_traces(n, items=16, item_bytes=2048,
                                 stage_cycles=100_000.0)))
    return meter


@pytest.mark.benchmark(group="slowdown-task")
def test_task_level_slowdown(benchmark, emit):
    meter = benchmark.pedantic(task_level_mix, rounds=1, iterations=1)
    lo = min(m.slowdown_per_processor for m in meter.measurements)
    hi = max(m.slowdown_per_processor for m in meter.measurements)
    gm = geometric_mean([m.slowdown_per_processor
                         for m in meter.measurements])
    record = ExperimentRecord(
        "S6b", "Section 6 task-level slowdown (paper: 0.5-4/proc)",
        parameters={"host_clock_hz": HOST_CLOCK_HZ,
                    "paper_range": [0.5, 4]})
    record.add_rows([m.summary() for m in meter.measurements])
    record.add_row(measured_range=[lo, hi], geometric_mean=gm)
    text = (meter.format()
            + f"\n\nmeasured slowdown/processor range: {lo:.2f} .. {hi:.2f}"
            + f" (geo-mean {gm:.2f}); paper reported 0.5 .. 4")
    emit("S6b_slowdown_tasklevel", text, record)
    comp_heavy = meter.measurements[0].slowdown_per_processor
    comm_heavy = meter.measurements[1].slowdown_per_processor
    # Shape: slowdown grows with communication share of the workload.
    assert comm_heavy > comp_heavy


@pytest.mark.benchmark(group="slowdown-task")
def test_mode_ratio_vs_detailed(benchmark, emit):
    """The headline contrast: detailed mode vs task level, same machine,
    comparable workloads — expect >= 2 orders of magnitude."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    meter = SlowdownMeter(host_clock_hz=HOST_CLOCK_HZ)
    machine = t805_grid(2, 2)
    n = machine.n_nodes
    desc = StochasticAppDescription(mean_task_cycles=50_000.0)
    gen = StochasticGenerator(desc, n, seed=5)
    instr_traces = gen.generate_instruction_level(40_000)
    task_traces = StochasticGenerator(desc, n, seed=5).generate_task_level(20)

    wb = Workbench(machine)
    detailed = meter.measure("detailed (instruction level)", n,
                             lambda: wb.run_mixed_traces(instr_traces))
    task = meter.measure("fast prototyping (task level)", n,
                         lambda: wb.run_comm_only(task_traces))
    ratio = (detailed.slowdown_per_processor
             / max(task.slowdown_per_processor, 1e-12))
    record = ExperimentRecord(
        "S6ab", "detailed vs task-level slowdown ratio "
        "(paper: ~187x-8000x from the two reported ranges)")
    record.add_rows([m.summary() for m in meter.measurements])
    record.add_row(ratio=ratio)
    emit("S6ab_mode_ratio",
         meter.format() + f"\n\ndetailed/task-level slowdown ratio: "
         f"{ratio:.0f}x (paper's ranges imply ~190x..8000x)", record)
    assert ratio > 50


@pytest.mark.benchmark(group="slowdown-task")
def test_task_level_host_cost(benchmark):
    machine = t805_grid(4, 4)
    traces = alltoall_task_traces(machine.n_nodes, block_bytes=1024,
                                  rounds=2, compute_cycles=50_000.0)

    def run():
        return Workbench(machine).run_comm_only(traces).total_cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
