"""Experiment A1 — ablation: the abstraction-level trade-off.

DESIGN.md's central design choice is simulating at two abstraction
levels.  This ablation quantifies the trade across communication
granularity: for workloads ranging from fine-grained (communication
every few hundred operations) to coarse-grained, compare

* the *accurate* prediction (instruction-level hybrid) against
* the *fast-prototyping* prediction (task level with the naive
  mean-task approximation a user would write down),

reporting prediction error and host-cost ratio.  Expected shape: the
fast mode's error stays modest for coarse-grained workloads and is
bought with a large host-cost saving; its error grows as granularity
shrinks (cache behaviour varies more between short tasks).
"""

from __future__ import annotations

import time

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.core.results import ExperimentRecord
from repro.operations import OpCode
from repro.tracegen import (
    CommunicationBehaviour,
    StochasticAppDescription,
    StochasticGenerator,
)


def run_granularity(mean_ops_between_rounds: float) -> dict:
    machine = generic_multicomputer("mesh", (2, 2))
    n = machine.n_nodes
    desc = StochasticAppDescription(
        comm=CommunicationBehaviour(
            mean_ops_between_rounds=mean_ops_between_rounds))
    traces = StochasticGenerator(desc, n, seed=13) \
        .generate_instruction_level(40_000)

    wb = Workbench(machine)
    t0 = time.perf_counter()
    accurate = wb.run_mixed_traces(traces)
    host_accurate = time.perf_counter() - t0

    # Fast prototyping: same comm structure, every task replaced by the
    # global mean task length (the information a stochastic description
    # would carry).
    total_task = sum(t.total_task_cycles for t in accurate.task_stats)
    n_tasks = sum(t.tasks_emitted for t in accurate.task_stats)
    mean_task = total_task / max(n_tasks, 1)
    from repro.operations import compute
    from repro.operations.trace import Trace, TraceSet
    approx = []
    for tr in traces:
        ops = []
        run_len = 0
        for op in tr:
            if op.code in (OpCode.SEND, OpCode.RECV, OpCode.ASEND,
                           OpCode.ARECV):
                if run_len:
                    ops.append(compute(mean_task))
                    run_len = 0
                ops.append(op)
            else:
                run_len += 1
        if run_len:
            ops.append(compute(mean_task))
        approx.append(Trace(tr.node, ops))
    t0 = time.perf_counter()
    fast = wb.run_comm_only(TraceSet(approx))
    host_fast = time.perf_counter() - t0

    err = abs(fast.total_cycles - accurate.total_cycles) \
        / accurate.total_cycles
    return {
        "ops_between_comm": mean_ops_between_rounds,
        "accurate_cycles": accurate.total_cycles,
        "fast_cycles": fast.total_cycles,
        "prediction_error": err,
        "host_speedup": host_accurate / max(host_fast, 1e-9),
    }


@pytest.mark.benchmark(group="ablation")
def test_abstraction_tradeoff(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [run_granularity(g) for g in (500, 2_000, 10_000)],
        rounds=1, iterations=1)
    record = ExperimentRecord(
        "A1", "ablation: task-level approximation error and host saving "
        "vs communication granularity")
    record.add_rows(rows)
    emit("A1_abstraction", format_table(
        rows, title="abstraction-level trade-off:"), record)
    # The fast mode buys a large host saving at every granularity...
    assert all(r["host_speedup"] > 3 for r in rows)
    # ...with bounded error for these statistically homogeneous loads.
    assert all(r["prediction_error"] < 0.25 for r in rows)
