"""Experiment V2 — validation-style: application speedup curves.

The workbench's end purpose: predict how applications scale.  SPMD
matmul and Jacobi run on 1..16 nodes of the generic multicomputer; the
speedup table shows the communication-induced efficiency roll-off the
paper's introduction motivates, and a small/large problem pair shows
the comm/comp crossover (small problems stop scaling earlier).
"""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import format_table, speedup_table
from repro.apps import make_jacobi, make_matmul
from repro.core.results import ExperimentRecord

NODE_COUNTS = (1, 2, 4, 8, 16)


def machine_for(n: int):
    return generic_multicomputer("mesh", (n, 1) if n > 1 else (1, 1))


def scaling(program_factory) -> dict[int, float]:
    times = {}
    for n in NODE_COUNTS:
        wb = Workbench(machine_for(n))
        times[n] = wb.run_hybrid(program_factory()).total_cycles
    return times


def run_experiment() -> dict:
    return {
        "matmul32": speedup_table(scaling(lambda: make_matmul(n=32))),
        "jacobi32": speedup_table(
            scaling(lambda: make_jacobi(grid=32, iterations=3))),
        "matmul12_small": speedup_table(scaling(lambda: make_matmul(n=12))),
    }


@pytest.mark.benchmark(group="validation")
def test_application_speedup(benchmark, emit):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record = ExperimentRecord(
        "V2", "application speedup on 1..16 nodes (generic machine)",
        parameters={"node_counts": list(NODE_COUNTS)})
    text_parts = []
    for label, rows in data.items():
        record.add_rows([{**r, "workload": label} for r in rows])
        text_parts.append(format_table(rows, title=f"{label}:"))
    emit("V2_speedup", "\n\n".join(text_parts), record)

    mm = {r["nodes"]: r for r in data["matmul32"]}
    jc = {r["nodes"]: r for r in data["jacobi32"]}
    small = {r["nodes"]: r for r in data["matmul12_small"]}

    # Parallelism helps at all: 16 nodes beat 1 node on the big matmul.
    assert mm[16]["speedup"] > 4
    # Efficiency decays with node count (communication share grows).
    assert mm[16]["efficiency"] < mm[2]["efficiency"]
    assert jc[16]["efficiency"] < jc[2]["efficiency"]
    # Comm/comp crossover: the small problem scales worse than the big
    # one at 16 nodes.
    assert small[16]["efficiency"] < mm[16]["efficiency"]
