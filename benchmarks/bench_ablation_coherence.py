"""Experiment A2 — ablation: snoopy protocol choice (MSI vs MESI).

Section 4.1 notes the caches "provide a snoopy bus protocol.  However,
other strategies ... can be added with relative ease."  This ablation
compares the two implemented protocols on the sharing patterns that
separate them:

* *private data* (read-then-write, no sharing) — MESI's EXCLUSIVE state
  eliminates the upgrade transaction MSI pays for every first write;
* *producer/consumer* and *migratory* sharing — both protocols pay
  coherence traffic; the gap narrows.
"""

from __future__ import annotations

import pytest

from repro import Workbench, smp_node
from repro.analysis import format_table
from repro.core.results import ExperimentRecord
from repro.operations import MemType, load, store


def private_pattern(cpu: int, lines: int = 64, reps: int = 4) -> list:
    """Each CPU reads then writes its own region (no sharing)."""
    base = 0x100000 * (cpu + 1)
    ops = []
    for _ in range(reps):
        for i in range(lines):
            a = base + i * 32
            ops.append(load(MemType.INT64, a))
            ops.append(store(MemType.INT64, a))
    return ops


def producer_consumer_pattern(cpu: int, lines: int = 64,
                              reps: int = 4) -> list:
    """CPU 0 writes a shared buffer, the others read it, repeatedly."""
    base = 0x200000
    ops = []
    for _ in range(reps):
        for i in range(lines):
            a = base + i * 32
            ops.append(store(MemType.INT64, a) if cpu == 0
                       else load(MemType.INT64, a))
    return ops


def migratory_pattern(cpu: int, lines: int = 16, reps: int = 8) -> list:
    """Every CPU read-modify-writes the same lines (lock-like)."""
    base = 0x300000
    ops = []
    for _ in range(reps):
        for i in range(lines):
            a = base + i * 32
            ops.append(load(MemType.INT64, a))
            ops.append(store(MemType.INT64, a))
    return ops


PATTERNS = [("private", private_pattern),
            ("producer_consumer", producer_consumer_pattern),
            ("migratory", migratory_pattern)]


def run_matrix(n_cpus: int = 4) -> list[dict]:
    rows = []
    for pattern_name, pattern in PATTERNS:
        for protocol in ("msi", "mesi"):
            wb = Workbench(smp_node(n_cpus, coherence=protocol))
            res = wb.run_smp([pattern(c) for c in range(n_cpus)])
            coh = res.coherence_summary
            rows.append({
                "pattern": pattern_name,
                "protocol": protocol,
                "cycles": res.total_cycles,
                "bus_transactions": coh["transactions"],
                "upgrades": coh["bus_upgr"],
                "invalidations": coh["invalidations"],
                "cache_to_cache": coh["cache_to_cache"],
            })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_msi_vs_mesi(benchmark, emit):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    record = ExperimentRecord(
        "A2", "ablation: MSI vs MESI bus traffic by sharing pattern "
        "(4-CPU SMP node)")
    record.add_rows(rows)
    emit("A2_coherence", format_table(
        rows, title="MSI vs MESI on a 4-CPU SMP node:"), record)

    by = {(r["pattern"], r["protocol"]): r for r in rows}
    # Private data: MESI eliminates the write-upgrade traffic entirely.
    assert by[("private", "mesi")]["upgrades"] == 0
    assert by[("private", "msi")]["upgrades"] > 0
    assert by[("private", "mesi")]["bus_transactions"] < \
        by[("private", "msi")]["bus_transactions"]
    assert by[("private", "mesi")]["cycles"] <= \
        by[("private", "msi")]["cycles"]
    # Producer/consumer: E never helps (the producer always finds the
    # consumers' copies), so the protocols behave identically.
    assert by[("producer_consumer", "msi")]["cycles"] == \
        by[("producer_consumer", "mesi")]["cycles"]
    # Migratory sharing thrashes under both protocols; the absolute
    # numbers are phase-sensitive (reported, not asserted), but both
    # must show real sharing traffic.
    for protocol in ("msi", "mesi"):
        assert by[("migratory", protocol)]["invalidations"] > 0
        assert by[("migratory", protocol)]["cache_to_cache"] > 0
