"""Experiment E2 — extension: runtime-system-level dynamic scheduling.

The paper's abstract scopes Mermaid "from the application level to the
runtime system level"; this bench exercises that top level with a
self-scheduling task farm (master + workers, recv_any).  The regenerated
artifact: the same program and seed on interconnects of different speed
produce *different schedules* — quantified as the fraction of tasks that
move to another worker — which is precisely what execution-driven
simulation captures and a static trace cannot (Section 2's validity
argument).
"""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer, vary_machine
from repro.analysis import format_table
from repro.apps import make_master_worker
from repro.core.results import ExperimentRecord

N_TASKS = 32
SEED = 7


def farm(machine) -> tuple[dict, float]:
    collect: dict = {}
    res = Workbench(machine).run_hybrid(
        make_master_worker(n_tasks=N_TASKS, mean_flops=600, seed=SEED,
                           task_bytes=8192, collect=collect))
    return collect, res.total_cycles


def run_experiment() -> list[dict]:
    base = generic_multicomputer("mesh", (2, 2))
    bandwidths = [0.25, 1.0, 4.0, 16.0]
    machines = vary_machine(
        base, lambda m, bw: setattr(m.network, "link_bandwidth", bw),
        bandwidths)
    schedules = []
    rows = []
    for bw, machine in zip(bandwidths, machines):
        collect, cycles = farm(machine)
        schedules.append(collect["assignments"])
        rows.append({
            "link_bandwidth": bw,
            "cycles": cycles,
            "tasks_w1": collect["per_worker"][1],
            "tasks_w2": collect["per_worker"][2],
            "tasks_w3": collect["per_worker"][3],
        })
    # Schedule divergence relative to the fastest machine.
    reference = schedules[-1]
    for i, row in enumerate(rows):
        moved = sum(1 for t in reference
                    if schedules[i][t] != reference[t])
        row["tasks_reassigned_vs_fastest"] = moved
    return rows


@pytest.mark.benchmark(group="extension")
def test_taskfarm_schedule_depends_on_architecture(benchmark, emit):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record = ExperimentRecord(
        "E2", "extension: self-scheduling task farm; schedule divergence "
        "across link bandwidths (same program + seed)")
    record.add_rows(rows)
    emit("E2_taskfarm", format_table(
        rows, title=f"task farm ({N_TASKS} tasks, seed {SEED}) across "
        "interconnects:"), record)

    # Faster links finish sooner, monotonically.
    cycles = [r["cycles"] for r in rows]
    assert cycles == sorted(cycles, reverse=True)
    # Every machine completed all tasks.
    for r in rows:
        assert r["tasks_w1"] + r["tasks_w2"] + r["tasks_w3"] == N_TASKS
    # The slowest machine's schedule differs from the fastest's —
    # execution-driven behaviour a static trace cannot express.
    assert rows[0]["tasks_reassigned_vs_fastest"] > 0
    assert rows[-1]["tasks_reassigned_vs_fastest"] == 0
