"""Experiment F3a — Figure 3a: single-node template parameterization.

Figure 3a is the node template (CPU, cache hierarchy, bus, memory);
its point is that every component is a parameter.  This bench sweeps
the cache design space of the PowerPC-601-like node under a fixed
workload and reports predicted cycles/CPI — the workbench usage the
template exists for.  Shape checks: bigger caches and higher
associativity never hurt; a split L1 beats a thrashing unified one for
a mixed instruction/data working set.

The sweeps fan out over worker processes (``Sweep.run(workers=...)``);
the Pearl kernel's determinism keeps the rows identical to a serial
run.  Set ``REPRO_SWEEP_WORKERS=1`` to force serial execution, or
``REPRO_SWEEP_CACHE`` to a directory to reuse results across runs.
"""

from __future__ import annotations

import os

import pytest

from repro import Sweep, Workbench, powerpc601_node
from repro.analysis import format_table
from repro.core.results import ExperimentRecord
from repro.tracegen import (
    MemoryBehaviour,
    StochasticAppDescription,
    StochasticGenerator,
)


def workload():
    desc = StochasticAppDescription(
        memory=MemoryBehaviour(working_set_bytes=96 * 1024,
                               sequential_fraction=0.4))
    return StochasticGenerator(desc, 1, seed=21).generate_instruction_level(
        40_000)[0]


TRACE = workload()

WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS",
                             str(min(4, os.cpu_count() or 1))))
CACHE_DIR = os.environ.get("REPRO_SWEEP_CACHE")


def run_sweep(sweep: Sweep, workload_id: str) -> list[dict]:
    return sweep.run(run_node, workers=WORKERS, cache=CACHE_DIR,
                     workload_id=workload_id)


def run_node(machine) -> dict:
    res = Workbench(machine).run_single_node(TRACE)
    caches = res.memory_summary["caches"]
    l1 = next(v for k, v in caches.items() if "L1" in k)
    return {"cycles": res.cycles, "cpi": res.cpi,
            "l1_hit_rate": l1["hit_rate"]}


def sweep_cache_size() -> list[dict]:
    def set_size(machine, kib):
        machine.node.cache_levels[0].data.size_bytes = kib * 1024

    sweep = Sweep(powerpc601_node()).axis("l1_kib", set_size,
                                          [4, 8, 16, 32, 64, 128])
    return run_sweep(sweep, "fig3a-40k-stochastic")


def sweep_associativity() -> list[dict]:
    def set_assoc(machine, ways):
        machine.node.cache_levels[0].data.associativity = ways

    sweep = Sweep(powerpc601_node()).axis("l1_ways", set_assoc,
                                          [1, 2, 4, 8])
    return run_sweep(sweep, "fig3a-40k-stochastic")


def sweep_memory_latency() -> list[dict]:
    def set_mem(machine, cycles):
        machine.node.memory.access_cycles = float(cycles)

    sweep = Sweep(powerpc601_node()).axis("dram_access_cycles", set_mem,
                                          [10, 20, 40, 80])
    return run_sweep(sweep, "fig3a-40k-stochastic")


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_cache_size_sweep(benchmark, emit):
    rows = benchmark.pedantic(sweep_cache_size, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F3a-size", "Fig 3a template: L1 size sweep on PPC601-like node")
    record.add_rows(rows)
    emit("F3a_cache_size", format_table(
        rows, title="L1 size sweep (40k-op stochastic workload):"), record)
    cycles = [r["cycles"] for r in rows]
    hit_rates = [r["l1_hit_rate"] for r in rows]
    assert all(a >= b * 0.999 for a, b in zip(cycles, cycles[1:]))
    assert hit_rates[-1] >= hit_rates[0]


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_associativity_sweep(benchmark, emit):
    rows = benchmark.pedantic(sweep_associativity, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F3a-assoc", "Fig 3a template: L1 associativity sweep")
    record.add_rows(rows)
    emit("F3a_associativity", format_table(
        rows, title="L1 associativity sweep:"), record)
    # Direct-mapped must not beat 8-way on this conflict-prone workload.
    assert rows[-1]["cycles"] <= rows[0]["cycles"] * 1.001


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_memory_latency_sweep(benchmark, emit):
    rows = benchmark.pedantic(sweep_memory_latency, rounds=1, iterations=1)
    record = ExperimentRecord(
        "F3a-mem", "Fig 3a template: DRAM access latency sweep")
    record.add_rows(rows)
    emit("F3a_memory_latency", format_table(
        rows, title="DRAM latency sweep:"), record)
    cycles = [r["cycles"] for r in rows]
    assert cycles == sorted(cycles)
