"""Command-line interface: ``python -m repro <command>``.

A thin operational layer over the workbench for the common
no-code-needed tasks:

* ``info``        — list machine presets and their key parameters;
* ``calibrate``   — run the calibration micro-benchmarks on a preset;
* ``slowdown``    — measure detailed- and task-level slowdown (Sec 6);
* ``stochastic``  — fast-prototype a preset under a synthetic workload;
* ``sweep``       — parameter sweep over a preset, optionally fanned
  out over worker processes (``--workers``) with content-addressed
  result caching (``--cache-dir``);
* ``chaos``       — fault-sweep campaign over a bundled app: expand a
  campaign spec into a fault-plan family (severity ladders, exhaustive
  single-link-down packs, correlated failures, rolling outages), run
  the rungs as a sharded cached sweep, and fold the rows into SLO
  verdicts plus the ladder monotonicity invariant;
* ``verify``      — schedule-space verification of a bundled app:
  enumerate alternative same-time orderings (with partial-order
  reduction) and reduce every sanitizer contention cluster to a
  race/benign/deadlock verdict plus a certificate digest;
* ``bound``       — static performance bounds of a bundled app or saved
  trace set (critical path, hot-link ranking, LogP latency floors) with
  no simulation at all; ``--audit CACHE_DIR`` instead cross-checks every
  cached sweep row against its own bounds (PB rules);
* ``trace``       — run a bundled app with the event tracer attached
  and export Chrome ``trace_event`` JSON (``repro trace pingpong --out
  trace.json``, opens in Perfetto / ``about://tracing``); also still
  profiles (or dumps) a saved ``.npz`` trace set by path;
* ``stats``       — run a bundled app and print every registered
  metric (the :class:`~repro.observe.MetricRegistry` snapshot);
* ``serve``       — run the async HTTP job server (simulation as a
  service: sweeps and chaos campaigns as submitted jobs with
  progress streaming, quotas and priority lanes);
* ``submit``      — submit a sweep or chaos job to a running server;
* ``status``      — print a job's deterministic record;
* ``fetch``       — print a finished job's rows / campaign verdicts
  (byte-identical to the in-process run of the same request).

Machines are named by preset, with overrides as ``key=value`` pairs
(e.g. ``--set network.link_bandwidth=8``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from .analysis import (
    SlowdownMeter,
    comm_report,
    format_table,
    trace_set_profile,
)
from .core.config import MachineConfig
from .core.workbench import Workbench
from .machines import calibrate as run_calibration
from .machines import generic_multicomputer, powerpc601_node, smp_node, t805_grid
from .operations.trace import TraceSet
from .tracegen import StochasticAppDescription

__all__ = ["main", "build_machine", "PRESETS"]

PRESETS: dict[str, Callable[[], MachineConfig]] = {
    "t805-grid": lambda: t805_grid(4, 4),
    "t805-grid-2x2": lambda: t805_grid(2, 2),
    "powerpc601": powerpc601_node,
    "generic-mesh": lambda: generic_multicomputer("mesh", (4, 4)),
    "generic-hypercube": lambda: generic_multicomputer("hypercube", (4,)),
    "generic-fattree": lambda: _fattree(),
    "smp4": lambda: smp_node(4),
}


def _app_traces() -> dict[str, Callable]:
    """Bundled task-level apps runnable by name (trace/stats commands)."""
    from .apps import (alltoall_task_traces, pingpong_task_traces,
                       pipeline_task_traces)
    return {
        "pingpong": pingpong_task_traces,
        "alltoall": alltoall_task_traces,
        "pipeline": pipeline_task_traces,
    }


def _resolve_app(name: str) -> Optional[str]:
    """Map ``examples/pingpong.py`` / ``pingpong`` to an app name."""
    app = name
    if app.startswith("examples/"):
        app = app[len("examples/"):]
    if app.endswith(".py"):
        app = app[:-3]
    return app if app in _app_traces() else None


def _fattree() -> MachineConfig:
    machine = generic_multicomputer("mesh", (2, 2))
    machine.network.topology.kind = "fat_tree"
    machine.network.topology.dims = (2, 4)
    machine.network.routing = "shortest_path"
    machine.name = "generic-fattree2x4"
    return machine.validate()


def _resolve_path(machine: MachineConfig, path: str):
    """Walk a ``dotted.path`` into the config; return (target, leaf)."""
    target = machine
    parts = path.split(".")
    for part in parts[:-1]:
        if not hasattr(target, part):
            raise SystemExit(f"unknown config path {path!r}")
        target = getattr(target, part)
    leaf = parts[-1]
    if not hasattr(target, leaf):
        raise SystemExit(f"unknown config path {path!r}")
    return target, leaf


def _parse_value(current: object, raw: str) -> object:
    """Parse ``raw`` to the type of the attribute's current value."""
    if isinstance(current, bool):
        return raw.lower() in ("1", "true", "yes")
    if isinstance(current, int):
        return int(raw)
    if isinstance(current, float):
        return float(raw)
    if isinstance(current, tuple):
        return tuple(int(x) for x in raw.split(","))
    return raw


def _split_spec(spec: str) -> tuple[str, str]:
    try:
        path, raw = spec.split("=", 1)
    except ValueError:
        raise SystemExit(f"bad override {spec!r}; expected key=value")
    return path, raw


def _apply_override(machine: MachineConfig, spec: str) -> None:
    """Apply one ``dotted.path=value`` override onto the config."""
    path, raw = _split_spec(spec)
    target, leaf = _resolve_path(machine, path)
    setattr(target, leaf, _parse_value(getattr(target, leaf), raw))


class _AxisSetter:
    """Picklable sweep mutator: set one dotted config path per variant."""

    def __init__(self, path: str) -> None:
        self.path = path

    def __call__(self, machine: MachineConfig, value: object) -> None:
        target, leaf = _resolve_path(machine, self.path)
        setattr(target, leaf, value)


def build_machine(preset: str, overrides: Sequence[str] = ()) -> MachineConfig:
    """Instantiate a preset and apply ``key=value`` overrides."""
    try:
        machine = PRESETS[preset]()
    except KeyError:
        raise SystemExit(
            f"unknown preset {preset!r}; choose from: "
            + ", ".join(sorted(PRESETS)))
    for spec in overrides:
        _apply_override(machine, spec)
    return machine.validate()


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name, factory in sorted(PRESETS.items()):
        m = factory()
        rows.append({
            "preset": name,
            "nodes": m.n_nodes,
            "cpus/node": m.node.n_cpus,
            "clock_mhz": m.node.cpu.clock_hz / 1e6,
            "topology": m.network.topology.kind,
            "switching": m.network.switching,
            "coherence": f"{m.node.coherence_style}/{m.node.coherence}",
        })
    print(format_table(rows, title="machine presets:"))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    machine = build_machine(args.preset, args.set or ())
    report = run_calibration(machine)
    print(report.format())
    return 0


def _cmd_slowdown(args: argparse.Namespace) -> int:
    from .tracegen import StochasticGenerator
    machine = build_machine(args.preset, args.set or ())
    wb = Workbench(machine)
    meter = SlowdownMeter(host_clock_hz=args.host_clock_hz)
    desc = StochasticAppDescription()
    n = machine.n_nodes
    instr = StochasticGenerator(desc, n, seed=1).generate_instruction_level(
        args.ops)
    tasks = StochasticGenerator(desc, n, seed=1).generate_task_level(
        max(args.ops // 2000, 1))
    if machine.node.n_cpus == 1:
        meter.measure("detailed (instruction level)", n,
                      lambda: wb.run_mixed_traces(instr))
    meter.measure("fast prototyping (task level)", n,
                  lambda: wb.run_comm_only(tasks))
    print(meter.format())
    return 0


def _cmd_stochastic(args: argparse.Namespace) -> int:
    from .tracegen import WORKLOAD_CLASSES
    machine = build_machine(args.preset, args.set or ())
    wb = Workbench(machine)
    if args.workload:
        desc = WORKLOAD_CLASSES[args.workload]()
    else:
        desc = StochasticAppDescription(
            mean_task_cycles=args.mean_task_cycles)
    result = wb.run_stochastic(desc, level="task", rounds=args.rounds,
                               seed=args.seed)
    print(comm_report(result))
    return 0


def _sweep_point_runner(machine: MachineConfig, workload: Optional[str],
                        rounds: int, seed: int, faults=None) -> dict:
    """Per-variant runner for ``repro sweep`` (module-level: picklable)."""
    from .tracegen import WORKLOAD_CLASSES
    desc = (WORKLOAD_CLASSES[workload]() if workload
            else StochasticAppDescription())
    res = Workbench(machine, faults=faults).run_stochastic(
        desc, level="task", rounds=rounds, seed=seed)
    row = {
        "total_cycles": res.total_cycles,
        "mean_latency": res.message_latency.mean,
        "time_ms": res.total_cycles / machine.node.cpu.clock_hz * 1e3,
        "events": res.events_executed,
    }
    if res.fault_summary is not None:
        row["dropped"] = res.fault_summary["dropped"]
        row["retransmissions"] = res.retransmissions
        row["delivery_failed"] = res.delivery_failures
    return row


def _load_faults(path: Optional[str]):
    """Load ``--faults FILE`` into a normalized plan (None when absent)."""
    if not path:
        return None
    from .faults import as_fault_plan
    return as_fault_plan(path)


def _sweep_progress(done: int, total: int, row: dict) -> None:
    """Per-variant progress line on stderr (``sweep --progress``)."""
    status = "error" if "error" in row else "ok"
    wall = row.get("wall_time_s")
    timing = f" {wall:.2f}s" if wall is not None else ""
    print(f"  [{done}/{total}] {status}{timing}", file=sys.stderr)


def _cmd_sweep(args: argparse.Namespace) -> int:
    import functools

    from .core.experiment import Sweep
    from .parallel import ResultCache

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    machine = build_machine(args.preset, args.set or ())
    sweep = Sweep(machine, label=args.preset)
    for spec in args.axis:
        path, raw = _split_spec(spec)
        target, leaf = _resolve_path(machine, path)
        current = getattr(target, leaf)
        try:
            values = [_parse_value(current, v) for v in raw.split(",")]
        except ValueError as exc:
            raise SystemExit(f"bad axis value in {spec!r}: {exc}")
        sweep.axis(path, _AxisSetter(path), values)

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    runner = functools.partial(_sweep_point_runner, workload=args.workload,
                               rounds=args.rounds, seed=args.seed)
    workload_id = (f"cli-stochastic:{args.workload or 'generic'}"
                   f":rounds={args.rounds}:seed={args.seed}")
    rows = sweep.run(runner, workers=args.workers, cache=cache,
                     workload_id=workload_id,
                     progress=_sweep_progress if args.progress else None,
                     timing=args.timing, faults=_load_faults(args.faults))
    # Error rows carry the remote traceback for job records; the table
    # view keeps only the one-line message.
    shown = [{k: v for k, v in row.items() if k != "traceback"}
             for row in rows]
    print(format_table(
        shown, title=f"sweep of {args.preset} "
                     f"({len(rows)} variants, workers={args.workers}):"))
    if cache is not None:
        print(f"cache: {cache.stats.format()} (dir={args.cache_dir})")
    return 0


def _chaos_progress(done: int, total: int, row: dict) -> None:
    """Per-rung progress line on stderr (``chaos --progress``)."""
    status = "error" if "error" in row else "ok"
    print(f"  [{done}/{total}] {row.get('rung', '?')} {status}",
          file=sys.stderr)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import AppCampaignRunner, run_campaign
    from .core.config import ConfigError

    app = _resolve_app(args.app)
    if app is None:
        raise SystemExit(
            f"unknown app {args.app!r}; choose from: "
            + ", ".join(sorted(_app_traces())))
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    machine = build_machine(args.preset, args.set or ())
    tracer = None
    if args.trace_out:
        from .observe import Tracer
        tracer = Tracer()
    runner = AppCampaignRunner(app, size=args.size, repeats=args.repeats)
    try:
        result = run_campaign(
            args.campaign, machine, runner, workers=args.workers,
            cache=args.cache_dir,
            progress=_chaos_progress if args.progress else None,
            timing=args.timing, tracer=tracer)
    except ConfigError as exc:
        raise SystemExit(f"bad campaign spec: {exc}")
    # Reports go to stdout; run bookkeeping (cache stats, trace path)
    # goes to stderr, so stdout stays byte-identical between cold and
    # warm cache runs (the CI smoke job diffs it).
    if args.json:
        print(result.to_json())
    else:
        print(result.format())
    if tracer is not None:
        tracer.export_chrome(args.trace_out)
        print(f"wrote {args.trace_out} ({tracer.emitted} records)",
              file=sys.stderr)
    if result.cache_stats is not None:
        stats = result.cache_stats
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['stores']} stored (dir={args.cache_dir})",
              file=sys.stderr)
    return 0 if result.ok else 1


def _check_targets(args: argparse.Namespace) -> list:
    """Build (kind, name, artifact) check targets from the CLI selection.

    With no explicit ``--preset``/``--trace``/``--workload`` the whole
    bundle is checked: every machine preset, every workload-class
    description (plus the generic one), the bundled apps' task traces,
    and a generated task-level trace set per workload class.
    """
    from .tracegen import WORKLOAD_CLASSES, StochasticGenerator

    explicit = bool(args.preset or args.trace or args.workload)
    targets: list = []

    for name in (args.preset or (() if explicit else sorted(PRESETS))):
        machine = PRESETS[name]()
        for spec in (args.set or ()):
            _apply_override(machine, spec)
        targets.append(("machine", name, machine))

    for path in (args.trace or ()):
        targets.append(("traces", path, TraceSet.load(path)))

    workloads = args.workload or (() if explicit
                                  else [None, *sorted(WORKLOAD_CLASSES)])
    for wl in workloads:
        desc = WORKLOAD_CLASSES[wl]() if wl else StochasticAppDescription()
        label = wl or "generic"
        targets.append(("description", label, desc))
        gen = StochasticGenerator(desc, args.nodes, seed=0)
        targets.append(("traces", f"stochastic:{label}",
                        gen.generate_task_level(5)))

    if not explicit:
        from .apps import (alltoall_task_traces, pingpong_task_traces,
                           pipeline_task_traces)
        targets.append(("traces", "app:pingpong", pingpong_task_traces(2)))
        targets.append(("traces", "app:alltoall",
                        alltoall_task_traces(args.nodes)))
        targets.append(("traces", "app:pipeline",
                        pipeline_task_traces(args.nodes)))
        # Static performance bounds (PB rules) of each bundled app on a
        # reference machine: catches statically link-limited workloads.
        bound_machine = PRESETS["t805-grid-2x2"]()
        n = bound_machine.n_nodes
        for app, traces in (("pingpong", pingpong_task_traces(n)),
                            ("alltoall", alltoall_task_traces(n)),
                            ("pipeline", pipeline_task_traces(n))):
            targets.append(("bounds", f"{app}:t805-grid-2x2",
                            (bound_machine, traces)))
    return targets


def _check_determinism(machine, preset: str):
    """Short sanitized task-level run; returns the sanitizer's report."""
    from .check import DeterminismSanitizer
    from .commmodel.network import MultiNodeModel
    from .tracegen import StochasticGenerator

    model = MultiNodeModel(machine)
    sanitizer = DeterminismSanitizer()
    model.sim.attach_sanitizer(sanitizer)
    gen = StochasticGenerator(StochasticAppDescription(), model.n_nodes,
                              seed=0)
    model.run(list(gen.generate_task_level(3)))
    return sanitizer.report(subject=f"determinism:{preset}")


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import (RULES, check_bounds, check_description,
                        check_machine, check_traces, reports_to_dict)

    if args.rules:
        rows = [{"rule": rule, "description": text}
                for rule, text in sorted(RULES.items())]
        print(format_table(rows, title="check rules:"))
        return 0

    reports = []
    for kind, name, artifact in _check_targets(args):
        if kind == "machine":
            report = check_machine(artifact, subject=f"machine:{name}")
            if args.determinism and report.ok:
                report.merge(_check_determinism(artifact, name))
        elif kind == "traces":
            report = check_traces(artifact, subject=f"traces:{name}")
        elif kind == "bounds":
            machine, traces = artifact
            report = check_bounds(machine, traces, subject=f"bounds:{name}")
        else:
            report = check_description(artifact, n_nodes=args.nodes,
                                       subject=f"description:{name}")
        reports.append(report)

    if args.code:
        from pathlib import Path

        from .check.lint import iter_lint_targets, lint_file
        for path in iter_lint_targets([Path(p) for p in args.code]):
            reports.append(lint_file(path).report)

    n_errors = sum(len(r.errors) for r in reports)
    if args.json:
        import json
        print(json.dumps(reports_to_dict(reports), indent=2,
                         sort_keys=True))
    else:
        for report in reports:
            print(report.format())
        n_warn = sum(len(r.warnings) for r in reports)
        print(f"checked {len(reports)} artifact(s): "
              f"{n_errors} error(s), {n_warn} warning(s)")
    return 1 if n_errors else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .check import reports_to_dict
    from .check.lint import (Baseline, LintCache, iter_lint_targets,
                             lint_file)
    from .check.diagnostics import Severity

    cache = LintCache(args.cache_dir) if args.cache_dir else None
    targets = iter_lint_targets([Path(p) for p in args.paths])
    results = [lint_file(p, cache=cache) for p in targets]
    reports = [r.report for r in results]
    all_diags = [d for r in reports for d in r.diagnostics]
    suppressed = sum(r.suppressed for r in results)

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.update_baseline:
        if baseline_path is None:
            raise SystemExit("--update-baseline requires --baseline FILE")
        baseline = Baseline.from_reports(reports)
        baseline.save(baseline_path)
        print(f"wrote {baseline_path} ({len(baseline)} finding(s) "
              f"baselined)")
        return 0

    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    new, known = baseline.split(all_diags)
    new_errors = [d for d in new if d.severity is Severity.ERROR]
    stale = baseline.stale(all_diags)

    if args.json:
        import json
        payload = reports_to_dict(
            reports, ok=not new_errors, n_new=len(new),
            n_baselined=len(known), n_suppressed=suppressed,
            n_stale=len(stale))
        if cache is not None:
            payload["cache"] = {"hits": cache.stats.hits,
                                "misses": cache.stats.misses,
                                "stores": cache.stats.stores}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            if report.diagnostics:
                print(report.format())
        n_errors = sum(len(r.errors) for r in reports)
        n_warn = sum(len(r.warnings) for r in reports)
        print(f"linted {len(results)} file(s): {n_errors} error(s) "
              f"({len(new_errors)} new), {n_warn} warning(s), "
              f"{len(known)} baselined, {suppressed} suppressed")
        if stale:
            shown = ", ".join(sorted(stale.values())[:5])
            more = "" if len(stale) <= 5 else f" (+{len(stale) - 5} more)"
            print(f"warning: {len(stale)} stale baseline entry(ies) no "
                  f"longer match any finding: {shown}{more}; refresh "
                  f"with --update-baseline")
        if cache is not None:
            print(f"cache: {cache.stats.format()}")
    return 1 if new_errors else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .check import reports_to_dict
    from .verify import (VERIFY_APPS, ScheduleExplorer, VerifyError,
                         app_verify_target)

    if args.app not in VERIFY_APPS:
        raise SystemExit(f"unknown app {args.app!r}; choose from: "
                         + ", ".join(VERIFY_APPS))
    machine = build_machine(args.preset, args.set or ())
    target = app_verify_target(machine, args.app)
    explorer = ScheduleExplorer(budget=args.budget,
                                mode="naive" if args.naive else "dpor")
    try:
        result = explorer.explore(target, workers=args.workers)
    except VerifyError as err:
        raise SystemExit(f"verification failed: {err}")
    report = result.report(subject=f"verify:{args.app}:{args.preset}")
    if args.json:
        import json
        print(json.dumps(reports_to_dict([report], verify=result.to_dict()),
                         indent=2, sort_keys=True))
    else:
        print(report.format())
        status = ("schedule-independent" if result.ok
                  else "NOT schedule-independent")
        print(f"verified {args.app} on {args.preset} ({result.mode}): "
              f"{status}; explored {result.schedules_explored}/"
              f"{result.schedules_planned} schedule(s), "
              f"{result.skipped} skipped, "
              f"frontier {len(result.frontier)}")
        print(f"certificate {result.certificate}")
    return 0 if result.ok else 1


def _cmd_bound(args: argparse.Namespace) -> int:
    import json

    from .bounds import audit_cache, compute_bounds, static_diagnostics
    from .check import Report, reports_to_dict

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    threshold = args.gap_threshold if args.gap_threshold > 0 else None

    if args.audit:
        if args.target:
            raise SystemExit("--audit audits a cache directory; drop the "
                             "app/trace argument")
        try:
            result = audit_cache(args.audit, workers=args.workers,
                                 gap_threshold=threshold)
        except FileNotFoundError as exc:
            raise SystemExit(str(exc))
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        else:
            print(result.format())
        return 0 if result.ok else 1

    if not args.target:
        raise SystemExit("pass a bundled app name or .npz trace-set path "
                         "(or --audit CACHE_DIR)")
    machine = build_machine(args.preset, args.set or ())
    app = _resolve_app(args.target)
    if app is not None:
        traces = _app_traces()[app](machine.n_nodes)
        subject = f"bounds:{app}:{args.preset}"
    else:
        traces = TraceSet.load(args.target)
        subject = f"bounds:{args.target}"
    bound = compute_bounds(machine, traces, subject=subject)
    report = Report(subject=subject)
    report.extend(static_diagnostics(bound, subject=subject))
    if args.json:
        print(json.dumps(reports_to_dict([report], bound=bound.to_dict()),
                         indent=2, sort_keys=True))
    else:
        print(bound.format())
        if report.diagnostics:
            print(report.format())
    return 1 if report.errors else 0


def _run_app_traced(app: str, preset: str, overrides: Sequence[str],
                    ring: Optional[int] = None, faults=None):
    """Run a bundled app on a preset with a tracer attached.

    Returns ``(model, tracer, result)``; shared by the ``trace`` and
    ``stats`` commands.
    """
    from .commmodel.network import MultiNodeModel
    from .observe import Tracer

    machine = build_machine(preset, overrides)
    model = MultiNodeModel(machine, faults=faults)
    tracer = Tracer(capacity=ring)
    model.sim.attach_tracer(tracer)
    traces = _app_traces()[app](model.n_nodes)
    if faults is not None:
        from .faults import DeliveryFailed
        try:
            result = model.run(list(traces))
        except DeliveryFailed as err:
            raise SystemExit(
                f"fault plan defeated the transport: {err} "
                f"(raise transport.max_retries/timeout_cycles or lower "
                f"the drop probability)")
    else:
        result = model.run(list(traces))
    return model, tracer, result


def _cmd_trace(args: argparse.Namespace) -> int:
    app = _resolve_app(args.path)
    if app is None:
        traces = TraceSet.load(args.path)
        rows = trace_set_profile(traces)
        print(format_table(rows, title=f"trace profile ({args.path}):"))
        if args.dump is not None:
            from .analysis import dump_trace
            dump_trace(traces[args.dump_node], sys.stdout, limit=args.dump)
        return 0

    from .observe import validate_chrome_trace
    model, tracer, result = _run_app_traced(app, args.preset,
                                            args.set or (), args.ring,
                                            faults=_load_faults(args.faults))
    doc = tracer.export_chrome(args.out)
    counts = validate_chrome_trace(doc)
    print(f"traced {app} on {args.preset}: "
          f"{result.events_executed} kernel events, "
          f"{tracer.emitted} trace records "
          f"({tracer.dropped} dropped by the ring buffer)")
    rows = [{"category": cat, "records": n}
            for cat, n in sorted(tracer.counts_by_category().items())]
    print(format_table(rows, title="records by category:"))
    print(f"wrote {args.out} "
          f"({sum(counts.values())} events; open in Perfetto or "
          f"about://tracing)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    app = _resolve_app(args.app)
    if app is None:
        raise SystemExit(
            f"unknown app {args.app!r}; choose from: "
            + ", ".join(sorted(_app_traces())))
    model, _tracer, result = _run_app_traced(app, args.preset,
                                             args.set or (),
                                             faults=_load_faults(args.faults))
    registry = model.registry
    if args.json:
        import json
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True,
                         default=str))
        return 0
    print(format_table(
        registry.rows(),
        title=f"{app} on {args.preset} "
              f"({len(registry)} metric sources, "
              f"{result.events_executed} kernel events):"))
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _cmd_serve(args: argparse.Namespace) -> int:
    from .parallel.executor import InProcessExecutor, LocalAsyncExecutor
    from .service import JobManager, JobScheduler, ResultStore, run_server

    if args.workers is not None and args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.executor == "inprocess":
        executor = InProcessExecutor(workers=args.workers,
                                     job_timeout_s=args.job_timeout)
    else:
        executor = LocalAsyncExecutor(workers=args.workers,
                                      job_timeout_s=args.job_timeout)
    store = ResultStore(args.store) if args.store else None
    try:
        scheduler = JobScheduler(tenant_quota=args.tenant_quota,
                                 starvation_bound=args.starvation_bound)
    except ValueError as exc:
        raise SystemExit(str(exc))
    manager = JobManager(executor=executor, store=store,
                         scheduler=scheduler)

    def announce(url: str) -> None:
        # Parsed by clients discovering an ephemeral --port 0 bind.
        print(f"repro service listening on {url}", flush=True)

    run_server(manager, args.host, args.port, announce=announce)
    return 0


def _submit_request(args: argparse.Namespace) -> dict:
    """Build the JSON job request from ``repro submit`` arguments."""
    import json

    request: dict = {"kind": args.job_kind, "preset": args.preset,
                     "set": args.set or [], "tenant": args.tenant,
                     "lane": args.lane}
    if args.timeout is not None:
        request["timeout_s"] = args.timeout
    if args.job_kind == "sweep":
        request.update({"axes": args.axis, "workload": args.workload,
                        "rounds": args.rounds, "seed": args.seed,
                        "on_error": args.on_error, "timing": args.timing})
        if args.faults:
            try:
                request["faults"] = json.loads(
                    Path(args.faults).read_text())
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot read fault plan "
                                 f"{args.faults!r}: {exc}")
    else:
        try:
            request["campaign"] = json.loads(
                Path(args.campaign).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read campaign spec "
                             f"{args.campaign!r}: {exc}")
        request.update({"app": args.app, "size": args.size,
                        "repeats": args.repeats, "workers": args.workers})
    return request


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient
    return ServiceClient(args.server)


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceError

    client = _service_client(args)
    request = _submit_request(args)
    try:
        record = client.submit(request)
        if args.wait:
            record = client.wait(record["id"], poll_s=args.poll)
    except ServiceError as exc:
        raise SystemExit(f"service error ({exc.status}): {exc.message}")
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.server}: {exc}")
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.wait and record["state"] != "done":
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceError

    client = _service_client(args)
    try:
        record = client.status(args.job)
    except ServiceError as exc:
        raise SystemExit(f"service error ({exc.status}): {exc.message}")
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.server}: {exc}")
    print(json.dumps(record, indent=2, sort_keys=True))
    return 1 if record["state"] == "failed" else 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceError

    client = _service_client(args)
    try:
        result = client.result(args.job)
    except ServiceError as exc:
        raise SystemExit(f"service error ({exc.status}): {exc.message}")
    except OSError as exc:
        raise SystemExit(f"cannot reach {args.server}: {exc}")
    # Sweep rows / chaos verdicts only, dumped exactly like an
    # in-process run would dump them — the CI smoke job `cmp`s this.
    payload = (result.get("rows") if result["kind"] == "sweep"
               else result.get("campaign"))
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mermaid architecture workbench (IPPS 1997 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list machine presets")

    for name, help_text in (("calibrate", "calibration micro-benchmarks"),
                            ("slowdown", "Section-6 slowdown measurement"),
                            ("stochastic", "fast-prototype a preset")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("preset", choices=sorted(PRESETS))
        p.add_argument("--set", action="append", metavar="PATH=VALUE",
                       help="config override, e.g. "
                            "network.link_bandwidth=8")
        if name == "slowdown":
            p.add_argument("--ops", type=int, default=20_000,
                           help="instructions per node (default 20000)")
            p.add_argument("--host-clock-hz", type=float, default=2e9)
        if name == "stochastic":
            p.add_argument("--rounds", type=int, default=30)
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--mean-task-cycles", type=float,
                           default=20_000.0)
            from .tracegen import WORKLOAD_CLASSES as _classes
            p.add_argument("--workload", choices=sorted(_classes),
                           default=None,
                           help="use a workload-class preset instead of "
                                "the generic description")

    p = sub.add_parser(
        "sweep", help="parameter sweep over a preset (parallel, cached)")
    p.add_argument("preset", choices=sorted(PRESETS))
    p.add_argument("--axis", action="append", required=True,
                   metavar="PATH=V1,V2,...",
                   help="sweep axis, e.g. network.link_bandwidth=1,2,4,8 "
                        "(repeat for a cross product)")
    p.add_argument("--set", action="append", metavar="PATH=VALUE",
                   help="fixed config override applied before sweeping")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="process-pool size (default 1 = serial)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed result cache; re-runs only "
                        "simulate changed variants")
    p.add_argument("--rounds", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    from .tracegen import WORKLOAD_CLASSES as _wl
    p.add_argument("--workload", choices=sorted(_wl), default=None,
                   help="workload-class preset (default: generic "
                        "stochastic description)")
    p.add_argument("--timing", action="store_true",
                   help="add a per-variant wall_time_s column "
                        "(nondeterministic; not cached)")
    p.add_argument("--progress", action="store_true",
                   help="print per-variant progress on stderr")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="fault-injection plan applied to every variant "
                        "(see repro.faults.FaultPlan; cache keys include "
                        "the plan digest)")

    p = sub.add_parser(
        "check", help="static analysis of machine configs, traces and "
                      "stochastic descriptions")
    p.add_argument("--preset", action="append", choices=sorted(PRESETS),
                   help="machine preset to check (repeatable; default: "
                        "every bundled preset, app and description)")
    p.add_argument("--set", action="append", metavar="PATH=VALUE",
                   help="config override applied to each --preset "
                        "before checking")
    p.add_argument("--trace", action="append", metavar="PATH",
                   help="saved .npz trace set to check (repeatable)")
    from .tracegen import WORKLOAD_CLASSES as _wl2
    p.add_argument("--workload", action="append", choices=sorted(_wl2),
                   help="workload-class description to check (repeatable)")
    p.add_argument("--nodes", type=int, default=4, metavar="N",
                   help="node count for description/trace-generation "
                        "checks (default 4)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable diagnostics on stdout")
    p.add_argument("--rules", action="store_true",
                   help="print the rule-id table and exit")
    p.add_argument("--determinism", action="store_true",
                   help="also run a short sanitized simulation per "
                        "machine, flagging tie-break-sensitive schedules")
    p.add_argument("--code", action="append", metavar="PATH",
                   help="also lint Python model source at PATH "
                        "(file or directory, repeatable; PY rules)")
    p.add_argument("--fix-none", action="store_true", dest="fix_none",
                   help="never rewrite artifacts (reserved; checking is "
                        "already read-only)")

    p = sub.add_parser(
        "lint", help="source-level lint of model/app Python code "
                     "(determinism hazards, pearl-API misuse, hygiene)")
    p.add_argument("paths", nargs="+", metavar="PATH",
                   help="Python files or directories to lint")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="JSON baseline of accepted findings; only new "
                        "findings gate the exit code")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline FILE from current findings "
                        "and exit")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="incremental cache keyed by file content and "
                        "analyzer version")
    p.add_argument("--json", action="store_true",
                   help="machine-readable diagnostics on stdout "
                        "(same schema as `repro check --json`)")

    p = sub.add_parser(
        "verify", help="schedule-space verification of a bundled app: "
                       "race/deadlock verdicts under same-time "
                       "tie-break perturbation")
    p.add_argument("app",
                   help="bundled app: pingpong, alltoall, pipeline or "
                        "masterworker")
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="t805-grid-2x2",
                   help="machine preset to verify the app on")
    p.add_argument("--set", action="append", metavar="PATH=VALUE",
                   help="config override, e.g. network.switching=wormhole")
    p.add_argument("--budget", type=int, default=64, metavar="N",
                   help="max schedules to execute, baseline included "
                        "(default 64); unexplored orderings are "
                        "reported as the frontier")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="shard independent schedules over N processes "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--naive", action="store_true",
                   help="disable partial-order reduction: permute every "
                        "same-time dispatch burst, not just contention "
                        "clusters")
    p.add_argument("--json", action="store_true",
                   help="machine-readable verdicts + certificate on "
                        "stdout (check/lint diagnostic schema)")

    p = sub.add_parser(
        "chaos", help="fault-sweep campaign over a bundled app with SLO "
                      "verdicts (severity ladders, single-link-down "
                      "packs, correlated failures, rolling outages)")
    p.add_argument("app",
                   help="bundled app: pingpong, alltoall or pipeline")
    p.add_argument("--campaign", required=True, metavar="SPEC.json",
                   help="campaign spec JSON (see repro.chaos."
                        "CampaignSpec: base plan + generators + SLOs)")
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="t805-grid-2x2",
                   help="machine preset to run the campaign on")
    p.add_argument("--set", action="append", metavar="PATH=VALUE",
                   help="config override, e.g. network.switching=wormhole")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="pack campaign rungs onto N processes "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed result cache shared across "
                        "rungs; keys include each rung's plan digest")
    p.add_argument("--size", type=int, default=1024, metavar="BYTES",
                   help="app message/block size (default 1024)")
    p.add_argument("--repeats", type=int, default=4, metavar="N",
                   help="app repeats/rounds/items (default 4)")
    p.add_argument("--timing", action="store_true",
                   help="add a per-rung wall_time_s column "
                        "(nondeterministic; excluded from --json)")
    p.add_argument("--progress", action="store_true",
                   help="print per-rung progress on stderr")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="also export the campaign as Chrome "
                        "trace_event JSON")
    p.add_argument("--json", action="store_true",
                   help="machine-readable rows + verdicts on stdout "
                        "(deterministic: byte-identical across reruns "
                        "and worker counts)")

    p = sub.add_parser(
        "bound", help="static performance bounds (critical path, hot "
                      "links, LogP latency) of an app or trace set — no "
                      "simulation; --audit cross-checks cached sweep rows")
    p.add_argument("target", nargs="?", default=None,
                   help="bundled app (pingpong/alltoall/pipeline) or a "
                        ".npz trace-set path; omit with --audit")
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="t805-grid-2x2",
                   help="machine preset to bound the workload on")
    p.add_argument("--set", action="append", metavar="PATH=VALUE",
                   help="config override, e.g. network.link_bandwidth=8")
    p.add_argument("--audit", default=None, metavar="CACHE_DIR",
                   help="cross-check every cached sweep row in CACHE_DIR "
                        "against its static bounds (PB001/PB003)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="audit rows on N processes (default 1 = serial; "
                        "output is byte-identical for any N)")
    p.add_argument("--gap-threshold", type=float, default=10.0,
                   dest="gap_threshold", metavar="X",
                   help="PB003 note when simulated > X * bound "
                        "(default 10; <= 0 disables)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable bounds + diagnostics on stdout "
                        "(check/lint schema plus a 'bound' block)")

    p = sub.add_parser(
        "trace", help="trace a bundled app to Chrome JSON, or profile a "
                      "saved .npz trace set")
    p.add_argument("path",
                   help="app name (pingpong/alltoall/pipeline, "
                        "'examples/pingpong.py' also accepted) or a "
                        ".npz trace-set path")
    p.add_argument("--out", default="trace.json", metavar="FILE",
                   help="Chrome trace_event JSON output (app mode; "
                        "default trace.json)")
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="t805-grid-2x2",
                   help="machine preset to trace the app on")
    p.add_argument("--set", action="append", metavar="PATH=VALUE",
                   help="config override, e.g. network.switching=wormhole")
    p.add_argument("--ring", type=int, default=None, metavar="N",
                   help="ring-buffer mode: keep only the last N records")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="fault-injection plan (drops/corruption/stalls "
                        "show up as 'faults' instant records)")
    p.add_argument("--dump", type=int, default=None, metavar="N",
                   help="(.npz mode) also dump the first N ops of one node")
    p.add_argument("--dump-node", type=int, default=0)

    p = sub.add_parser(
        "stats", help="run a bundled app and print the metric-registry "
                      "snapshot")
    p.add_argument("app", nargs="?", default="pingpong",
                   help="app name (default pingpong)")
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="t805-grid-2x2")
    p.add_argument("--set", action="append", metavar="PATH=VALUE",
                   help="config override, e.g. network.switching=wormhole")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="fault-injection plan; adds faults.* metric "
                        "sources to the snapshot")
    p.add_argument("--json", action="store_true",
                   help="machine-readable snapshot on stdout")

    p = sub.add_parser(
        "serve", help="run the async HTTP job server (simulation as a "
                      "service)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8421,
                   help="TCP port (0 binds an ephemeral port; the "
                        "chosen one is announced on stdout)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="variant worker processes (default: CPU count)")
    p.add_argument("--executor", choices=("local", "inprocess"),
                   default="local",
                   help="job backend: 'local' = persistent async worker "
                        "supervisor with crash recovery, 'inprocess' = "
                        "run jobs synchronously on the dispatch thread")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="content-addressed result store (rows + job "
                        "records); shared with repro sweep --cache-dir")
    p.add_argument("--tenant-quota", type=int, default=4,
                   dest="tenant_quota", metavar="N",
                   help="max active (queued+running) jobs per tenant")
    p.add_argument("--starvation-bound", type=int, default=8,
                   dest="starvation_bound", metavar="N",
                   help="times a queued lane head may be passed over "
                        "before it runs regardless of priority")
    p.add_argument("--job-timeout", type=float, default=None,
                   dest="job_timeout", metavar="SECONDS",
                   help="default per-job wall-time budget")

    p = sub.add_parser(
        "submit", help="submit a sweep or chaos job to a running server")
    kind = p.add_subparsers(dest="job_kind", required=True)
    for job_kind in ("sweep", "chaos"):
        k = kind.add_parser(job_kind)
        if job_kind == "sweep":
            k.add_argument("preset", choices=sorted(PRESETS))
            k.add_argument("--axis", action="append", required=True,
                           metavar="PATH=V1,V2,...",
                           help="sweep axis (repeatable)")
            k.add_argument("--workload", default=None,
                           help="stochastic workload class (default: "
                                "generic)")
            k.add_argument("--rounds", type=int, default=2)
            k.add_argument("--seed", type=int, default=0)
            k.add_argument("--on-error", choices=("capture", "raise"),
                           default="capture", dest="on_error")
            k.add_argument("--timing", action="store_true",
                           help="add wall_time_s columns "
                                "(nondeterministic)")
            k.add_argument("--faults", default=None, metavar="PLAN.json",
                           help="fault-injection plan file")
        else:
            k.add_argument("app", help="bundled app "
                                       "(pingpong/alltoall/pipeline)")
            k.add_argument("--campaign", required=True,
                           metavar="SPEC.json",
                           help="campaign spec file")
            k.add_argument("--preset", choices=sorted(PRESETS),
                           default="t805-grid-2x2")
            k.add_argument("--size", type=int, default=256)
            k.add_argument("--repeats", type=int, default=1)
            k.add_argument("--workers", type=int, default=1,
                           help="rung workers on the server side")
        k.add_argument("--set", action="append", metavar="PATH=VALUE",
                       help="config override")
        k.add_argument("--server", default="http://127.0.0.1:8421")
        k.add_argument("--tenant", default="default")
        k.add_argument("--lane", choices=("high", "normal", "low"),
                       default="normal")
        k.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS", help="job wall-time budget")
        k.add_argument("--wait", action="store_true",
                       help="poll until the job ends; exit 1 unless it "
                            "finishes 'done'")
        k.add_argument("--poll", type=float, default=0.2,
                       metavar="SECONDS", help="--wait poll interval")

    p = sub.add_parser("status", help="print a job's record")
    p.add_argument("job", help="job id from repro submit")
    p.add_argument("--server", default="http://127.0.0.1:8421")

    p = sub.add_parser(
        "fetch", help="print a finished job's rows / campaign verdicts")
    p.add_argument("job", help="job id from repro submit")
    p.add_argument("--server", default="http://127.0.0.1:8421")
    return parser


_COMMANDS = {
    "info": _cmd_info,
    "calibrate": _cmd_calibrate,
    "slowdown": _cmd_slowdown,
    "stochastic": _cmd_stochastic,
    "sweep": _cmd_sweep,
    "check": _cmd_check,
    "lint": _cmd_lint,
    "verify": _cmd_verify,
    "chaos": _cmd_chaos,
    "bound": _cmd_bound,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
