"""``repro.machines`` — machine presets and parameter calibration.

Preset parameter sets for the paper's reference targets (a T805
transputer grid and a PowerPC 601 node with two cache levels) plus
micro-benchmarks that fit effective parameters back out of the models.
"""

from .calibration import (
    CalibrationReport,
    calibrate,
    measure_arithmetic_throughput,
    measure_link_parameters,
    measure_memory_latencies,
)
from .presets import (
    generic_multicomputer,
    powerpc601_node,
    smp_node,
    t805_grid,
)

__all__ = [
    "CalibrationReport", "calibrate", "generic_multicomputer",
    "measure_arithmetic_throughput", "measure_link_parameters",
    "measure_memory_latencies", "powerpc601_node", "smp_node", "t805_grid",
]
