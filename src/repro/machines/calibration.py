"""Parameter calibration by micro-benchmarking (Section 3).

"Every model has a set of machine parameters that is calibrated with
published information or by benchmarking.  [Application descriptions]
may range from full-blown parallel programs to small benchmarks used to
tune and validate the machine parameters of the simulation models."

This module provides those small benchmarks: synthetic kernels that run
*through the models* and fit the effective parameters back out, so a
user can check that a configured machine behaves like its datasheet
(and, inversely, fit a config to published measurements).
"""

from __future__ import annotations

import numpy as np

from ..commmodel.network import MultiNodeModel
from ..compmodel.hierarchy import AccessKind
from ..compmodel.node import SingleNodeModel
from ..core.config import MachineConfig
from ..operations.ops import recv, send

__all__ = ["measure_memory_latencies", "measure_link_parameters",
           "measure_arithmetic_throughput", "CalibrationReport"]


class CalibrationReport:
    """Configured-vs-measured parameter table."""

    def __init__(self, machine_name: str) -> None:
        self.machine_name = machine_name
        self.rows: list[dict] = []

    def add(self, parameter: str, configured: float, measured: float,
            unit: str) -> None:
        self.rows.append({
            "parameter": parameter,
            "configured": configured,
            "measured": measured,
            "unit": unit,
            "relative_error": (abs(measured - configured)
                               / configured if configured else 0.0),
        })

    def format(self) -> str:
        lines = [f"Calibration report: {self.machine_name}",
                 f"{'parameter':<28}{'configured':>14}{'measured':>14}"
                 f"{'unit':>12}{'rel.err':>10}"]
        for r in self.rows:
            lines.append(
                f"{r['parameter']:<28}{r['configured']:>14.4g}"
                f"{r['measured']:>14.4g}{r['unit']:>12}"
                f"{r['relative_error']:>10.2%}")
        return "\n".join(lines)


def measure_memory_latencies(machine: MachineConfig,
                             accesses: int = 4096) -> dict[str, float]:
    """Effective per-access latency at each hierarchy level.

    Three pointer-walk kernels sized to hit in L1, in the last cache
    level, and in memory; returns mean cycles per load for each.
    """
    results: dict[str, float] = {}
    levels = machine.node.cache_levels

    def walk(region_bytes: int, stride: int, label: str) -> None:
        node = SingleNodeModel(machine.node)
        hier = node.hierarchy
        # Cover the whole region at least twice so a level smaller than
        # the region cannot satisfy the steady-state pass from residue.
        n = max(accesses, 2 * (region_bytes // max(stride, 1)))
        addrs = [(i * stride) % region_bytes for i in range(n)]
        for a in addrs:                     # warm-up pass
            hier.access_cycles(AccessKind.READ, a, 8)
        total = 0.0
        for a in addrs:                     # measured pass
            total += hier.access_cycles(AccessKind.READ, a, 8)
        results[label] = total / n

    if levels:
        l1 = levels[0].data
        walk(l1.size_bytes // 2, l1.line_bytes, "l1_hit_cycles")
        last = levels[-1].data
        if len(levels) > 1:
            walk(last.size_bytes // 2, last.line_bytes, "last_level_cycles")
        # Far exceed the last level to force memory fills every line.
        walk(last.size_bytes * 8, last.line_bytes, "memory_cycles_per_line")
    else:
        walk(1 << 20, 8, "memory_cycles_per_line")
    return results


def measure_link_parameters(machine: MachineConfig,
                            sizes: tuple[int, ...] = (64, 256, 1024, 4096,
                                                      16384),
                            repeats: int = 4) -> dict[str, float]:
    """Fit the latency model  T(n) = alpha + beta * n  from ping-pong.

    Returns ``alpha`` (zero-byte one-way latency, cycles), ``beta``
    (cycles per byte) and the implied bandwidth in bytes/cycle —
    directly comparable to ``NetworkConfig.link_bandwidth``.
    """
    lat: list[float] = []
    for size in sizes:
        net = MultiNodeModel(machine)
        a, b = 0, net.n_nodes - 1
        ops_a = []
        ops_b = []
        for _ in range(repeats):
            ops_a += [send(size, b), recv(b)]
            ops_b += [recv(a), send(size, a)]
        streams: list[list] = [[] for _ in range(net.n_nodes)]
        streams[a] = ops_a
        streams[b] = ops_b
        res = net.run(streams)
        # Round trip time / 2 = one-way latency.
        lat.append(res.total_cycles / (2 * repeats))
    beta, alpha = np.polyfit(np.asarray(sizes, dtype=float),
                             np.asarray(lat), 1)
    return {
        "alpha_cycles": float(alpha),
        "beta_cycles_per_byte": float(beta),
        "effective_bandwidth": float(1.0 / beta) if beta > 0 else float("inf"),
        "latencies": dict(zip(sizes, lat)),
    }


def measure_arithmetic_throughput(machine: MachineConfig,
                                  n_ops: int = 10000) -> dict[str, float]:
    """Cycles per arithmetic op, per kind — checks the CPU cost tables."""
    from ..operations.ops import add, div, mul
    from ..operations.optypes import ArithType

    out: dict[str, float] = {}
    for label, op in (("int_add", add(ArithType.INT)),
                      ("double_mul", mul(ArithType.DOUBLE)),
                      ("double_div", div(ArithType.DOUBLE))):
        node = SingleNodeModel(machine.node)
        result = node.run_trace([op] * n_ops)
        out[label] = result.cycles / n_ops
    return out


def calibrate(machine: MachineConfig) -> CalibrationReport:
    """Full calibration sweep; compare against the configured values."""
    report = CalibrationReport(machine.name)
    mem = measure_memory_latencies(machine)
    levels = machine.node.cache_levels
    if levels:
        l1 = levels[0].data
        report.add("l1_hit_cycles", l1.hit_cycles,
                   mem["l1_hit_cycles"], "cycles")
    link = measure_link_parameters(machine)
    report.add("link_bandwidth", machine.network.link_bandwidth,
               link["effective_bandwidth"], "B/cycle")
    arith = measure_arithmetic_throughput(machine)
    cpu = machine.node.cpu
    from ..operations.optypes import ArithType
    report.add("int_add_cycles", cpu.add_cycles[ArithType.INT],
               arith["int_add"], "cycles")
    report.add("double_mul_cycles", cpu.mul_cycles[ArithType.DOUBLE],
               arith["double_mul"], "cycles")
    return report
