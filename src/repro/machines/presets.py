"""Machine presets — parameter sets for the paper's reference targets.

Section 6 measures Mermaid simulating "a multicomputer consisting of
T805 transputers and a single-node model of a Motorola PowerPC 601 using
two levels of cache".  The presets below are those two machines, with
parameters drawn from published datasheet figures, plus a fast generic
machine for experiments.  Machine parameters are deliberately *data*
(see :mod:`repro.core.config`): copy a preset and tweak fields to
explore the design space.
"""

from __future__ import annotations

from ..core.config import (
    BusConfig,
    CPUConfig,
    CacheConfig,
    CacheLevelConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from ..operations.optypes import ArithType

__all__ = ["t805_grid", "powerpc601_node", "generic_multicomputer",
           "smp_node"]


def _t805_cpu() -> CPUConfig:
    """INMOS T805 transputer @ 30 MHz.

    The T805 is a stack-machine with an on-chip FPU; abstract-operation
    costs approximate its published instruction timings (integer ALU
    ~1-2 cycles, FP add ~7, FP mul ~13, FP div ~25+).
    """
    return CPUConfig(
        name="T805-30",
        clock_hz=30e6,
        add_cycles={ArithType.INT: 1.0, ArithType.FLOAT: 7.0,
                    ArithType.DOUBLE: 7.0},
        sub_cycles={ArithType.INT: 1.0, ArithType.FLOAT: 7.0,
                    ArithType.DOUBLE: 7.0},
        mul_cycles={ArithType.INT: 38.0, ArithType.FLOAT: 13.0,
                    ArithType.DOUBLE: 20.0},
        div_cycles={ArithType.INT: 40.0, ArithType.FLOAT: 25.0,
                    ArithType.DOUBLE: 32.0},
        loadc_cycles=1.0,
        branch_cycles=4.0,
        call_cycles=7.0,
        ret_cycles=5.0,
        load_issue_cycles=1.0,
        store_issue_cycles=1.0,
    )


def t805_grid(rows: int = 4, cols: int = 4) -> MachineConfig:
    """A T805 transputer grid (mesh), software store-and-forward routing.

    The T805 has 4 KiB on-chip SRAM (modelled as a small single-cycle
    "cache" level) and four 20 Mbit/s bidirectional links; message
    routing through intermediate transputers is store-and-forward in
    software, hence the high per-message overhead.
    """
    node = NodeConfig(
        cpu=_t805_cpu(),
        cache_levels=[CacheLevelConfig(data=CacheConfig(
            name="onchip-sram", size_bytes=4 * 1024, line_bytes=32,
            associativity=0, hit_cycles=1.0, write_policy="write-back",
            replacement="lru"))],
        bus=BusConfig(width_bytes=4, cycles_per_beat=1.0,
                      arbitration_cycles=1.0),
        memory=MemoryConfig(access_cycles=5.0, cycles_per_word=1.0,
                            word_bytes=4),
    )
    # 20 Mbit/s link at 30 MHz -> ~0.083 bytes/cycle.
    network = NetworkConfig(
        topology=TopologyConfig(kind="mesh", dims=(rows, cols)),
        routing="dimension_order",
        switching="store_and_forward",
        link_bandwidth=20e6 / 8 / 30e6,
        link_latency=2.0,
        packet_bytes=512,
        header_bytes=4,
        flit_bytes=1,
        routing_cycles=20.0,      # software through-routing
        send_overhead=150.0,      # library setup, ~5 us at 30 MHz
        recv_overhead=150.0,
        channel_buffers=2,
    )
    return MachineConfig(name=f"t805-grid-{rows}x{cols}", node=node,
                         network=network).validate()


def powerpc601_node() -> MachineConfig:
    """A Motorola PowerPC 601 node with two cache levels (Section 6).

    601 @ 66 MHz: 32 KiB unified 8-way L1 (64-byte lines), an external
    512 KiB direct-mapped L2, a 64-bit system bus and ~10 bus-cycle DRAM.
    Configured as a single node ("full" topology of size 1 is invalid, so
    a minimal 2-node ring carries the — unused — network).
    """
    cpu = CPUConfig(
        name="PPC601-66",
        clock_hz=66e6,
        add_cycles={ArithType.INT: 1.0, ArithType.FLOAT: 1.0,
                    ArithType.DOUBLE: 1.0},
        sub_cycles={ArithType.INT: 1.0, ArithType.FLOAT: 1.0,
                    ArithType.DOUBLE: 1.0},
        mul_cycles={ArithType.INT: 5.0, ArithType.FLOAT: 1.0,
                    ArithType.DOUBLE: 2.0},
        div_cycles={ArithType.INT: 36.0, ArithType.FLOAT: 17.0,
                    ArithType.DOUBLE: 31.0},
        loadc_cycles=1.0,
        branch_cycles=1.0,
        call_cycles=2.0,
        ret_cycles=2.0,
        load_issue_cycles=1.0,
        store_issue_cycles=1.0,
    )
    node = NodeConfig(
        cpu=cpu,
        cache_levels=[
            CacheLevelConfig(data=CacheConfig(
                name="L1", size_bytes=32 * 1024, line_bytes=64,
                associativity=8, hit_cycles=1.0,
                write_policy="write-back", replacement="lru")),
            CacheLevelConfig(data=CacheConfig(
                name="L2", size_bytes=512 * 1024, line_bytes=64,
                associativity=1, hit_cycles=8.0,
                write_policy="write-back", replacement="lru")),
        ],
        bus=BusConfig(width_bytes=8, cycles_per_beat=2.0,
                      arbitration_cycles=2.0),
        memory=MemoryConfig(access_cycles=20.0, cycles_per_word=4.0,
                            word_bytes=8),
    )
    network = NetworkConfig(topology=TopologyConfig(kind="ring", dims=(2,)))
    return MachineConfig(name="powerpc601-node", node=node,
                         network=network).validate()


def generic_multicomputer(kind: str = "mesh", dims: tuple[int, ...] = (4, 4),
                          switching: str = "wormhole",
                          n_cpus: int = 1) -> MachineConfig:
    """A fast generic multicomputer for design-space experiments.

    100 MHz nodes with split 16 KiB L1s and a 256 KiB L2, wormhole
    network at 4 bytes/cycle.  All arguments feed straight into the
    corresponding config fields.
    """
    node = NodeConfig(
        cpu=CPUConfig(name="generic-100", clock_hz=100e6),
        cache_levels=[
            CacheLevelConfig(
                data=CacheConfig(name="L1d", size_bytes=16 * 1024,
                                 line_bytes=32, associativity=4,
                                 hit_cycles=1.0),
                instr=CacheConfig(name="L1i", size_bytes=16 * 1024,
                                  line_bytes=32, associativity=2,
                                  hit_cycles=1.0)),
            CacheLevelConfig(data=CacheConfig(
                name="L2", size_bytes=256 * 1024, line_bytes=64,
                associativity=8, hit_cycles=6.0)),
        ],
        n_cpus=n_cpus,
    )
    network = NetworkConfig(
        topology=TopologyConfig(kind=kind, dims=dims),
        switching=switching,
    )
    return MachineConfig(
        name=f"generic-{kind}{'x'.join(map(str, dims))}-{switching}",
        node=node, network=network).validate()


def smp_node(n_cpus: int = 4, coherence: str = "mesi") -> MachineConfig:
    """A bus-based shared-memory multiprocessor node (Section 4.3)."""
    machine = generic_multicomputer(kind="ring", dims=(2,), n_cpus=n_cpus)
    machine.name = f"smp-{n_cpus}cpu-{coherence}"
    machine.node.coherence = coherence
    return machine.validate()
