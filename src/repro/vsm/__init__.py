"""``repro.vsm`` — virtual shared memory over the multicomputer.

The paper's stated future work (Section 5.1): "we will use a virtual
shared memory in the future to hide all explicit communication."  This
package implements it: a page-based, write-invalidate VSM (IVY-style
fixed distributed manager) whose page faults are global events of the
execution-driven simulation — shared reads/writes in the instrumented
program, message traffic in the simulated machine, no explicit
send/recv at the application level.
"""

from .model import VSMModel, VSMResult
from .protocol import VSMConfig, VSMProtocol, VSMStats
from .runtime import SharedRegion, VSMFault, VSMRuntimeError

__all__ = [
    "SharedRegion", "VSMConfig", "VSMFault", "VSMModel", "VSMProtocol",
    "VSMResult", "VSMRuntimeError", "VSMStats",
]
