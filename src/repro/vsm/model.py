"""The VSM simulation model: hybrid mode + page-fault handling.

Runs an instrumented application whose shared accesses go through
:class:`~repro.vsm.runtime.SharedRegion` on a multicomputer: the usual
hybrid pipeline (node models timing computational operations, the
communication model carrying messages) with page faults intercepted by
the driver and executed by :class:`~repro.vsm.protocol.VSMProtocol`.
Explicit message passing (``ctx.send``/``ctx.recv``/``ctx.barrier``)
still works alongside — real VSM systems mix both.
"""

from __future__ import annotations

from typing import Optional

from ..commmodel.network import CommResult, MultiNodeModel
from ..compmodel.node import SingleNodeModel
from ..compmodel.tasks import TaskExtractionStats, extract_tasks
from ..core.config import MachineConfig
from ..pearl import Simulator
from ..tracegen.threads import InterleavedStream
from .protocol import VSMConfig, VSMProtocol
from .runtime import VSMFault

__all__ = ["VSMModel", "VSMResult"]


class VSMResult:
    """Outcome of a VSM simulation."""

    def __init__(self, comm: CommResult, vsm_summary: dict,
                 node_summaries: list[dict],
                 task_stats: list[TaskExtractionStats]) -> None:
        self.comm = comm
        self.vsm = vsm_summary
        self.node_summaries = node_summaries
        self.task_stats = task_stats

    @property
    def total_cycles(self) -> float:
        return self.comm.total_cycles

    @property
    def seconds(self) -> float:
        return self.comm.seconds

    @property
    def faults(self) -> int:
        return self.vsm["faults"]

    def summary(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "vsm": self.vsm,
            "comm": self.comm.summary(),
            "tasks": [t.summary() for t in self.task_stats],
            "nodes": self.node_summaries,
        }

    def __repr__(self) -> str:
        return (f"<VSMResult cycles={self.total_cycles:.0f} "
                f"faults={self.faults}>")


class VSMModel:
    """Hybrid multicomputer simulation with a virtual-shared-memory layer."""

    def __init__(self, machine: MachineConfig,
                 vsm_config: Optional[VSMConfig] = None,
                 sim: Optional[Simulator] = None) -> None:
        machine.validate()
        if machine.node.n_cpus != 1:
            raise ValueError("VSMModel runs on single-CPU node templates")
        self.machine = machine
        self.network = MultiNodeModel(machine, sim)
        self.protocol = VSMProtocol(self.network, vsm_config)
        self.node_models = [SingleNodeModel(machine.node, node_id=i)
                            for i in range(self.network.n_nodes)]
        self.task_stats = [TaskExtractionStats()
                           for _ in range(self.network.n_nodes)]

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def n_nodes(self) -> int:
        return self.network.n_nodes

    # -- the VSM-aware driver ----------------------------------------------

    def _driver(self, node_id: int, stream: InterleavedStream):
        task_ops = extract_tasks(self.node_models[node_id], stream,
                                 self.task_stats[node_id])
        network = self.network
        protocol = self.protocol
        for op in task_ops:
            if isinstance(op, VSMFault):
                yield from protocol.handle_fault(op)
                stream.post_result(None)
            else:
                yield from network.handle_op(
                    node_id, op,
                    payload_source=lambda: stream.thread.pending_payload,
                    result_sink=stream.post_result)
        network.activity[node_id].finish_time = self.sim.now

    # -- top-level run -----------------------------------------------------------

    def run_application(self, app) -> VSMResult:
        """Run a ThreadedApplication whose programs use SharedRegion."""
        from ..apps.api import ThreadedApplication
        if callable(app) and not isinstance(app, ThreadedApplication):
            app = ThreadedApplication(app, self.n_nodes)
        if app.n_nodes != self.n_nodes:
            raise ValueError(
                f"application has {app.n_nodes} nodes, machine has "
                f"{self.n_nodes}")
        streams = app.streams()
        try:
            for i, stream in enumerate(streams):
                self.sim.process(self._driver(i, stream), name=f"node{i}")
            self.sim.run(check_deadlock=True)
        finally:
            for stream in streams:
                stream.close()
        return VSMResult(
            self.network.result(), self.protocol.stats.summary(),
            [m.summary() for m in self.node_models], self.task_stats)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VSMModel {self.machine.name!r} n={self.n_nodes}>"
