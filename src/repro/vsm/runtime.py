"""The application-side VSM runtime (the paper's future work, Sec 5.1).

"Ideally, such architectural details are not visible at the application
level.  For this reason, we will use a virtual shared memory in the
future to hide all explicit communication."

A :class:`SharedRegion` gives an instrumented program a flat shared
address space: ``region.read(i)`` / ``region.write(i)`` behave like the
ordinary ``ctx.read/write`` annotations (a load/store against the
node's memory hierarchy) as long as the page holding element ``i`` is
locally valid in the required mode; otherwise the access is a **page
fault** — a global event that suspends the node thread while the VSM
protocol (see :mod:`repro.vsm.protocol`) moves the page across the
network in simulated time.  No explicit send/recv appears in the
program.

The runtime keeps a per-node *view* of page access rights ("R"/"W"),
mirroring the model-side directory; the model updates the view when
remote writes invalidate local copies (strict thread handoff makes this
race-free).
"""

from __future__ import annotations

from ..operations.ops import OpCode, Operation
from ..operations.optypes import MemType

__all__ = ["SharedRegion", "VSMFault", "VSMRuntimeError"]

#: Base virtual address of the first shared region; regions are laid
#: out consecutively with a guard gap.
_REGION_BASE = 0x4000_0000
_REGION_ALIGN = 1 << 24


class VSMRuntimeError(RuntimeError):
    """Misuse of the VSM runtime (bad offsets, missing model, ...)."""


class VSMFault:
    """A page-fault global event (suspends the node thread).

    Not a Table-1 operation: faults exist above the operation level —
    the protocol the model runs *for* the fault is what generates
    operations-worth of traffic.
    """

    __slots__ = ("region_name", "node", "page", "is_write", "view",
                 "page_bytes", "base_address")

    #: marker consumed by NodeThread.global_event.
    is_global_event = True
    #: no Table-1 opcode; model-level event.
    code = None

    def __init__(self, region_name: str, node: int, page: int,
                 is_write: bool, view: dict, page_bytes: int,
                 base_address: int) -> None:
        self.region_name = region_name
        self.node = node
        self.page = page
        self.is_write = is_write
        self.view = view
        self.page_bytes = page_bytes
        self.base_address = base_address

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return (f"vsm_fault({self.region_name!r}, page={self.page}, "
                f"{kind}, node={self.node})")


class SharedRegion:
    """One shared array distributed over the machine's pages.

    Parameters
    ----------
    ctx:
        The owning :class:`~repro.apps.api.NodeContext`.
    name:
        Region identifier; all nodes must create the region with the
        same name and geometry (SPMD style).
    n_elements / mem_type:
        Array geometry; addresses are derived for the cache models.
    page_bytes:
        VSM page size (power of two).
    """

    _region_cursor: dict[str, int] = {}

    def __init__(self, ctx, name: str, n_elements: int,
                 mem_type: MemType = MemType.FLOAT64,
                 page_bytes: int = 4096) -> None:
        if n_elements < 1:
            raise VSMRuntimeError(f"{name!r}: n_elements must be >= 1")
        if page_bytes & (page_bytes - 1) or page_bytes <= 0:
            raise VSMRuntimeError(f"{name!r}: page_bytes must be a power "
                                  "of two")
        self._ctx = ctx
        self._thread = ctx._thread
        self.name = name
        self.node = ctx.node_id
        self.n_elements = n_elements
        self.mem_type = mem_type
        self.page_bytes = page_bytes
        # Same name -> same base on every node (deterministic layout).
        slot = SharedRegion._region_slot(name)
        self.base_address = _REGION_BASE + slot * _REGION_ALIGN
        if n_elements * mem_type.nbytes > _REGION_ALIGN:
            raise VSMRuntimeError(f"{name!r}: region too large")
        #: local access rights per page: page -> "R" | "W".
        self.view: dict[int, str] = {}
        self.faults = 0

    @classmethod
    def _region_slot(cls, name: str) -> int:
        slot = cls._region_cursor.get(name)
        if slot is None:
            slot = len(cls._region_cursor)
            cls._region_cursor[name] = slot
        return slot

    # -- address helpers ---------------------------------------------------

    @property
    def n_pages(self) -> int:
        size = self.n_elements * self.mem_type.nbytes
        return -(-size // self.page_bytes)

    def element_address(self, index: int) -> int:
        if not 0 <= index < self.n_elements:
            raise VSMRuntimeError(
                f"{self.name!r}: index {index} out of bounds "
                f"[0, {self.n_elements})")
        return self.base_address + index * self.mem_type.nbytes

    def page_of(self, index: int) -> int:
        return (self.element_address(index) - self.base_address) \
            // self.page_bytes

    # -- the shared-access API ------------------------------------------------

    def read(self, index: int) -> None:
        """Annotate a shared read; faults if the page is not local."""
        addr = self.element_address(index)
        page = self.page_of(index)
        if page not in self.view:
            self._fault(page, is_write=False)
        self._emit_access(addr, is_write=False)

    def write(self, index: int) -> None:
        """Annotate a shared write; faults unless locally writable."""
        addr = self.element_address(index)
        page = self.page_of(index)
        if self.view.get(page) != "W":
            self._fault(page, is_write=True)
        self._emit_access(addr, is_write=True)

    def _fault(self, page: int, is_write: bool) -> None:
        self.faults += 1
        fault = VSMFault(self.name, self.node, page, is_write, self.view,
                         self.page_bytes, self.base_address)
        self._thread.global_event(fault)
        # The model granted the right before resuming us.
        required = "W" if is_write else "R"
        got = self.view.get(page)
        if got != required and not (required == "R" and got == "W"):
            raise VSMRuntimeError(
                f"{self.name!r}: fault completed but page {page} is "
                f"{got!r}, needed {required!r}")

    def _emit_access(self, addr: int, is_write: bool) -> None:
        emit = self._thread.emit
        translator = self._ctx.translator
        emit(Operation(OpCode.IFETCH, 0,
                       translator._site_address(("vsm", self.name,
                                                 is_write))))
        code = OpCode.STORE if is_write else OpCode.LOAD
        emit(Operation(code, int(self.mem_type), addr))
        translator.ops_emitted += 2

    def __repr__(self) -> str:
        return (f"<SharedRegion {self.name!r} node={self.node} "
                f"pages={self.n_pages} held={len(self.view)}>")
