"""The VSM coherence protocol (model side).

A fixed-distributed-manager, write-invalidate page protocol in the
style of Li & Hudak's IVY — the canonical design a 1990s VSM for a
multicomputer would use:

* every page has a *home* node (its manager), assigned round-robin;
* a **read fault** asks the home, which forwards to the current owner;
  the owner sends the page and is demoted to reader;
* a **write fault** asks the home, which invalidates every cached copy
  (in parallel) and transfers ownership (plus the page, if the writer
  holds no copy).

All protocol messages travel through the regular switching engine, so
VSM traffic contends with everything else in simulated time; the remote
handlers are modelled as always-responsive (interrupt-driven) with a
fixed per-message handler latency — a documented simplification that
avoids requiring the remote application thread's cooperation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..commmodel.message import Message
from ..commmodel.network import MultiNodeModel
from ..pearl import Event, TallyMonitor
from .runtime import VSMFault

__all__ = ["VSMConfig", "VSMProtocol", "VSMStats"]


@dataclass
class VSMConfig:
    """Timing/size parameters of the VSM layer."""

    request_bytes: int = 16          # fault request / forward messages
    control_bytes: int = 16          # invalidation + acknowledgement
    fault_overhead_cycles: float = 400.0   # local trap + handler entry
    handler_cycles: float = 200.0    # remote handler per protocol message

    def validate(self) -> None:
        if self.request_bytes < 1 or self.control_bytes < 1:
            raise ValueError("VSM message sizes must be >= 1 byte")
        if self.fault_overhead_cycles < 0 or self.handler_cycles < 0:
            raise ValueError("VSM overheads must be >= 0")


class VSMStats:
    """Protocol event counters plus fault-latency distribution."""

    def __init__(self) -> None:
        self.read_faults = 0
        self.write_faults = 0
        self.pages_transferred = 0
        self.page_bytes_moved = 0
        self.invalidations = 0
        self.control_messages = 0
        self.fault_latency = TallyMonitor("vsm_fault_latency")

    def summary(self) -> dict:
        return {
            "read_faults": self.read_faults,
            "write_faults": self.write_faults,
            "faults": self.read_faults + self.write_faults,
            "pages_transferred": self.pages_transferred,
            "page_bytes_moved": self.page_bytes_moved,
            "invalidations": self.invalidations,
            "control_messages": self.control_messages,
            "fault_latency": self.fault_latency.summary(),
        }


class _PageEntry:
    """Manager-side state of one page."""

    __slots__ = ("owner", "copyset")

    def __init__(self, home: int) -> None:
        self.owner = home           # data initially lives at the home
        self.copyset: set[int] = set()


class VSMProtocol:
    """Central page directory + fault transactions over the network."""

    def __init__(self, network: MultiNodeModel,
                 cfg: Optional[VSMConfig] = None) -> None:
        self.network = network
        self.cfg = cfg if cfg is not None else VSMConfig()
        self.cfg.validate()
        self.stats = VSMStats()
        # (region, page) -> _PageEntry
        self._pages: dict[tuple[str, int], _PageEntry] = {}
        # region -> {node -> app-side view dict}
        self._views: dict[str, dict[int, dict]] = {}

    # -- helpers -----------------------------------------------------------

    def home_of(self, region: str, page: int) -> int:
        """Round-robin page manager assignment."""
        return page % self.network.n_nodes

    def _entry(self, region: str, page: int) -> _PageEntry:
        key = (region, page)
        entry = self._pages.get(key)
        if entry is None:
            entry = _PageEntry(self.home_of(region, page))
            self._pages[key] = entry
        return entry

    def owner_of(self, region: str, page: int) -> int:
        return self._entry(region, page).owner

    def copyset_of(self, region: str, page: int) -> set[int]:
        return set(self._entry(region, page).copyset)

    def _register_view(self, fault: VSMFault) -> None:
        self._views.setdefault(fault.region_name, {})[fault.node] = \
            fault.view

    def _drop_right(self, region: str, node: int, page: int) -> None:
        view = self._views.get(region, {}).get(node)
        if view is not None:
            view.pop(page, None)

    def _set_right(self, region: str, node: int, page: int,
                   right: str) -> None:
        view = self._views.get(region, {}).get(node)
        if view is not None:
            view[page] = right

    # -- message plumbing -----------------------------------------------------

    def _send(self, src: int, dst: int, nbytes: int):
        """Generator: move one protocol message, waiting for delivery."""
        if src == dst:
            return
        sim = self.network.sim
        msg = Message(src, dst, nbytes, synchronous=False)
        done = Event(sim, f"vsm-msg{msg.id}")
        msg.on_deliver = done.trigger
        self.network.engine.inject(msg)
        yield done
        if self.cfg.handler_cycles:
            yield self.cfg.handler_cycles

    def _send_page(self, src: int, dst: int, page_bytes: int):
        if src == dst:
            return
        self.stats.pages_transferred += 1
        self.stats.page_bytes_moved += page_bytes
        yield from self._send(src, dst, page_bytes)

    def _send_control(self, src: int, dst: int):
        if src == dst:
            return
        self.stats.control_messages += 1
        yield from self._send(src, dst, self.cfg.control_bytes)

    # -- fault transactions ------------------------------------------------------

    def handle_fault(self, fault: VSMFault):
        """Generator run inside the faulting node's driver process."""
        sim = self.network.sim
        t0 = sim.now
        self._register_view(fault)
        if self.cfg.fault_overhead_cycles:
            yield self.cfg.fault_overhead_cycles
        if fault.is_write:
            self.stats.write_faults += 1
            yield from self._write_fault(fault)
        else:
            self.stats.read_faults += 1
            yield from self._read_fault(fault)
        self.stats.fault_latency.record(sim.now - t0)

    def _read_fault(self, fault: VSMFault):
        region, page, node = fault.region_name, fault.page, fault.node
        entry = self._entry(region, page)
        home = self.home_of(region, page)
        # 1. ask the manager.
        yield from self._request(node, home)
        # 2. manager forwards to the owner; owner ships the page and is
        #    demoted to reader (it keeps a read-only copy).
        owner = entry.owner
        if owner != home:
            yield from self._request(home, owner)
        yield from self._send_page(owner, node, fault.page_bytes)
        if owner != node:
            self._set_right(region, owner, page, "R")
            entry.copyset.add(owner)
        entry.copyset.add(node)
        fault.view[page] = "R"

    def _write_fault(self, fault: VSMFault):
        region, page, node = fault.region_name, fault.page, fault.node
        entry = self._entry(region, page)
        home = self.home_of(region, page)
        sim = self.network.sim
        # 1. ask the manager.
        yield from self._request(node, home)
        # 2. invalidate every other copy, in parallel (inv + ack pairs).
        victims = (entry.copyset | {entry.owner}) - {node}
        if victims:
            procs = []
            for victim in sorted(victims):
                self.stats.invalidations += 1
                self._drop_right(region, victim, page)
                procs.append(sim.process(
                    self._invalidate_one(home, victim),
                    name=f"vsm-inv-{region}-{page}-{victim}"))
            yield sim.all_of([p.terminated for p in procs])
        # 3. page transfer to the writer, unless it already holds a copy.
        had_copy = node in entry.copyset or entry.owner == node
        if not had_copy:
            yield from self._send_page(entry.owner, node, fault.page_bytes)
        # 4. ownership moves; the writer is the only holder.
        entry.owner = node
        entry.copyset = {node}
        fault.view[page] = "W"

    def _request(self, src: int, dst: int):
        if src == dst:
            return
        self.stats.control_messages += 1
        yield from self._send(src, dst, self.cfg.request_bytes)

    def _invalidate_one(self, home: int, victim: int):
        """Invalidation to ``victim`` plus its acknowledgement to home."""
        yield from self._send_control(home, victim)
        yield from self._send_control(victim, home)
