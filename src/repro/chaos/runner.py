"""Campaign execution — the fault-plan family as a sharded sweep.

:func:`run_campaign` expands a :class:`~repro.chaos.spec.CampaignSpec`
against the machine's topology, runs every rung through the existing
parallel-sweep machinery (:class:`~repro.parallel.ParallelSweepRunner`
for cache lookup and error capture, one single-point sweep per rung),
and packs the rungs onto worker processes with
:func:`~repro.parallel.run_sharded` — the same worker-packing scheme
``repro verify`` uses for schedule shards.  Plan digests already key
the result cache, so a re-run of an unchanged campaign is pure cache
hits, and the severity-0 / baseline rungs (plan ``None``) share their
key with ordinary fault-free sweep rows.

The rows are folded by :mod:`repro.chaos.slo` into SLO verdicts plus
the ladder-wide monotonicity invariant check, and returned as a
:class:`ChaosResult` with deterministic text and JSON reports (wall
times and cache statistics are kept out of the JSON payload so two
runs of the same campaign are byte-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..analysis import format_table
from ..core.config import ConfigError, MachineConfig
from ..observe import MetricRegistry, Tracer
from ..parallel import (
    FaultedRunner,
    ParallelSweepRunner,
    ResultCache,
    default_workload_id,
    run_sharded,
)
from ..topology import build_topology
from .slo import SLOVerdict, check_ladder_monotonicity, evaluate_slos
from .spec import Rung, as_campaign_spec

__all__ = ["AppCampaignRunner", "ChaosResult", "campaign_row",
           "run_campaign"]

#: report column order — explicit so captured-error rows (which lack
#: the simulation metrics) render against the same header.
_REPORT_COLUMNS = ("rung", "generator", "total_cycles", "mean_latency",
                   "delivered", "dropped", "retransmissions",
                   "delivery_failed")


def campaign_row(result) -> dict:
    """Uniform campaign metrics from a :class:`CommResult`.

    Every rung reports the same columns; fault counters are zero for
    fault-free rungs (baseline, severity 0) rather than absent, so SLO
    reductions and the monotonicity checker never see a ragged schema.
    ``delivered`` counts *logical* messages: the transport's delivery
    count under faults, the engine's otherwise (they coincide when no
    copy is ever retransmitted).
    """
    row = {
        "total_cycles": result.total_cycles,
        "mean_latency": result.message_latency.mean,
        "events": result.events_executed,
        "delivered": result.messages_delivered,
        "dropped": 0,
        "corrupted": 0,
        "retransmissions": 0,
        "delivery_failed": 0,
    }
    summary = result.fault_summary
    if summary is not None:
        transport = summary.get("transport", {})
        row["delivered"] = transport.get("delivered",
                                         result.messages_delivered)
        row["dropped"] = summary.get("dropped", 0)
        row["corrupted"] = summary.get("corrupted", 0)
        row["retransmissions"] = result.retransmissions
        row["delivery_failed"] = result.delivery_failures
    return row


class AppCampaignRunner:
    """Picklable rung runner over a bundled task-level app.

    Calls ``MultiNodeModel(machine, faults=plan).run(app traces)`` and
    reduces the result with :func:`campaign_row` — the ``repro chaos``
    CLI's runner, usable directly from tests and notebooks.  The
    deterministic ``repr`` doubles as the cache workload id.
    """

    def __init__(self, app: str, *, size: int = 1024,
                 repeats: int = 4) -> None:
        from ..apps import (alltoall_task_traces, pingpong_task_traces,
                            pipeline_task_traces)
        apps = {"pingpong": pingpong_task_traces,
                "alltoall": alltoall_task_traces,
                "pipeline": pipeline_task_traces}
        if app not in apps:
            raise ConfigError(f"unknown app {app!r}; choose from: "
                              + ", ".join(sorted(apps)))
        self.app = app
        self.size = size
        self.repeats = repeats

    def _traces(self, n_nodes: int) -> list:
        from ..apps import (alltoall_task_traces, pingpong_task_traces,
                            pipeline_task_traces)
        if self.app == "pingpong":
            return pingpong_task_traces(n_nodes, size=self.size,
                                        repeats=self.repeats)
        if self.app == "alltoall":
            return alltoall_task_traces(n_nodes, block_bytes=self.size,
                                        rounds=self.repeats)
        return pipeline_task_traces(n_nodes, items=self.repeats,
                                    item_bytes=self.size)

    def __call__(self, machine: MachineConfig, faults=None) -> dict:
        from ..commmodel import MultiNodeModel
        model = MultiNodeModel(machine, faults=faults)
        result = model.run(list(self._traces(model.n_nodes)))
        return campaign_row(result)

    def __repr__(self) -> str:
        return (f"AppCampaignRunner({self.app!r}, size={self.size}, "
                f"repeats={self.repeats})")


class _RungTask:
    """One picklable unit of campaign work: one rung on one machine.

    Runs as a single-point :class:`ParallelSweepRunner` sweep so cache
    lookup (plan digest in the key), error capture (structured
    ``partial_row`` payloads) and timing behave exactly like ordinary
    sweeps.  Each task opens its own :class:`ResultCache` handle on the
    shared directory — cache statistics come back with the row and are
    aggregated by :func:`run_campaign`.
    """

    def __init__(self, rung: Rung, machine: MachineConfig,
                 runner: Callable, workload_id: str,
                 cache_root: Optional[str], timing: bool) -> None:
        self.rung = rung
        self.machine = machine
        self.runner = runner
        self.workload_id = workload_id
        self.cache_root = cache_root
        self.timing = timing

    def __call__(self) -> tuple[dict, dict]:
        cache = (ResultCache(self.cache_root)
                 if self.cache_root is not None else None)
        sweep = ParallelSweepRunner(workers=1, cache=cache)
        plan = self.rung.plan
        runner = (FaultedRunner(self.runner, plan)
                  if plan is not None else self.runner)
        coords = {"rung": self.rung.label, **self.rung.coords}
        rows = sweep.run(runner, [(coords, self.machine)],
                         workload_id=self.workload_id,
                         on_error="capture", timing=self.timing,
                         faults=plan)
        stats = (dict(hits=cache.stats.hits, misses=cache.stats.misses,
                      stores=cache.stats.stores)
                 if cache is not None else dict(hits=0, misses=0, stores=0))
        return rows[0], stats


def _run_rung(task: _RungTask) -> tuple[dict, dict]:
    """Module-level trampoline so rung tasks pickle to pool workers."""
    return task()


@dataclass
class ChaosResult:
    """Everything a chaos campaign produced: rows, verdicts, invariants.

    ``to_dict()``/``to_json()`` are deterministic — wall times and
    cache statistics are excluded so two runs of the same campaign
    serialize byte-identically (the CI smoke job diffs them).
    """

    campaign: str
    rows: list[dict]
    verdicts: list[SLOVerdict]
    violations: list[dict]
    cache_stats: Optional[dict] = field(default=None)

    @property
    def ok(self) -> bool:
        """Campaign verdict: every SLO passed and the ladder
        monotonicity invariant held."""
        return (all(v.passed for v in self.verdicts)
                and not self.violations)

    # -- reports ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "ok": self.ok,
            "rungs": len(self.rows),
            "rows": [{k: v for k, v in row.items() if k != "wall_time_s"}
                     for row in self.rows],
            "verdicts": [v.to_dict() for v in self.verdicts],
            "violations": [dict(v) for v in self.violations],
        }

    def to_json(self, indent: int = 2) -> str:
        import json
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format(self) -> str:
        columns = list(_REPORT_COLUMNS)
        if any("error" in row for row in self.rows):
            columns.append("error")
        if any("wall_time_s" in row for row in self.rows):
            columns.append("wall_time_s")
        lines = [format_table(
            self.rows, columns=columns,
            title=f"chaos campaign {self.campaign!r} "
                  f"({len(self.rows)} rungs):")]
        for v in self.verdicts:
            lines.append(f"  [{'PASS' if v.passed else 'FAIL'}] "
                         f"{v.kind}: {v.detail}")
        if self.violations:
            lines.append(f"  [FAIL] ladder monotonicity: "
                         f"{len(self.violations)} violation(s)")
            for violation in self.violations:
                lines.append(f"    - {violation['detail']}")
        elif any(r.get("generator") == "severity_ladder"
                 for r in self.rows):
            lines.append("  [PASS] ladder monotonicity: dropped/"
                         "retransmissions non-decreasing in severity")
        lines.append(f"campaign verdict: {'PASS' if self.ok else 'FAIL'} "
                     f"({sum(v.passed for v in self.verdicts)}/"
                     f"{len(self.verdicts)} SLOs, "
                     f"{len(self.violations)} invariant violations)")
        return "\n".join(lines)

    # -- observe integration -------------------------------------------------

    def emit_trace(self, tracer: Tracer) -> None:
        """Chrome-trace the campaign onto ``tracer``: one instant per
        rung (rung index as the timestamp — deterministic), counter
        tracks for the headline fault metrics, and an explicit fault
        record per SLO failure / invariant violation."""
        for i, row in enumerate(self.rows):
            ts = float(i)
            args = {c: row.get(c) for c in _REPORT_COLUMNS}
            if "error" in row:
                args["error"] = row["error"]
            tracer.instant("chaos", f"rung:{row.get('rung', i)}", ts,
                           "campaign", args)
            for counter in ("dropped", "retransmissions",
                            "delivery_failed"):
                tracer.counter(ts, f"chaos.{counter}",
                               row.get(counter, 0), cat="chaos")
        base = float(len(self.rows))
        for i, v in enumerate(self.verdicts):
            if not v.passed:
                tracer.fault(base + i, "slo_failed", "campaign",
                             {"kind": v.kind, "detail": v.detail})
        for i, violation in enumerate(self.violations):
            tracer.fault(base + len(self.verdicts) + i,
                         "monotonicity_violation", "campaign",
                         dict(violation))

    def register_metrics(self, registry: MetricRegistry) -> None:
        """Expose the campaign reduction as a ``chaos.campaign`` metric
        source (snapshot-able next to the model's own registries)."""
        def _summary() -> dict:
            return {
                "rungs": len(self.rows),
                "errors": sum(1 for r in self.rows if "error" in r),
                "slos_passed": sum(v.passed for v in self.verdicts),
                "slos_failed": sum(not v.passed for v in self.verdicts),
                "violations": len(self.violations),
                "dropped": sum(r.get("dropped", 0) for r in self.rows),
                "retransmissions": sum(r.get("retransmissions", 0)
                                       for r in self.rows),
                "delivery_failed": sum(r.get("delivery_failed", 0)
                                       for r in self.rows),
                "ok": int(self.ok),
            }
        registry.register("chaos.campaign", _summary)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ChaosResult {self.campaign!r} rungs={len(self.rows)} "
                f"ok={self.ok}>")


def run_campaign(campaign: Any, machine: MachineConfig, runner: Callable,
                 *, workload_id: Optional[str] = None, workers: int = 1,
                 cache: Optional[ResultCache | str] = None,
                 progress: Optional[Callable[[int, int, dict], None]] = None,
                 timing: bool = False, tracer: Optional[Tracer] = None,
                 registry: Optional[MetricRegistry] = None) -> ChaosResult:
    """Run one chaos campaign end to end.

    ``campaign`` is anything :func:`~repro.chaos.spec.as_campaign_spec`
    accepts (spec object, dict, or JSON path); ``runner`` must be
    picklable and accept ``runner(machine, faults=plan)`` (e.g. an
    :class:`AppCampaignRunner`).  ``cache`` is a
    :class:`~repro.parallel.ResultCache` or a cache directory path;
    rung workers share the directory, and the aggregated hit/miss/store
    counts come back as ``result.cache_stats``.  ``progress(done,
    total, row)`` fires once per finished rung, in rung order.
    """
    spec = as_campaign_spec(campaign)
    topo = build_topology(machine.network.topology)
    rungs = spec.rungs(topo)
    wid = workload_id or default_workload_id(runner)
    cache_root: Optional[str] = None
    if cache is not None:
        cache_root = str(cache.root if isinstance(cache, ResultCache)
                         else cache)
    tasks = [_RungTask(rung, machine, runner, wid, cache_root, timing)
             for rung in rungs]

    rung_progress = None
    if progress is not None:
        def rung_progress(done: int, total: int,
                          outcome: tuple[dict, dict]) -> None:
            progress(done, total, outcome[0])

    outcomes = run_sharded(_run_rung, tasks, workers,
                           progress=rung_progress)
    rows = [row for row, _stats in outcomes]
    stats = None
    if cache_root is not None:
        stats = {key: sum(s[key] for _row, s in outcomes)
                 for key in ("hits", "misses", "stores")}

    result = ChaosResult(
        campaign=spec.name or "campaign",
        rows=rows,
        verdicts=evaluate_slos(spec.slos, rows),
        violations=check_ladder_monotonicity(rows),
        cache_stats=stats,
    )
    if tracer is not None:
        result.emit_trace(tracer)
    if registry is not None:
        result.register_metrics(registry)
    return result
