"""``repro.chaos`` — fault-sweep orchestration with SLO verdicts.

The campaign layer over :mod:`repro.faults`: a declarative
:class:`CampaignSpec` expands into a family of fault plans (severity
ladders, exhaustive single-link-down packs, correlated link groups,
rolling outage windows), :func:`run_campaign` executes the family as a
sharded sweep over the existing parallel-sweep/result-cache machinery,
and the SLO layer folds the rows into pass/fail verdicts plus a
ladder-wide drop-monotonicity invariant check.

Entry points: ``Workbench.chaos(campaign, runner)`` and
``repro chaos <app> --campaign spec.json``.
"""

from .runner import AppCampaignRunner, ChaosResult, campaign_row, run_campaign
from .slo import SLOVerdict, check_ladder_monotonicity, evaluate_slos
from .spec import (
    GENERATOR_KINDS,
    SLO_KINDS,
    CampaignSpec,
    Rung,
    as_campaign_spec,
)

__all__ = [
    "AppCampaignRunner", "CampaignSpec", "ChaosResult", "GENERATOR_KINDS",
    "Rung", "SLOVerdict", "SLO_KINDS", "as_campaign_spec", "campaign_row",
    "check_ladder_monotonicity", "evaluate_slos", "run_campaign",
]
