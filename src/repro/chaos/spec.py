"""Declarative chaos-campaign specs — fault-plan *families* as data.

A :class:`CampaignSpec` is the JSON-serializable description of one
chaos campaign: a shared *base* fault plan (seed + transport budget +
optional baseline probabilities), a list of *generators* that expand
into a family of named :class:`~repro.faults.FaultPlan` rungs against a
concrete topology, and a list of *SLO* declarations the reduction layer
(:mod:`repro.chaos.slo`) folds the resulting rows into.

Generators (the scenario families from the ROADMAP item):

``severity_ladder``
    ``base.scaled(f)`` for each factor — the drop/corrupt severity
    axis.  Factor 0 is the fault-free baseline rung (bit-identical to a
    fault-free run, shared cache key).
``single_link_down``
    One rung per topology link, taking that link (both directions by
    default) down for a window — the exhaustive "survives any single
    link down" pack.
``correlated_links``
    One rung per declared link *group*, all links in a group failing
    together with the given probabilities (shared-conduit cuts,
    switch-neighborhood failures).
``rolling_outage``
    A whole-network outage window rolled forward in time, one rung per
    step — "does it matter *when* the blip happens".

Every campaign implicitly starts with a ``baseline`` rung (no plan at
all) so the SLO layer always has a fault-free reference row.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..core.config import ConfigError
from ..faults import DownWindow, FaultPlan, LinkFault, as_fault_plan
from ..topology import Topology

__all__ = ["CampaignSpec", "Rung", "as_campaign_spec",
           "GENERATOR_KINDS", "SLO_KINDS"]

GENERATOR_KINDS = ("severity_ladder", "single_link_down",
                   "correlated_links", "rolling_outage")
SLO_KINDS = ("availability", "retransmission_budget", "latency_inflation",
             "single_link_survival")


@dataclass
class Rung:
    """One campaign scenario: a label, a normalized plan, coordinates.

    ``plan`` is ``None`` for effect-free rungs (the baseline, a
    severity-0 ladder rung): those take the seed fault-free code path
    and share the fault-free cache key.  ``coords`` are the row
    coordinates the runner merges into the metric row (generator kind,
    severity factor, link name, ...).
    """

    label: str
    plan: Optional[FaultPlan]
    coords: dict = field(default_factory=dict)


def _require(spec: dict, kind: str, key: str) -> Any:
    if key not in spec:
        raise ConfigError(f"{kind} generator requires {key!r}")
    return spec[key]


@dataclass
class CampaignSpec:
    """A complete, serializable chaos-campaign description."""

    name: str = ""
    base: Optional[FaultPlan] = None
    generators: list[dict] = field(default_factory=list)
    slos: list[dict] = field(default_factory=list)

    # -- validation ---------------------------------------------------------

    def validate(self) -> "CampaignSpec":
        """Raise :class:`~repro.core.config.ConfigError` on a bad spec."""
        if not self.generators:
            raise ConfigError("campaign spec has no generators")
        if self.base is not None:
            self.base.validate()
        for gen in self.generators:
            kind = gen.get("kind")
            if kind not in GENERATOR_KINDS:
                raise ConfigError(
                    f"unknown generator kind {kind!r}; choose from: "
                    + ", ".join(GENERATOR_KINDS))
            self._validate_generator(gen)
        kinds = [g["kind"] for g in self.generators]
        for slo in self.slos:
            kind = slo.get("kind")
            if kind not in SLO_KINDS:
                raise ConfigError(
                    f"unknown SLO kind {kind!r}; choose from: "
                    + ", ".join(SLO_KINDS))
            if (kind == "single_link_survival"
                    and "single_link_down" not in kinds):
                raise ConfigError(
                    "single_link_survival SLO requires a "
                    "single_link_down generator")
        return self

    def _validate_generator(self, gen: dict) -> None:
        kind = gen["kind"]
        if kind == "severity_ladder":
            factors = _require(gen, kind, "factors")
            if not factors:
                raise ConfigError("severity_ladder has no factors")
            for f in factors:
                if not isinstance(f, (int, float)) or f < 0:
                    raise ConfigError(
                        f"severity factor {f!r} must be a number >= 0")
            if self.base is None or not self.base.link_faults:
                raise ConfigError(
                    "severity_ladder needs a base plan with link_faults "
                    "to scale")
        elif kind == "single_link_down":
            end = _require(gen, kind, "end")
            start = gen.get("start", 0.0)
            if start < 0 or end <= start:
                raise ConfigError(
                    f"single_link_down window [{start}, {end}) is not a "
                    f"valid non-empty interval")
        elif kind == "correlated_links":
            groups = _require(gen, kind, "groups")
            if not groups:
                raise ConfigError("correlated_links has no groups")
            for group in groups:
                if not group:
                    raise ConfigError("correlated_links group is empty")
                for link in group:
                    if (not isinstance(link, (list, tuple))
                            or len(link) != 2):
                        raise ConfigError(
                            f"correlated link {link!r} must be a "
                            f"[src, dst] pair")
            p = gen.get("drop_prob", 0.0)
            c = gen.get("corrupt_prob", 0.0)
            if not (0.0 <= p <= 1.0 and 0.0 <= c <= 1.0 and p + c <= 1.0):
                raise ConfigError(
                    f"correlated_links probabilities ({p}, {c}) must be "
                    f"in [0, 1] with sum <= 1")
            if p == 0.0 and c == 0.0:
                raise ConfigError(
                    "correlated_links needs drop_prob or corrupt_prob")
        elif kind == "rolling_outage":
            window = _require(gen, kind, "window")
            count = _require(gen, kind, "count")
            step = gen.get("step", window)
            if window <= 0 or step <= 0 or count < 1:
                raise ConfigError(
                    f"rolling_outage needs window > 0, step > 0, "
                    f"count >= 1 (got {window}, {step}, {count})")

    # -- plan-family expansion ---------------------------------------------

    def _carrier(self) -> FaultPlan:
        """A fresh plan inheriting the base's seed and transport budget
        but none of its fault content — the chassis every non-ladder
        generator mounts its own faults on."""
        plan = FaultPlan()
        if self.base is not None:
            plan.seed = self.base.seed
            plan.transport = copy.deepcopy(self.base.transport)
        return plan

    def rungs(self, topo: Topology) -> list[Rung]:
        """Expand the generator list against ``topo`` into the ordered
        campaign rung family, ``baseline`` first.

        Every plan is validated and normalized through
        :func:`~repro.faults.as_fault_plan`, so effect-free rungs carry
        ``plan=None`` and run on the seed fault-free path.
        """
        self.validate()
        out = [Rung("baseline", None, {"generator": "baseline"})]
        seen = {"baseline"}
        for gi, gen in enumerate(self.generators):
            for rung in self._expand(gi, gen, topo):
                if rung.label in seen:
                    raise ConfigError(
                        f"duplicate campaign rung label {rung.label!r}")
                seen.add(rung.label)
                rung.plan = as_fault_plan(rung.plan)
                out.append(rung)
        return out

    def _expand(self, gi: int, gen: dict, topo: Topology) -> list[Rung]:
        kind = gen["kind"]
        if kind == "severity_ladder":
            assert self.base is not None
            ladder = gen.get("name", f"ladder{gi}")
            return [
                Rung(f"{ladder}x{f:g}",
                     self.base.scaled(f, name=f"{ladder}x{f:g}"),
                     {"generator": kind, "ladder": ladder, "severity": f})
                for f in gen["factors"]]
        if kind == "single_link_down":
            start = gen.get("start", 0.0)
            end = gen["end"]
            both = gen.get("bidirectional", True)
            links = sorted(topo.links())
            if both:
                links = [(u, v) for u, v in links if u < v]
            rungs = []
            for u, v in links:
                plan = self._carrier()
                plan.link_down = [DownWindow(start, end, src=u, dst=v)]
                if both:
                    plan.link_down.append(DownWindow(start, end,
                                                     src=v, dst=u))
                arrow = "-" if both else ">"
                label = f"link{u}{arrow}{v}-down"
                plan.name = label
                rungs.append(Rung(label, plan,
                                  {"generator": kind,
                                   "link": f"{u}{arrow}{v}"}))
            return rungs
        if kind == "correlated_links":
            p = gen.get("drop_prob", 0.0)
            c = gen.get("corrupt_prob", 0.0)
            rungs = []
            for group_i, group in enumerate(gen["groups"]):
                plan = self._carrier()
                plan.link_faults = [
                    LinkFault(drop_prob=p, corrupt_prob=c,
                              src=int(u), dst=int(v))
                    for u, v in group]
                label = gen.get("name", f"corr{gi}") + f".g{group_i}"
                plan.name = label
                links = ",".join(f"{int(u)}>{int(v)}" for u, v in group)
                rungs.append(Rung(label, plan,
                                  {"generator": kind, "links": links}))
            return rungs
        if kind == "rolling_outage":
            window = gen["window"]
            step = gen.get("step", window)
            rungs = []
            for i in range(gen["count"]):
                start = i * step
                plan = self._carrier()
                plan.link_down = [DownWindow(start, start + window)]
                label = gen.get("name", f"roll{gi}") + f".t{start:g}"
                plan.name = label
                rungs.append(Rung(label, plan,
                                  {"generator": kind,
                                   "window_start": start}))
            return rungs
        raise ConfigError(f"unknown generator kind {kind!r}")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": self.base.to_dict() if self.base is not None else None,
            "generators": copy.deepcopy(self.generators),
            "slos": copy.deepcopy(self.slos),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        known = {"name", "base", "generators", "slos"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown campaign-spec field(s): {sorted(unknown)}")
        base = data.get("base")
        return cls(
            name=data.get("name", ""),
            base=FaultPlan.from_dict(base) if base is not None else None,
            generators=copy.deepcopy(list(data.get("generators", []))),
            slos=copy.deepcopy(list(data.get("slos", []))),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigError(
                f"cannot read campaign spec {path}: {exc}") from None
        return cls.from_json(text)

    def digest(self) -> str:
        """Stable content hash of the campaign's *behaviour* (the
        display ``name`` is excluded, mirroring
        :meth:`~repro.faults.FaultPlan.digest`)."""
        payload = {k: v for k, v in self.to_dict().items() if k != "name"}
        if payload["base"] is not None:
            payload["base"].pop("name", None)
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()


def as_campaign_spec(spec: Any) -> CampaignSpec:
    """Normalize a ``campaign=`` argument to a validated spec.

    Accepts a :class:`CampaignSpec`, a spec dict, or a path to a spec
    JSON file (mirroring :func:`~repro.faults.as_fault_plan`).
    """
    if isinstance(spec, CampaignSpec):
        return spec.validate()
    if isinstance(spec, dict):
        return CampaignSpec.from_dict(spec).validate()
    if isinstance(spec, (str, Path)):
        return CampaignSpec.load(spec).validate()
    raise ConfigError(
        f"cannot interpret {type(spec).__name__} as a campaign spec "
        f"(expected CampaignSpec, dict, or path)")
