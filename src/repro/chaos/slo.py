"""SLO reduction — fold campaign rows into pass/fail verdicts.

The campaign runner produces one metric row per rung (uniform schema:
``rung``, generator coordinates, ``total_cycles`` / ``mean_latency`` /
``delivered`` / ``dropped`` / ``retransmissions`` / ``delivery_failed``,
plus ``error`` on captured failures).  This module reduces those rows
against the spec's declared service-level objectives:

``availability``
    At least ``min_fraction`` of the non-baseline rungs delivered every
    message (no captured error, ``delivery_failed == 0``).
``retransmission_budget``
    No rung spent more than ``max_retransmissions`` retransmissions.
``latency_inflation``
    No rung's mean message latency exceeded ``max_factor`` times the
    baseline rung's.
``single_link_survival``
    Every ``single_link_down`` rung delivered all messages within
    ``max_retransmissions`` — "survives any single link down within N
    retransmissions".

Separately, :func:`check_ladder_monotonicity` promotes the metamorphic
drop-probability monotonicity property (PR 5's per-pair test) to a
ladder-wide invariant: within each severity ladder, sorted by factor,
``dropped`` and ``retransmissions`` must be non-decreasing.  A
violation is a *campaign bug or determinism regression*, reported
structurally rather than folded into an SLO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.config import ConfigError

__all__ = ["SLOVerdict", "evaluate_slos", "check_ladder_monotonicity"]

#: Counters the ladder invariant requires to be non-decreasing in
#: severity (for a fixed seed, raising drop_prob can only turn
#: deliveries into drops — see ``LinkFault``).
_MONOTONE_COLUMNS = ("dropped", "retransmissions")


@dataclass
class SLOVerdict:
    """One evaluated objective: what was asked, what happened."""

    kind: str
    params: dict
    passed: bool
    detail: str
    worst: Optional[dict] = field(default=None)

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "params": dict(self.params),
               "passed": self.passed, "detail": self.detail}
        if self.worst is not None:
            out["worst"] = dict(self.worst)
        return out


def _clean(row: dict) -> bool:
    """A rung that delivered everything: no captured error, no
    exhausted retry budgets."""
    return not row.get("error") and not row.get("delivery_failed", 0)


def _worst(rows: list[dict], column: str) -> Optional[dict]:
    best = None
    for row in rows:
        value = row.get(column)
        if value is None:
            continue
        if best is None or value > best[1]:
            best = (row, value)
    if best is None:
        return None
    return {"rung": best[0].get("rung", "?"), column: best[1]}


def _eval_availability(slo: dict, rows: list[dict],
                       baseline: Optional[dict]) -> SLOVerdict:
    min_fraction = float(slo.get("min_fraction", 1.0))
    faulted = [r for r in rows if r.get("generator") != "baseline"]
    if not faulted:
        return SLOVerdict("availability", slo, False,
                          "no faulted rungs to judge")
    ok = sum(1 for r in faulted if _clean(r))
    fraction = ok / len(faulted)
    failed = [r.get("rung", "?") for r in faulted if not _clean(r)]
    detail = (f"{ok}/{len(faulted)} faulted rungs fully delivered "
              f"({fraction:.2%} vs required {min_fraction:.2%})")
    if failed:
        detail += "; failed: " + ", ".join(str(x) for x in failed)
    return SLOVerdict("availability", slo, fraction >= min_fraction,
                      detail)


def _eval_retransmission_budget(slo: dict, rows: list[dict],
                                baseline: Optional[dict]) -> SLOVerdict:
    budget = slo.get("max_retransmissions")
    if budget is None:
        raise ConfigError(
            "retransmission_budget SLO requires max_retransmissions")
    worst = _worst(rows, "retransmissions")
    if worst is None:
        return SLOVerdict("retransmission_budget", slo, False,
                          "no rung reported retransmissions")
    passed = worst["retransmissions"] <= budget
    detail = (f"worst rung {worst['rung']!r} used "
              f"{worst['retransmissions']} retransmissions "
              f"(budget {budget})")
    return SLOVerdict("retransmission_budget", slo, passed, detail, worst)


def _eval_latency_inflation(slo: dict, rows: list[dict],
                            baseline: Optional[dict]) -> SLOVerdict:
    max_factor = slo.get("max_factor")
    if max_factor is None:
        raise ConfigError("latency_inflation SLO requires max_factor")
    if baseline is None or not baseline.get("mean_latency"):
        return SLOVerdict("latency_inflation", slo, False,
                          "no baseline latency to compare against")
    ref = baseline["mean_latency"]
    worst = None
    for row in rows:
        if row.get("generator") == "baseline":
            continue
        lat = row.get("mean_latency")
        if not lat:
            continue
        factor = lat / ref
        if worst is None or factor > worst[1]:
            worst = (row, factor)
    if worst is None:
        return SLOVerdict("latency_inflation", slo, False,
                          "no faulted rung reported latency")
    row, factor = worst
    detail = (f"worst rung {row.get('rung', '?')!r} inflated mean "
              f"latency {factor:.3g}x over baseline "
              f"(limit {max_factor}x)")
    return SLOVerdict(
        "latency_inflation", slo, factor <= max_factor, detail,
        {"rung": row.get("rung", "?"), "inflation": factor})


def _eval_single_link_survival(slo: dict, rows: list[dict],
                               baseline: Optional[dict]) -> SLOVerdict:
    budget = slo.get("max_retransmissions")
    if budget is None:
        raise ConfigError(
            "single_link_survival SLO requires max_retransmissions")
    pack = [r for r in rows if r.get("generator") == "single_link_down"]
    if not pack:
        return SLOVerdict("single_link_survival", slo, False,
                          "campaign has no single_link_down rungs")
    bad = [r for r in pack
           if not _clean(r) or r.get("retransmissions", 0) > budget]
    worst = _worst(pack, "retransmissions")
    if bad:
        names = ", ".join(str(r.get("rung", "?")) for r in bad)
        detail = (f"{len(bad)}/{len(pack)} single-link-down rungs "
                  f"violated the budget ({budget}): {names}")
        return SLOVerdict("single_link_survival", slo, False, detail,
                          worst)
    detail = (f"all {len(pack)} single-link-down rungs delivered within "
              f"{budget} retransmissions")
    return SLOVerdict("single_link_survival", slo, True, detail, worst)


_EVALUATORS = {
    "availability": _eval_availability,
    "retransmission_budget": _eval_retransmission_budget,
    "latency_inflation": _eval_latency_inflation,
    "single_link_survival": _eval_single_link_survival,
}


def evaluate_slos(slos: list[dict], rows: list[dict]) -> list[SLOVerdict]:
    """Evaluate every declared SLO against the campaign rows."""
    baseline = next(
        (r for r in rows if r.get("generator") == "baseline"), None)
    verdicts = []
    for slo in slos:
        kind = slo.get("kind")
        evaluator = _EVALUATORS.get(kind)
        if evaluator is None:
            raise ConfigError(f"unknown SLO kind {kind!r}")
        verdicts.append(evaluator(slo, rows, baseline))
    return verdicts


def check_ladder_monotonicity(rows: list[dict]) -> list[dict]:
    """Ladder-wide promotion of the drop-prob monotonicity property.

    Groups severity-ladder rows by ladder name, orders each ladder by
    severity factor, and requires ``dropped`` and ``retransmissions``
    to be non-decreasing.  Returns structured violation records (empty
    list = invariant holds); rows with a captured ``error`` or missing
    counters are skipped rather than blamed.
    """
    ladders: dict[str, list[dict]] = {}
    for row in rows:
        if row.get("generator") != "severity_ladder":
            continue
        if row.get("error") is not None and row.get("error") != "":
            continue
        ladders.setdefault(str(row.get("ladder", "")), []).append(row)
    violations = []
    for name, group in sorted(ladders.items()):
        group.sort(key=lambda r: r.get("severity", 0.0))
        for column in _MONOTONE_COLUMNS:
            prev = None
            for row in group:
                value = row.get(column)
                if value is None:
                    continue
                if prev is not None and value < prev[1]:
                    violations.append({
                        "ladder": name,
                        "column": column,
                        "rung": row.get("rung", "?"),
                        "severity": row.get("severity"),
                        "value": value,
                        "prev_rung": prev[0].get("rung", "?"),
                        "prev_severity": prev[0].get("severity"),
                        "prev_value": prev[1],
                        "detail": (
                            f"{column} fell from {prev[1]} at severity "
                            f"{prev[0].get('severity')} to {value} at "
                            f"severity {row.get('severity')} in ladder "
                            f"{name!r}"),
                    })
                prev = (row, value)
    return violations
