"""The hybrid model (Fig 2) — computational + communication co-simulation.

"Detailed simulation of a distributed memory multicomputer requires that
the single-node computational model is replicated for each of the MIMD
nodes taking part in the simulation.  Each instance of the single-node
model is then assigned to a node within the communication model in order
to feed it with the computational tasks and communication operations."

The hybrid model is Mermaid's *accurate* mode: each node's operation
stream is timed through its own single-node model (CPU + caches + bus +
memory); the simulated time between communication operations becomes a
``compute`` task driving that node's abstract processor in the
communication model, all inside one event kernel so feedback (Fig 1's
broken arrows) is exact.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..commmodel.network import CommResult, MultiNodeModel
from ..compmodel.node import SingleNodeModel
from ..compmodel.tasks import TaskExtractionStats
from ..core.config import MachineConfig
from ..operations.ops import Operation
from ..operations.trace import TraceSet
from ..pearl import Simulator
from ..tracegen.threads import InterleavedStream
from .scheduler import make_node_pipeline

__all__ = ["HybridModel", "HybridResult"]


class HybridResult:
    """Outcome of a hybrid simulation: network + per-node computation."""

    def __init__(self, comm: CommResult, node_summaries: list[dict],
                 task_stats: list[TaskExtractionStats]) -> None:
        self.comm = comm
        self.node_summaries = node_summaries
        self.task_stats = task_stats

    @property
    def total_cycles(self) -> float:
        return self.comm.total_cycles

    @property
    def seconds(self) -> float:
        return self.comm.seconds

    @property
    def total_instructions(self) -> int:
        return sum(s["cpu"]["instructions"] for s in self.node_summaries)

    def summary(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "seconds": self.seconds,
            "instructions": self.total_instructions,
            "comm": self.comm.summary(),
            "tasks": [t.summary() for t in self.task_stats],
            "nodes": self.node_summaries,
        }

    def __repr__(self) -> str:
        return (f"<HybridResult cycles={self.total_cycles:.0f} "
                f"instr={self.total_instructions}>")


class HybridModel:
    """Replicated single-node models feeding one communication model."""

    def __init__(self, machine: MachineConfig,
                 sim: Optional[Simulator] = None, faults=None) -> None:
        machine.validate()
        if machine.node.n_cpus != 1:
            raise ValueError(
                "HybridModel replicates the single-CPU node template; for "
                "clusters of shared-memory nodes use "
                "repro.sharedmem.HybridArchitectureModel")
        self.machine = machine
        self.network = MultiNodeModel(machine, sim, faults=faults)
        self.node_models = [
            SingleNodeModel(machine.node, node_id=i)
            for i in range(self.network.n_nodes)]
        self.task_stats = [TaskExtractionStats()
                           for _ in range(self.network.n_nodes)]
        self.registry = self.network.registry
        for i, model in enumerate(self.node_models):
            self.registry.register(f"node{i}.compute", model.summary)
        for i, stats in enumerate(self.task_stats):
            self.registry.register(f"node{i}.tasks", stats.summary)

    @property
    def n_nodes(self) -> int:
        return self.network.n_nodes

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    # -- execution-driven (live node threads) -----------------------------

    def run_application(self, app) -> HybridResult:
        """Run a :class:`~repro.apps.api.ThreadedApplication` end to end."""
        if app.n_nodes != self.n_nodes:
            raise ValueError(
                f"application has {app.n_nodes} nodes, machine has "
                f"{self.n_nodes}")
        return self.run_streams(app.streams())

    def run_streams(self, streams: Sequence[InterleavedStream]
                    ) -> HybridResult:
        """Execution-driven hybrid run from interleaved node streams."""
        if len(streams) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} streams, got {len(streams)}")
        try:
            for i, stream in enumerate(streams):
                body = make_node_pipeline(
                    self.network, i, stream, self.node_models[i], stream,
                    self.task_stats[i])
                self.sim.process(body, name=f"node{i}")
            self.sim.run(check_deadlock=True)
        finally:
            for stream in streams:
                stream.close()
        return self._result()

    # -- trace-driven (static mixed traces) ----------------------------------

    def run_traces(self, traces: TraceSet | Sequence[Iterable[Operation]]
                   ) -> HybridResult:
        """Hybrid run from pre-recorded mixed traces (trace-file mode)."""
        if len(traces) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} traces, got {len(traces)}")
        for i in range(self.n_nodes):
            body = make_node_pipeline(
                self.network, i, iter(traces[i]), self.node_models[i],
                None, self.task_stats[i])
            self.sim.process(body, name=f"node{i}")
        self.sim.run(check_deadlock=True)
        return self._result()

    def _result(self) -> HybridResult:
        return HybridResult(
            self.network.result(),
            [m.summary() for m in self.node_models],
            self.task_stats)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HybridModel {self.machine.name!r} n={self.n_nodes}>"
