"""Global-event scheduling glue for hybrid co-simulation.

This module wires an :class:`~repro.tracegen.threads.InterleavedStream`
(a suspended/resumed node thread) to the communication model's node
driver, realizing the thread-scheduling scheme of Section 3.1: "the
simulation does not resume a thread until all other threads have reached
the same point in simulated time as the suspended thread" — which the
event kernel guarantees, because the driver process only advances past a
global event when the event completes in simulated time, and only then
pulls (and thereby resumes) the thread.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

from ..commmodel.network import MultiNodeModel
from ..compmodel.node import SingleNodeModel
from ..compmodel.tasks import TaskExtractionStats, extract_tasks
from ..operations.ops import Operation
from ..tracegen.threads import InterleavedStream

__all__ = ["stream_hooks", "make_node_pipeline", "traced_tasks"]


def traced_tasks(network: MultiNodeModel, node_id: int,
                 task_ops: Iterator[Operation]) -> Iterator[Operation]:
    """Pass-through that marks each task-level operation boundary.

    When a tracer is attached to the simulator, every operation handed
    from the computational side to the node driver emits a ``task``
    instant on the node's track — the hybrid hand-off points of Fig 2.
    The check is per operation so a tracer attached mid-run is honored.
    """
    sim = network.sim
    for op in task_ops:
        tracer = sim.tracer
        if tracer is not None:
            tracer.task_boundary(sim.now, f"node{node_id}", repr(op))
        yield op


def stream_hooks(stream: InterleavedStream
                 ) -> Tuple[Callable[[], Any], Callable[[Any], None]]:
    """(payload_source, result_sink) pair for one interleaved stream.

    * ``payload_source`` reads the host payload of the global event the
      thread is currently suspended at (valid exactly while the driver
      processes that event);
    * ``result_sink`` stores the value (received payload) the thread
      will be resumed with.
    """
    def payload_source() -> Any:
        return stream.thread.pending_payload

    return payload_source, stream.post_result


def make_node_pipeline(network: MultiNodeModel, node_id: int,
                       ops: Iterator[Operation],
                       node_model: Optional[SingleNodeModel] = None,
                       stream: Optional[InterleavedStream] = None,
                       stats: Optional[TaskExtractionStats] = None):
    """Build one node's driver process body.

    ``ops`` is the node's operation source (static trace iterator or an
    interleaved stream).  With ``node_model`` given, the full hybrid
    pipeline runs: computational operations are timed by the node model
    and collapsed into tasks (Fig 2); without it, ``ops`` must already
    be task level.  With ``stream`` given, payloads flow between the
    simulated network and the live node thread.
    """
    task_ops = (extract_tasks(node_model, ops, stats)
                if node_model is not None else ops)
    task_ops = traced_tasks(network, node_id, task_ops)
    if stream is not None:
        payload_source, result_sink = stream_hooks(stream)
    else:
        payload_source = result_sink = None
    return network.node_driver(node_id, task_ops, payload_source,
                               result_sink)
