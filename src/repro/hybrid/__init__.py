"""``repro.hybrid`` — the hybrid model (Fig 2): accurate co-simulation.

Replicated single-node computational models feed computational tasks
and communication operations to the multi-node communication model,
with execution-driven trace generation interleaved into the same event
kernel (physical-time interleaving).
"""

from .model import HybridModel, HybridResult
from .scheduler import make_node_pipeline, stream_hooks

__all__ = ["HybridModel", "HybridResult", "make_node_pipeline",
           "stream_hooks"]
