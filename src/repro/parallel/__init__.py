"""Parallel sweep execution and content-addressed result caching.

The workbench's design-space sweeps are embarrassingly parallel and —
thanks to the Pearl kernel's deterministic event ordering — bit-for-bit
reproducible, so this package makes them fast without making them less
trustworthy:

* :class:`ParallelSweepRunner` — fan machine variants out over a
  process pool; ordered results, per-variant error capture;
* :class:`ResultCache` — skip variants whose
  ``(machine, workload, code version)`` hash already has a row;
* :func:`result_key` / :func:`code_version` — the cache key scheme;
* :class:`Executor` / :class:`InProcessExecutor` /
  :class:`LocalAsyncExecutor` — sweeps as submit/poll/cancel/stream
  *jobs*, byte-identical rows across backends (the service layer in
  :mod:`repro.service` builds on these).

Normally reached through ``Sweep.run(runner, workers=..., cache=...)``
(see :mod:`repro.core.experiment`) or the ``repro sweep`` CLI command.
"""

from .cache import (
    CacheStats,
    ResultCache,
    code_version,
    result_key,
    sources_digest,
)
from .executor import (
    Executor,
    ExecutorError,
    InProcessExecutor,
    JobSpec,
    JobStatus,
    LocalAsyncExecutor,
    TERMINAL_STATES,
)
from .runner import (
    FaultedRunner,
    ParallelSweepRunner,
    SweepVariantError,
    default_workload_id,
    error_message,
    execute_variant,
    run_cached_sweep,
    run_sharded,
)

__all__ = [
    "CacheStats", "Executor", "ExecutorError", "FaultedRunner",
    "InProcessExecutor", "JobSpec", "JobStatus", "LocalAsyncExecutor",
    "ParallelSweepRunner", "ResultCache", "SweepVariantError",
    "TERMINAL_STATES",
    "code_version", "default_workload_id", "error_message",
    "execute_variant", "result_key", "run_cached_sweep", "run_sharded",
    "sources_digest",
]
