"""Parallel execution of design-space sweeps.

"The evaluation of a wide range of architectural design tradeoffs"
means running the same workload on many machine variants — trivially
parallel work that :class:`ParallelSweepRunner` fans out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

* every variant runs in its own interpreter, so the Pearl kernel's
  deterministic schedule (global monotone sequence tie-breaking) makes
  parallel results bit-identical to serial ones;
* results are collected **in submission order**, never completion
  order, so row order matches the serial path;
* a variant whose runner raises is captured as an error row instead of
  killing the sweep (``on_error="capture"``), so an overnight sweep
  survives one sick configuration;
* an optional :class:`~repro.parallel.cache.ResultCache` short-circuits
  variants whose ``(machine, workload, code)`` key already has a row.

The runner callable and the machine configs must be picklable (a
module-level function, or a :func:`functools.partial` over one).  On
platforms with ``fork`` the pool inherits the parent's modules, so
runners defined in test or benchmark modules work unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..core.config import MachineConfig
from ..pearl.kernel import kernel_mode
from .cache import ResultCache

__all__ = ["FaultedRunner", "ParallelSweepRunner", "SweepVariantError",
           "default_workload_id", "error_message", "execute_batch_iter",
           "execute_variant", "execute_variant_timed", "run_cached_sweep",
           "run_sharded"]

Runner = Callable[[MachineConfig], dict]
#: one sweep point: (coordinates, machine variant)
Point = tuple[dict, MachineConfig]
#: progress callback: (rows completed so far, total rows, the new row)
ProgressFn = Callable[[int, int, dict], None]


def default_workload_id(runner: Runner) -> str:
    """A workload id derived from the runner's qualified name.

    Good enough when the runner closes over a fixed workload; pass an
    explicit ``workload_id`` when the same function runs different
    workloads (the name does not hash the workload's *content* — only
    :func:`~repro.parallel.cache.code_version` tracks code changes).
    """
    func = runner
    while hasattr(func, "func"):          # unwrap functools.partial
        func = func.func
    module = getattr(func, "__module__", "?")
    name = getattr(func, "__qualname__", repr(func))
    return f"{module}.{name}"


class FaultedRunner:
    """Picklable wrapper binding a fault plan to a sweep runner.

    Calls ``func(machine, faults=plan)`` — the wrapped runner must
    accept a ``faults`` keyword (pass it to ``Workbench``/
    ``MultiNodeModel``).  Exposes ``func`` so
    :func:`default_workload_id` unwraps to the inner runner's name;
    the plan itself reaches the cache key separately, as a digest.
    """

    def __init__(self, func: Callable, plan) -> None:
        self.func = func
        self.plan = plan

    def __call__(self, machine: MachineConfig) -> dict:
        return self.func(machine, faults=self.plan)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultedRunner {self.func!r} plan={self.plan!r}>"


def execute_variant(runner: Runner, machine: MachineConfig
                    ) -> tuple[str, Any]:
    """Run one variant, capturing any exception.

    Returns ``("ok", metrics)`` or ``("error", payload)`` where the
    payload is a dict ``{"error": "Type: message", "traceback": ...}``
    carrying the formatted traceback from the worker that raised — the
    traceback travels back over the pickle boundary as a plain string,
    so failed-job records stay debuggable from the service side.
    Exceptions exposing a ``partial_row()`` method (notably
    :class:`repro.faults.DeliveryFailed`, which carries the partial
    ``CommResult``) extend the payload with ``partial_row()`` columns
    so the captured row keeps the same metric columns as successful
    rows — campaign-style reductions never see a ragged schema.
    Shared by the serial and parallel paths so both capture failures
    identically.
    """
    try:
        metrics = runner(machine)
    except Exception as exc:              # noqa: BLE001 - captured by design
        message = f"{type(exc).__name__}: {exc}"
        payload = {"error": message, "traceback": traceback.format_exc()}
        partial = getattr(exc, "partial_row", None)
        if callable(partial):
            try:
                columns = partial()
            except Exception:             # noqa: BLE001 - salvage is best-effort
                columns = None
            if columns:
                payload.update(columns)
        return "error", payload
    if not isinstance(metrics, dict):
        return "error", {"error": (f"TypeError: runner returned "
                                   f"{type(metrics).__name__}, expected dict")}
    return "ok", metrics


def error_message(payload: Any) -> str:
    """The human-readable message of an ``("error", payload)`` outcome
    (the ``"error"`` entry of a structured payload, or the payload
    itself when a legacy caller passed a plain string)."""
    if isinstance(payload, dict):
        return payload["error"]
    return payload


def execute_variant_timed(runner: Runner, machine: MachineConfig
                          ) -> tuple[str, Any, float]:
    """:func:`execute_variant` plus the variant's wall time in seconds."""
    # Host-side measurement: wall time here IS the measurand.
    t0 = time.perf_counter()               # repro: noqa[PY002]
    status, payload = execute_variant(runner, machine)
    return status, payload, time.perf_counter() - t0  # repro: noqa[PY002]


def _execute_untimed(runner: Runner, machine: MachineConfig
                     ) -> tuple[str, Any, float]:
    """Uniform (status, payload, wall) shape with wall pinned to 0.0."""
    status, payload = execute_variant(runner, machine)
    return status, payload, 0.0


def _pin_kernel_mode(mode: str) -> None:
    """Worker initializer: inherit the parent's kernel dispatcher.

    Fork children share the parent's environment anyway; pinning it
    explicitly keeps sweep rows identical under spawn-style pools and
    when the parent mutates ``REPRO_KERNEL`` mid-run.
    """
    os.environ["REPRO_KERNEL"] = mode


def _mp_context() -> Optional[multiprocessing.context.BaseContext]:
    """Prefer ``fork``: children inherit imported modules, so runners
    defined in non-importable modules (pytest files) still unpickle."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - non-POSIX platforms


def run_sharded(fn: Callable[[Any], Any], items: Sequence[Any],
                workers: int,
                progress: Optional[Callable[[int, int, Any], None]] = None
                ) -> list[Any]:
    """Map a picklable ``fn`` over ``items`` on a process pool.

    The generic sibling of :meth:`ParallelSweepRunner._execute`, shared
    with ``repro verify`` (independent schedule shards) and ``repro
    chaos`` (campaign rungs): results come back in item order, workers
    inherit the parent's kernel dispatcher, and pool *infrastructure*
    failures (no fork support, unpicklable work) fall back to
    in-process execution — ``fn`` itself is expected to capture its own
    task-level errors, like :func:`execute_variant` does.
    ``progress(done, total, result)`` fires once per item, in item
    order, as each result resolves.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    def _collect(results: Any) -> list[Any]:
        out = []
        for result in results:
            out.append(result)
            if progress is not None:
                progress(len(out), len(items), result)
        return out

    if workers == 1 or len(items) <= 1:
        return _collect(fn(item) for item in items)
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(items)),
                                 mp_context=_mp_context(),
                                 initializer=_pin_kernel_mode,
                                 initargs=(kernel_mode(),)) as pool:
            futures: list[Future] = [pool.submit(fn, item)
                                     for item in items]
            return _collect(f.result() for f in futures)
    except (OSError, ImportError, BrokenExecutor,
            pickle.PicklingError, AttributeError, TypeError):
        # Same contract as ParallelSweepRunner._execute: simulations
        # are pure, so in-process execution yields identical results.
        return _collect(fn(item) for item in items)


#: pool *infrastructure* failures that trigger the in-process fallback
#: (no fork support, unpicklable work, dead workers) — task-level
#: exceptions never surface through these, execute_variant captures them.
_POOL_ERRORS = (OSError, ImportError, BrokenExecutor,
                pickle.PicklingError, AttributeError, TypeError)


def execute_batch_iter(runner: Runner, machines: Sequence[MachineConfig], *,
                       workers: int, timing: bool = False
                       ) -> Iterator[tuple[str, Any, float]]:
    """Yield one ``(status, payload, wall)`` outcome per machine, in
    machine order, incrementally as results resolve.

    The streaming core behind :class:`ParallelSweepRunner` and the
    in-process :class:`~repro.parallel.executor.InProcessExecutor`:
    consumers observe outcome *i* as soon as variants ``0..i`` are done
    rather than after the whole batch, which is what lets job progress
    stream live over the service API.  Pool infrastructure failures
    fall back to in-process execution for the variants that have not
    yielded yet — simulations are pure, so the fallback rows are
    identical to what the pool would have produced.
    """
    task = execute_variant_timed if timing else _execute_untimed
    n_workers = min(workers, len(machines))
    if n_workers <= 1:
        for machine in machines:
            yield task(runner, machine)
        return
    try:
        pool = ProcessPoolExecutor(max_workers=n_workers,
                                   mp_context=_mp_context(),
                                   initializer=_pin_kernel_mode,
                                   initargs=(kernel_mode(),))
    except _POOL_ERRORS:  # pragma: no cover - platform-dependent
        for machine in machines:
            yield task(runner, machine)
        return
    with pool:
        try:
            futures: list[Future] = [pool.submit(task, runner, m)
                                     for m in machines]
        except _POOL_ERRORS:
            for machine in machines:
                yield task(runner, machine)
            return
        for idx, future in enumerate(futures):
            try:
                outcome = future.result()
            except _POOL_ERRORS:
                # The pool died mid-batch: recompute only the variants
                # that have not been yielded yet.
                for machine in machines[idx:]:
                    yield task(runner, machine)
                return
            yield outcome


ExecuteFn = Callable[..., Iterable[tuple[str, Any, float]]]


def run_cached_sweep(execute: ExecuteFn, runner: Runner,
                     points: Sequence[Point], *,
                     cache: Optional[ResultCache] = None,
                     workload_id: Optional[str] = None,
                     on_error: str = "capture",
                     progress: Optional[ProgressFn] = None,
                     timing: bool = False, faults=None) -> list[dict]:
    """The cache-scan / row-assembly / progress core of every backend.

    ``execute(runner, machines, timing=...)`` supplies the outcomes for
    the cache misses (any iterable, in machine order — a generator
    streams progress live).  All executors funnel through this one
    function, so sweep rows are byte-identical across backends by
    construction: same cache keys, same row assembly, same progress
    contract (cache hits first, during the scan, then executed variants
    in point order — streamed progress reaches 100% even when every row
    is served from cache).
    """
    if on_error not in ("capture", "raise"):
        raise ValueError(f"on_error must be 'capture' or 'raise', "
                         f"got {on_error!r}")
    wid = workload_id or default_workload_id(runner)
    rows: list[Optional[dict]] = [None] * len(points)
    done = 0

    pending: list[tuple[int, str]] = []   # (point index, cache key)
    for idx, (coords, machine) in enumerate(points):
        key = ""
        if cache is not None:
            # `faults` (a normalized FaultPlan or None) extends the
            # key with the plan digest, so faulty and fault-free
            # rows of the same variant never collide.
            key = cache.key_for(machine, wid, faults=faults)
            cached = cache.get(key)
            if cached is not None:
                row = {**coords, **cached}
                if timing:
                    row["wall_time_s"] = 0.0
                rows[idx] = row
                done += 1
                if progress is not None:
                    progress(done, len(points), row)
                continue
        pending.append((idx, key))

    if pending:
        outcomes = execute(runner, [points[i][1] for i, _ in pending],
                           timing=timing)
        for (idx, key), (status, payload, wall) in zip(pending, outcomes):
            coords, machine = points[idx]
            if status == "ok":
                if cache is not None:
                    # The full config (not just the name) rides along
                    # so `repro bound --audit` can rebuild the exact
                    # machine behind any historical row.
                    cache.put(key, payload, meta={
                        "machine": machine.name, "workload_id": wid,
                        "machine_config": machine.to_dict()})
                row = {**coords, **payload}
            elif on_error == "raise":
                raise SweepVariantError(coords, error_message(payload))
            else:
                # The structured payload carries the "error" key, the
                # remote traceback, plus any partial metric columns.
                row = ({**coords, **payload} if isinstance(payload, dict)
                       else {**coords, "error": payload})
            if timing:
                row["wall_time_s"] = wall
            rows[idx] = row
            done += 1
            if progress is not None:
                progress(done, len(points), row)
    return rows  # type: ignore[return-value]


class ParallelSweepRunner:
    """Fan a sweep's points out over worker processes, with caching.

    ::

        runner = ParallelSweepRunner(workers=8, cache=ResultCache(dir))
        rows = runner.run(run_node, sweep.points())

    ``workers=1`` executes in-process (no pool), which is also the
    fallback when a pool cannot be created.  Rows come back in point
    order; failed variants become ``{**coords, "error": ...}`` rows
    unless ``on_error="raise"``.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)
        self.cache = cache

    def run(self, runner: Runner, points: Sequence[Point], *,
            workload_id: Optional[str] = None,
            on_error: str = "capture",
            progress: Optional[ProgressFn] = None,
            timing: bool = False, faults=None) -> list[dict]:
        """One metric row per point, in point order.

        ``progress(done, total, row)`` is called once per resolved row —
        cache hits first (during the scan), then executed variants in
        point order.  ``timing=True`` adds a ``wall_time_s`` column to
        every executed row (cache hits report ``0.0``); it is opt-in
        because wall time is nondeterministic and would break row
        equality between runs.  Wall times never enter the cache.

        Delegates to :func:`run_cached_sweep` over
        :func:`execute_batch_iter`, the same core every
        :class:`~repro.parallel.executor.Executor` backend uses — rows
        are byte-identical across all of them by construction.
        """
        return run_cached_sweep(self._execute_iter, runner, points,
                                cache=self.cache, workload_id=workload_id,
                                on_error=on_error, progress=progress,
                                timing=timing, faults=faults)

    def _execute_iter(self, runner: Runner,
                      machines: Sequence[MachineConfig], *,
                      timing: bool = False
                      ) -> Iterator[tuple[str, Any, float]]:
        return execute_batch_iter(runner, machines, workers=self.workers,
                                  timing=timing)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ParallelSweepRunner workers={self.workers} "
                f"cache={self.cache!r}>")


class SweepVariantError(RuntimeError):
    """A variant failed and the sweep was run with ``on_error='raise'``."""

    def __init__(self, coords: dict, message: str) -> None:
        super().__init__(f"sweep variant {coords!r} failed: {message}")
        self.coords = coords
        self.message = message
