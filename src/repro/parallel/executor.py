"""Backend-agnostic sweep execution: submit / poll / cancel / stream.

The workbench's interactive loop runs sweeps synchronously; serving
that loop to many users needs sweeps as *jobs* — submitted, watched,
cancelled — without changing what a sweep computes.  This module lifts
:class:`~repro.parallel.runner.ParallelSweepRunner` behind a small
:class:`Executor` interface:

* :class:`InProcessExecutor` — wraps the existing process-pool path;
  ``submit`` runs the job to completion before returning (the caller
  provides the concurrency, e.g. the service dispatch thread);
* :class:`LocalAsyncExecutor` — a persistent worker supervisor:
  ``submit`` enqueues and returns immediately, jobs run FIFO on
  long-lived worker processes with job-level timeouts, crash-recovery
  requeue and bounded retry.

Every backend funnels through
:func:`~repro.parallel.runner.run_cached_sweep`, so sweep rows are
byte-identical across backends by construction — the conformance suite
(``tests/test_executor_conformance.py``) pins exactly that.  Job state
is one of ``queued → running → done | failed | cancelled``; progress
events mirror the ``progress=`` hook (cache hits included, so a fully
warm job still streams to 100%).
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence

from ..pearl.kernel import kernel_mode
from .cache import ResultCache
from .runner import (Point, Runner, _execute_untimed, _mp_context,
                     execute_batch_iter, execute_variant_timed,
                     run_cached_sweep)

__all__ = ["Executor", "ExecutorError", "InProcessExecutor", "JobSpec",
           "JobStatus", "LocalAsyncExecutor", "TERMINAL_STATES"]

#: job states that no longer change
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: event callback: receives each job event dict as it is emitted
EventFn = Callable[[dict], None]


class ExecutorError(RuntimeError):
    """Misuse of the executor API (unknown job, result of unfinished job)."""


class _JobCancelled(Exception):
    """Internal control flow: a cancel request reached a running job."""


class _JobTimeout(Exception):
    """Internal control flow: a running job exceeded its time budget."""


@dataclass
class JobSpec:
    """Everything needed to run one sweep as a job.

    Mirrors the keyword surface of
    :meth:`repro.core.experiment.Sweep.run`; ``cache`` may be a
    :class:`ResultCache`, a directory path, or ``None`` (falls back to
    the executor's cache).  ``timeout_s`` bounds the whole job's wall
    time (``None`` defers to the executor default).
    """

    runner: Runner
    points: Sequence[Point]
    workload_id: Optional[str] = None
    on_error: str = "capture"
    timing: bool = False
    faults: Any = None
    cache: Any = None
    timeout_s: Optional[float] = None


@dataclass
class JobStatus:
    """A point-in-time snapshot of one job (no wall-clock fields)."""

    job_id: str
    state: str
    done: int
    total: int
    error: Optional[str] = None
    cache: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Deterministic JSON form, field order fixed."""
        return {"job_id": self.job_id, "state": self.state,
                "done": self.done, "total": self.total,
                "error": self.error, "cache": dict(self.cache)}


class _Job:
    """Mutable job record shared between submitter and backend."""

    def __init__(self, job_id: str, spec: JobSpec,
                 on_event: Optional[EventFn]) -> None:
        self.job_id = job_id
        self.spec = spec
        self.on_event = on_event
        self.state = "queued"
        self.done = 0
        self.total = len(spec.points)
        self.rows: Optional[list[dict]] = None
        self.error: Optional[str] = None
        self.cache_stats: dict = {"hits": 0, "misses": 0, "stores": 0}
        self.events: list[dict] = []
        self.cancel_requested = False
        self.cond = threading.Condition()

    def emit(self, event: dict) -> None:
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()
        if self.on_event is not None:
            self.on_event(event)

    def set_state(self, state: str, error: Optional[str] = None) -> None:
        with self.cond:
            self.state = state
            self.error = error
            self.cond.notify_all()
        event = {"event": "state", "state": state}
        if error is not None:
            event["error"] = error
        self.emit(event)

    def note_progress(self, done: int, total: int, row: dict) -> None:
        with self.cond:
            self.done = done
            self.total = total
        self.emit({"event": "progress", "done": done, "total": total,
                   "row": row})

    def status(self) -> JobStatus:
        with self.cond:
            return JobStatus(self.job_id, self.state, self.done, self.total,
                             self.error, dict(self.cache_stats))


def _as_cache(cache: Any) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(str(cache))


def _stats_snapshot(cache: Optional[ResultCache]) -> tuple[int, int, int]:
    if cache is None:
        return (0, 0, 0)
    return (cache.stats.hits, cache.stats.misses, cache.stats.stores)


class Executor:
    """Submit sweeps as jobs; poll, stream, cancel, fetch results.

    Subclasses provide the backend (`_start` decides whether ``submit``
    runs the job synchronously or enqueues it) and the per-batch
    execute function; everything observable — job states, events, row
    assembly, cache behavior — is shared here, which is what makes
    backends conformant with each other.
    """

    def __init__(self, cache: Any = None,
                 job_timeout_s: Optional[float] = None) -> None:
        self.cache = _as_cache(cache)
        self.job_timeout_s = job_timeout_s
        self._jobs: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- submission interface ------------------------------------------

    def submit(self, spec: JobSpec, *, job_id: Optional[str] = None,
               on_event: Optional[EventFn] = None) -> str:
        """Register a job and hand it to the backend; returns the job id.

        ``on_event`` observes every job event as it is emitted (the
        service uses this to stream progress over HTTP).  Pass an
        explicit ``job_id`` to make the executor's id match an external
        record's.
        """
        with self._lock:
            jid = job_id if job_id is not None else f"job-{next(self._ids)}"
            if jid in self._jobs:
                raise ExecutorError(f"duplicate job id: {jid!r}")
            job = _Job(jid, spec, on_event)
            self._jobs[jid] = job
        self._start(job)
        return jid

    def _start(self, job: _Job) -> None:
        raise NotImplementedError

    # -- observation interface -----------------------------------------

    def _job(self, job_id: str) -> _Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ExecutorError(f"unknown job: {job_id!r}") from None

    def poll(self, job_id: str) -> JobStatus:
        """A snapshot of the job's state, progress and cache stats."""
        return self._job(job_id).status()

    def result(self, job_id: str) -> list[dict]:
        """The finished job's rows; raises unless the job is ``done``."""
        job = self._job(job_id)
        with job.cond:
            if job.state != "done":
                detail = f": {job.error}" if job.error else ""
                raise ExecutorError(
                    f"job {job_id!r} is {job.state}{detail}")
            return list(job.rows or [])

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> JobStatus:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self._job(job_id)
        # Host-side timeout bookkeeping, not simulated time.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # repro: noqa[PY002]
        with job.cond:
            while job.state not in TERMINAL_STATES:
                if deadline is None:
                    job.cond.wait(0.5)
                    continue
                left = deadline - time.monotonic()  # repro: noqa[PY002]
                if left <= 0:
                    break
                job.cond.wait(left)
        return job.status()

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield the job's events from the beginning, live, until the
        terminal state event — ``state`` events bracket ``progress``
        events, one per row, cache hits included."""
        job = self._job(job_id)
        idx = 0
        while True:
            with job.cond:
                while idx >= len(job.events) \
                        and job.state not in TERMINAL_STATES:
                    job.cond.wait(0.2)
                if idx >= len(job.events):
                    return
                event = job.events[idx]
            idx += 1
            yield event

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; ``False`` if the job already ended.

        Cancellation is cooperative: a queued job is dropped before it
        starts, a running job stops at the next row boundary (the
        :class:`LocalAsyncExecutor` additionally terminates in-flight
        variant workers).
        """
        job = self._job(job_id)
        with job.cond:
            if job.state in TERMINAL_STATES:
                return False
            job.cancel_requested = True
            job.cond.notify_all()
        return True

    def close(self) -> None:
        """Release backend resources; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- shared job body -----------------------------------------------

    def _execute_fn(self, job: _Job, deadline: Optional[float]) -> Callable:
        raise NotImplementedError

    def _run_job(self, job: _Job) -> None:
        spec = job.spec
        # Explicit None check: an *empty* ResultCache is falsy (__len__).
        cache = _as_cache(spec.cache)
        if cache is None:
            cache = self.cache
        timeout = (spec.timeout_s if spec.timeout_s is not None
                   else self.job_timeout_s)
        # Job deadlines are host-side wall time by definition.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # repro: noqa[PY002]
        job._timeout_s = timeout
        job.set_state("running")
        base = _stats_snapshot(cache)

        def progress(done: int, total: int, row: dict) -> None:
            _check_abort(job, deadline)
            job.note_progress(done, total, row)

        try:
            rows = run_cached_sweep(
                self._execute_fn(job, deadline), spec.runner,
                list(spec.points), cache=cache,
                workload_id=spec.workload_id, on_error=spec.on_error,
                progress=progress, timing=spec.timing, faults=spec.faults)
        except _JobCancelled:
            state, error = "cancelled", None
        except _JobTimeout as exc:
            state, error = "failed", str(exc)
        except Exception as exc:  # noqa: BLE001 - job boundary
            state, error = "failed", f"{type(exc).__name__}: {exc}"
        else:
            state, error = "done", None
            job.rows = rows
        after = _stats_snapshot(cache)
        with job.cond:
            job.cache_stats = {"hits": after[0] - base[0],
                               "misses": after[1] - base[1],
                               "stores": after[2] - base[2]}
        job.set_state(state, error)


def _check_abort(job: _Job, deadline: Optional[float]) -> None:
    if job.cancel_requested:
        raise _JobCancelled(job.job_id)
    if deadline is not None \
            and time.monotonic() > deadline:  # repro: noqa[PY002]
        raise _JobTimeout(
            f"JobTimeout: job exceeded its {job._timeout_s}s budget")


class InProcessExecutor(Executor):
    """The existing pool path behind the job interface.

    ``submit`` runs the job to completion on the calling thread via
    :func:`~repro.parallel.runner.execute_batch_iter` (events stream
    incrementally to ``on_event`` while it runs); concurrency across
    jobs is the caller's concern.  Cancellation from another thread
    lands at the next row boundary.
    """

    def __init__(self, workers: Optional[int] = None, cache: Any = None,
                 job_timeout_s: Optional[float] = None) -> None:
        super().__init__(cache=cache, job_timeout_s=job_timeout_s)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)

    def _start(self, job: _Job) -> None:
        self._run_job(job)

    def _execute_fn(self, job: _Job, deadline: Optional[float]) -> Callable:
        def execute(runner: Runner, machines: Sequence, *,
                    timing: bool = False) -> Iterator:
            return execute_batch_iter(runner, machines,
                                      workers=self.workers, timing=timing)
        return execute


def _async_worker_main(inbox: Any, out_conn: Any,
                       mode: str) -> None:  # pragma: no cover - child proc
    """Long-lived variant worker: pull tasks, push outcomes, forever."""
    os.environ["REPRO_KERNEL"] = mode
    while True:
        item = inbox.get()
        if item is None:
            return
        seq, idx, runner, machine, timing = item
        task = execute_variant_timed if timing else _execute_untimed
        out_conn.send((seq, idx, task(runner, machine)))


class _Worker:
    """One persistent worker process, its inbox, and its result pipe.

    Results travel over a *per-worker* pipe with the worker as sole
    writer (a synchronous ``Connection.send`` from the worker's main
    thread, not a shared ``multiprocessing.Queue``).  A shared result
    queue writes through a feeder thread that holds a cross-process
    write lock; a worker dying mid-write (``os._exit`` in a model, a
    ``terminate()`` on job timeout) would leave that lock held and
    silently deadlock *every* worker.  With one pipe per worker, a
    crash can only corrupt the crashed worker's own pipe — which the
    respawn discards along with the process.
    """

    def __init__(self, wid: int, ctx: Any) -> None:
        self.wid = wid
        self.ctx = ctx
        #: parent's read end of the result pipe (None once broken)
        self.conn: Optional[Any] = None
        #: (variant index, attempts so far) of the in-flight task
        self.busy: Optional[tuple[int, int]] = None
        self.spawn()

    def spawn(self) -> None:
        if self.conn is not None:
            self.conn.close()
        self.inbox = self.ctx.Queue()
        self.conn, out_conn = self.ctx.Pipe(duplex=False)
        self.proc = self.ctx.Process(
            target=_async_worker_main,
            args=(self.inbox, out_conn, kernel_mode()),
            daemon=True)
        self.proc.start()
        # The write end must live only in the child: EOF then reliably
        # marks worker death even if it died mid-send.
        out_conn.close()
        self.busy = None

    def send(self, task: tuple) -> None:
        self.inbox.put(task)

    def abort(self) -> None:
        """Kill the in-flight task and come back clean."""
        self.proc.terminate()
        self.proc.join()
        self.spawn()

    def stop(self) -> None:
        try:
            self.inbox.put(None)
            self.proc.join(1.0)
        except (OSError, ValueError):  # pragma: no cover - teardown races
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join()
        if self.conn is not None:
            self.conn.close()
            self.conn = None


class LocalAsyncExecutor(Executor):
    """Async jobs on a persistent worker supervisor.

    ``submit`` enqueues and returns immediately; a supervisor thread
    runs jobs FIFO, packing each job's variants across ``workers``
    long-lived processes.  Per-variant crash recovery: a worker that
    dies mid-variant is respawned and the variant requeued, up to
    ``max_task_retries`` extra attempts, after which the variant
    becomes a ``WorkerCrashed`` error row (the job itself survives).
    ``job_timeout_s`` bounds each job's wall time — on expiry the job
    fails, in-flight workers are terminated and respawned, and the
    executor keeps serving subsequent jobs.
    """

    def __init__(self, workers: Optional[int] = None, cache: Any = None,
                 job_timeout_s: Optional[float] = None,
                 max_task_retries: int = 2,
                 poll_interval_s: float = 0.02) -> None:
        super().__init__(cache=cache, job_timeout_s=job_timeout_s)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_task_retries < 0:
            raise ValueError(f"max_task_retries must be >= 0, "
                             f"got {max_task_retries}")
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)
        self.max_task_retries = max_task_retries
        self.poll_interval_s = poll_interval_s
        self._ctx = _mp_context() or multiprocessing.get_context()
        self._workers = [_Worker(i, self._ctx)
                         for i in range(self.workers)]
        self._task_seq = itertools.count(1)
        self._job_queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(target=self._supervise,
                                        name="repro-executor", daemon=True)
        self._thread.start()

    def _start(self, job: _Job) -> None:
        if self._closed:
            raise ExecutorError("executor is closed")
        self._job_queue.put(job)

    def _supervise(self) -> None:
        while True:
            job = self._job_queue.get()
            if job is None:
                return
            if job.cancel_requested:
                job.set_state("cancelled")
                continue
            self._run_job(job)

    def _execute_fn(self, job: _Job, deadline: Optional[float]) -> Callable:
        def execute(runner: Runner, machines: Sequence, *,
                    timing: bool = False) -> Iterator:
            return self._pool_iter(job, runner, machines, timing, deadline)
        return execute

    def _pool_iter(self, job: _Job, runner: Runner, machines: Sequence,
                   timing: bool, deadline: Optional[float]) -> Iterator:
        try:
            pickle.dumps(runner)
        except Exception:  # noqa: BLE001 - parity with pool fallback
            # Unpicklable runner: in-process fallback, same contract as
            # ParallelSweepRunner's pool-failure path.
            task = execute_variant_timed if timing else _execute_untimed
            for machine in machines:
                _check_abort(job, deadline)
                yield task(runner, machine)
            return
        seq = next(self._task_seq)
        pending: deque = deque((i, 0) for i in range(len(machines)))
        ready: dict[int, tuple] = {}
        next_out = 0
        try:
            while next_out < len(machines):
                _check_abort(job, deadline)
                for worker in self._workers:
                    if worker.busy is None and pending:
                        idx, tries = pending.popleft()
                        # Queue put, not a Pearl event send.
                        worker.send((seq, idx, runner,  # repro: noqa[PY011]
                                     machines[idx], timing))
                        worker.busy = (idx, tries)
                self._drain(seq, ready, block=True)
                self._reap(seq, ready, pending)
                while next_out in ready:
                    yield ready.pop(next_out)
                    next_out += 1
        except (_JobCancelled, _JobTimeout):
            self._abort_outstanding()
            raise

    def _drain(self, seq: int, ready: dict, *, block: bool) -> None:
        """Move finished outcomes from the worker pipes into ``ready``."""
        timeout = self.poll_interval_s if block else 0
        while True:
            conns = {w.conn: w for w in self._workers if w.conn is not None}
            readable = multiprocessing.connection.wait(list(conns), timeout)
            if not readable:
                return
            timeout = 0
            for conn in readable:
                worker = conns[conn]
                try:
                    rseq, idx, outcome = conn.recv()
                except (EOFError, OSError):
                    # Worker died (possibly mid-send); drop the pipe.
                    # ``_reap`` respawns it and requeues its variant.
                    conn.close()
                    worker.conn = None
                    continue
                worker.busy = None
                if rseq == seq:   # stale results of aborted jobs are dropped
                    ready[idx] = outcome

    def _reap(self, seq: int, ready: dict, pending: deque) -> None:
        """Detect dead workers; requeue or fail their in-flight variant."""
        for worker in self._workers:
            if worker.busy is None or worker.proc.is_alive():
                continue
            # The result may have raced the exit — drain once more
            # before declaring the variant lost.
            self._drain(seq, ready, block=False)
            if worker.busy is None:
                continue
            idx, tries = worker.busy
            code = worker.proc.exitcode
            worker.spawn()
            if tries >= self.max_task_retries:
                ready[idx] = ("error", {
                    "error": (f"WorkerCrashed: variant worker exited with "
                              f"code {code} (after {tries + 1} attempts)")},
                    0.0)
            else:
                pending.appendleft((idx, tries + 1))

    def _abort_outstanding(self) -> None:
        for worker in self._workers:
            if worker.busy is not None:
                worker.abort()
        self._drain(-1, {}, block=False)   # flush stale results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._job_queue.put(None)
        self._thread.join(timeout=60.0)
        for worker in self._workers:
            worker.stop()
