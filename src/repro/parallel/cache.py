"""Content-addressed result cache for design-space sweeps.

A sweep point is a pure function of three inputs: the machine
configuration, the workload, and the simulator code itself (the Pearl
kernel's global-sequence tie-breaking makes every run deterministic,
see DESIGN.md).  The cache therefore keys each metric row by a stable
hash of ``(MachineConfig, workload id, code version)`` and re-running a
sweep only simulates variants whose key changed.

* The machine part is the canonical JSON of
  :meth:`~repro.core.config.MachineConfig.to_dict` (sorted keys), so
  two structurally equal configs share an entry no matter how they
  were built.
* The workload id is a caller-chosen string naming the workload (by
  default derived from the runner's qualified name).
* The code version is a digest over the ``repro`` package sources, so
  editing the simulator invalidates every entry automatically.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` — safe to
share between concurrent processes (writes go through ``os.replace``)
and to delete wholesale at any time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional

from ..core.config import MachineConfig

__all__ = ["CacheStats", "ResultCache", "code_version", "result_key",
           "sources_digest"]


def sources_digest(root: Path, pattern: str = "*.py") -> str:
    """Stable digest of every ``pattern`` file under ``root``.

    Paths (relative) and contents both feed the hash, so renames count
    as changes.  Shared by :func:`code_version` and the lint analyzer's
    rule-set version (``repro.check.lint.cache``).
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob(pattern)):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``.py`` source file in the ``repro`` package.

    Any change to the simulator produces a new version, invalidating
    cached results computed by older code.
    """
    return sources_digest(Path(__file__).resolve().parent.parent)


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def result_key(machine: MachineConfig, workload_id: str,
               version: Optional[str] = None, faults=None,
               certificate: Optional[str] = None) -> str:
    """Stable content hash of ``(machine, workload, code version)``.

    ``faults`` — a normalized :class:`repro.faults.FaultPlan` (or
    ``None``) — extends the key with the plan's behaviour digest.
    ``certificate`` — a ``repro verify``
    :attr:`~repro.verify.VerifyResult.certificate` digest — extends the
    key with the explored schedule space, so rows produced under a
    verified schedule contract never collide with unverified ones (and
    a changed verification outcome invalidates them).  Either extension
    leaves the plain key unchanged from earlier releases, so existing
    caches stay valid.
    """
    payload = {
        "machine": machine.to_dict(),
        "workload": workload_id,
        "code": version if version is not None else code_version(),
    }
    if faults is not None:
        payload["faults"] = faults.digest()
    if certificate is not None:
        payload["verify"] = certificate
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def format(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.stores} stored"


class ResultCache:
    """Directory-backed store of sweep metric rows, addressed by key.

    ::

        cache = ResultCache("~/.cache/repro-sweeps")
        key = cache.key_for(machine, "alltoall-16n")
        row = cache.get(key)
        if row is None:
            row = simulate(...)
            cache.put(key, row)
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def key_for(self, machine: MachineConfig, workload_id: str,
                faults=None, certificate: Optional[str] = None) -> str:
        return result_key(machine, workload_id, faults=faults,
                          certificate=certificate)

    def get(self, key: str) -> Optional[dict]:
        """The cached metric row for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path) as fp:
                entry = json.load(fp)
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["metrics"]

    def put(self, key: str, metrics: dict,
            meta: Optional[dict] = None) -> None:
        """Store one metric row (atomically; last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "metrics": metrics,
                 "code_version": code_version(), **(meta or {})}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as fp:
            json.dump(entry, fp, indent=2, default=float)
        os.replace(tmp, path)
        self.stats.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        for path in self.root.glob("*/*.json"):
            path.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ResultCache {str(self.root)!r} {self.stats.format()}>"
