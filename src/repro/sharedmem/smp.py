"""Shared-memory multiprocessor nodes (Section 4.3).

"By only using the computational model and configuring it with multiple
processors, a shared memory multiprocessor can be simulated."

The SMP node puts ``n_cpus`` CPUs on one node: each CPU has a private
(write-back) L1 — split or unified per the level-1 configuration — kept
coherent by the snoopy MSI/MESI protocol; the remaining cache levels and
the DRAM are shared behind the arbitrated bus.  Each CPU runs as a
kernel process, so bus contention and coherence traffic between CPUs
are simulated in time, not estimated.

Timing granularity: a CPU accumulates the cost of local operations
(arithmetic, L1 hits) and synchronizes with the kernel at every bus
transaction; interleaving between CPUs is therefore exact at bus-
transaction granularity (the only points where CPUs can interact).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..core.config import ConfigError, NodeConfig
from ..compmodel.bus import Bus
from ..compmodel.cache import Cache, LineState
from ..compmodel.coherence import SnoopyCoherence
from ..compmodel.directory import DirectoryCoherence
from ..compmodel.cpu import CPU
from ..compmodel.memory import DRAM
from ..operations.ops import (
    COMMUNICATION_OPS,
    OpCode,
    Operation,
)
from ..pearl import Simulator

__all__ = ["SMPNodeModel", "SMPResult", "CPUActivity"]


class CPUActivity:
    """Busy/stall breakdown for one CPU of an SMP node."""

    __slots__ = ("cpu", "busy_cycles", "mem_stall_cycles", "comm_cycles",
                 "instructions", "finish_time")

    def __init__(self, cpu: int) -> None:
        self.cpu = cpu
        self.busy_cycles = 0.0
        self.mem_stall_cycles = 0.0
        self.comm_cycles = 0.0
        self.instructions = 0
        self.finish_time = 0.0

    def summary(self) -> dict:
        return {
            "cpu": self.cpu,
            "busy_cycles": self.busy_cycles,
            "mem_stall_cycles": self.mem_stall_cycles,
            "comm_cycles": self.comm_cycles,
            "instructions": self.instructions,
            "finish_time": self.finish_time,
        }


class SMPResult:
    """Outcome of one SMP-node simulation."""

    def __init__(self, total_cycles: float, activity: list[CPUActivity],
                 coherence_summary: dict, cache_summaries: dict,
                 bus_summary: dict, memory_summary: dict,
                 clock_hz: float) -> None:
        self.total_cycles = total_cycles
        self.activity = activity
        self.coherence_summary = coherence_summary
        self.cache_summaries = cache_summaries
        self.bus_summary = bus_summary
        self.memory_summary = memory_summary
        self.clock_hz = clock_hz

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    def summary(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "seconds": self.seconds,
            "cpus": [a.summary() for a in self.activity],
            "coherence": self.coherence_summary,
            "caches": self.cache_summaries,
            "bus": self.bus_summary,
            "memory": self.memory_summary,
        }

    def __repr__(self) -> str:
        return (f"<SMPResult cycles={self.total_cycles:.0f} "
                f"cpus={len(self.activity)}>")


class SMPNodeModel:
    """A multi-CPU shared-memory node with snoopy coherence."""

    def __init__(self, cfg: NodeConfig, sim: Optional[Simulator] = None,
                 node_id: int = 0,
                 rng: Optional[np.random.Generator] = None) -> None:
        cfg.validate()
        if not cfg.cache_levels:
            raise ConfigError("an SMP node needs private L1 caches")
        self.cfg = cfg
        self.node_id = node_id
        self.sim = sim if sim is not None else Simulator()
        rng = rng if rng is not None else np.random.default_rng(node_id)
        l1 = cfg.cache_levels[0]
        prefix = f"node{node_id}"
        self.dcaches = [Cache(l1.data, f"{prefix}.cpu{c}.L1d", rng)
                        for c in range(cfg.n_cpus)]
        if l1.split:
            self.icaches = [Cache(l1.instr, f"{prefix}.cpu{c}.L1i", rng)
                            for c in range(cfg.n_cpus)]
        else:
            # Unified private L1: instruction fetches share the data cache.
            self.icaches = self.dcaches
        self.shared_caches = [Cache(lvl.data, f"{prefix}.L{i + 2}", rng)
                              for i, lvl in enumerate(cfg.cache_levels[1:])]
        fabric_ports = cfg.n_cpus if cfg.fabric == "crossbar" else 1
        self.bus = Bus(cfg.bus, self.sim, f"{prefix}.{cfg.fabric}",
                       capacity=fabric_ports)
        self.memory = DRAM(cfg.memory, f"{prefix}.memory")
        if cfg.coherence_style == "directory":
            self.coherence = DirectoryCoherence(
                self.dcaches, self.shared_caches, self.bus, self.memory,
                cfg.coherence, cfg.directory_lookup_cycles, cfg.fabric,
                sim=self.sim)
        else:
            self.coherence = SnoopyCoherence(
                self.dcaches, self.shared_caches, self.bus, self.memory,
                cfg.coherence)
        # Cost-table CPUs (no attached memsys; memory timing is ours).
        self.cpus = [CPU(cfg.cpu, None, cpu_id=c) for c in range(cfg.n_cpus)]
        self.activity = [CPUActivity(c) for c in range(cfg.n_cpus)]

    @property
    def n_cpus(self) -> int:
        return self.cfg.n_cpus

    # -- the per-CPU process -----------------------------------------------

    def cpu_process(self, cpu_id: int, ops: Iterable[Operation],
                    comm_handler: Optional[Callable] = None):
        """Kernel process executing one CPU's operation stream.

        ``comm_handler(op)`` — a generator factory — is invoked for
        communication operations (hybrid SMP-cluster mode); without it
        they are an error, as in the pure computational model.
        """
        cfg = self.cfg.cpu
        act = self.activity[cpu_id]
        coh = self.coherence
        cpu = self.cpus[cpu_id]
        dcache = self.dcaches[cpu_id]
        icache = self.icaches[cpu_id]
        sim = self.sim
        acc = 0.0
        for op in ops:
            code = op.code
            if code is OpCode.LOAD or code is OpCode.STORE:
                is_write = code is OpCode.STORE
                cpu.stats.op_counts[code] += 1
                cpu.stats.instructions += 1
                cpu.stats.memory_accesses += 1
                act.instructions += 1
                acc += (cfg.store_issue_cycles if is_write
                        else cfg.load_issue_cycles)
                addr = op.arg
                if coh.local_hit(cpu_id, addr, is_write):
                    acc += dcache.cfg.hit_cycles
                else:
                    if acc:
                        act.busy_cycles += acc
                        yield acc
                        acc = 0.0
                    t0 = sim.now
                    state = dcache.probe(addr)
                    if is_write and state is LineState.SHARED:
                        yield from coh.write_upgrade(cpu_id, addr)
                    elif is_write:
                        yield from coh.write_miss(cpu_id, addr)
                    else:
                        yield from coh.read_miss(cpu_id, addr)
                    act.mem_stall_cycles += sim.now - t0
            elif code is OpCode.IFETCH:
                cpu.stats.op_counts[code] += 1
                cpu.stats.instructions += 1
                cpu.stats.ifetches += 1
                act.instructions += 1
                addr = op.arg
                if icache.lookup(addr, is_write=False):
                    acc += icache.cfg.hit_cycles
                else:
                    if acc:
                        act.busy_cycles += acc
                        yield acc
                        acc = 0.0
                    t0 = sim.now
                    yield from self._ifetch_miss(icache, addr)
                    act.mem_stall_cycles += sim.now - t0
            elif code in COMMUNICATION_OPS:
                if comm_handler is None:
                    raise ValueError(
                        f"cpu {cpu_id}: communication operation {op!r} in an "
                        "SMP computational trace (use "
                        "repro.sharedmem.HybridArchitectureModel for "
                        "SMP clusters)")
                if acc:
                    act.busy_cycles += acc
                    yield acc
                    acc = 0.0
                t0 = sim.now
                yield from comm_handler(op)
                act.comm_cycles += sim.now - t0
            else:
                acc += cpu.op_cycles(op)
                act.instructions += 1
        if acc:
            act.busy_cycles += acc
            yield acc
        act.finish_time = sim.now

    def _ifetch_miss(self, icache: Cache, addr: int):
        """Instruction-cache miss: bus + shared levels/memory (no snoop —
        code is read-only)."""
        yield self.bus.resource.acquire()
        try:
            cycles = self.bus.cfg.arbitration_cycles
            cycles += self.coherence._fill_from_below(addr, is_write=False)
            victim = icache.insert(addr, LineState.SHARED)
            if victim is not None and victim[1].is_dirty:
                cycles += self.bus.cfg.transfer_cycles(icache.cfg.line_bytes)
                cycles += self.memory.write_cycles(icache.cfg.line_bytes)
            yield cycles
        finally:
            self.bus.resource.release()

    # -- top-level run -----------------------------------------------------------

    def run_traces(self, per_cpu_ops: Sequence[Iterable[Operation]]
                   ) -> SMPResult:
        """Simulate the SMP node driven by one op stream per CPU."""
        if len(per_cpu_ops) != self.n_cpus:
            raise ValueError(
                f"expected {self.n_cpus} op streams, got {len(per_cpu_ops)}")
        for cpu_id, ops in enumerate(per_cpu_ops):
            self.sim.process(self.cpu_process(cpu_id, iter(ops)),
                             name=f"node{self.node_id}.cpu{cpu_id}")
        self.sim.run(check_deadlock=True)
        return self.result()

    def result(self) -> SMPResult:
        caches: dict[str, dict] = {}
        for c in self.dcaches + self.shared_caches:
            caches[c.name] = c.stats.summary()
        if self.icaches is not self.dcaches:
            for c in self.icaches:
                caches[c.name] = c.stats.summary()
        return SMPResult(
            self.sim.now, self.activity, self.coherence.stats.summary(),
            caches, self.bus.summary(), self.memory.summary(),
            self.cfg.cpu.clock_hz)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SMPNodeModel node={self.node_id} cpus={self.n_cpus} "
                f"{self.cfg.coherence}>")
