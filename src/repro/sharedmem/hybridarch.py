"""Hybrid architectures: clusters of SMP nodes in a message network.

"Hybrid architectures can be modelled by both defining multiple
processors on a node and using the communication model to interconnect
the clusters of shared memory multiprocessors in a message-passing
network" (Section 4.3).

Every node is an :class:`~repro.sharedmem.smp.SMPNodeModel` (private
coherent L1s, shared bus/memory); the nodes are joined by the
:class:`~repro.commmodel.network.MultiNodeModel`.  All models share one
event kernel, so intra-node coherence traffic and inter-node messages
interleave in a single simulated timeline.  Any CPU of a node may issue
communication operations through the node's NIC.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..commmodel.network import CommResult, MultiNodeModel
from ..core.config import MachineConfig
from ..operations.ops import OpCode, Operation
from ..pearl import Simulator
from .smp import SMPNodeModel, SMPResult

__all__ = ["HybridArchitectureModel", "HybridArchResult"]


class HybridArchResult:
    """Outcome of an SMP-cluster simulation."""

    def __init__(self, comm: CommResult,
                 smp_results: list[SMPResult]) -> None:
        self.comm = comm
        self.smp_results = smp_results

    @property
    def total_cycles(self) -> float:
        return self.comm.total_cycles

    @property
    def seconds(self) -> float:
        return self.comm.seconds

    def summary(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "seconds": self.seconds,
            "network": self.comm.summary(),
            "smp_nodes": [r.summary() for r in self.smp_results],
        }

    def __repr__(self) -> str:
        return (f"<HybridArchResult cycles={self.total_cycles:.0f} "
                f"nodes={len(self.smp_results)}>")


class HybridArchitectureModel:
    """Clusters of shared-memory nodes over the interconnect."""

    def __init__(self, machine: MachineConfig,
                 sim: Optional[Simulator] = None) -> None:
        machine.validate()
        self.machine = machine
        self.network = MultiNodeModel(machine, sim)
        self.smp_nodes = [
            SMPNodeModel(machine.node, sim=self.network.sim, node_id=i)
            for i in range(self.network.n_nodes)]

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def n_nodes(self) -> int:
        return self.network.n_nodes

    @property
    def n_cpus_per_node(self) -> int:
        return self.machine.node.n_cpus

    # -- communication plumbing -------------------------------------------

    def _comm_handler(self, node_id: int):
        """Generator factory handling a CPU's communication operations."""
        nic = self.network.nics[node_id]
        act = self.network.activity[node_id]

        def handler(op: Operation):
            act.ops_processed += 1
            code = op.code
            if code is OpCode.COMPUTE:
                act.compute_cycles += op.arg2
                yield op.arg2
            elif code is OpCode.SEND:
                t0 = self.sim.now
                yield from nic.send(op.peer, op.size)
                act.send_wait_cycles += self.sim.now - t0
            elif code is OpCode.ASEND:
                t0 = self.sim.now
                yield from nic.asend(op.peer, op.size)
                act.overhead_cycles += self.sim.now - t0
            elif code is OpCode.RECV:
                t0 = self.sim.now
                yield from nic.recv(op.peer)
                act.recv_wait_cycles += self.sim.now - t0
            elif code is OpCode.ARECV:
                t0 = self.sim.now
                yield from nic.arecv(op.peer)
                act.overhead_cycles += self.sim.now - t0
            else:
                raise ValueError(f"unexpected operation {op!r}")
        return handler

    # -- top-level run ---------------------------------------------------------

    def run_traces(self,
                   per_node_per_cpu_ops: Sequence[Sequence[Iterable[Operation]]]
                   ) -> HybridArchResult:
        """Simulate: one op stream per (node, cpu).

        Streams may mix computational operations (timed by the SMP
        model) and communication operations (routed through the node's
        NIC into the network).
        """
        if len(per_node_per_cpu_ops) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} node entries, got "
                f"{len(per_node_per_cpu_ops)}")
        for node_id, cpu_streams in enumerate(per_node_per_cpu_ops):
            if len(cpu_streams) != self.n_cpus_per_node:
                raise ValueError(
                    f"node {node_id}: expected {self.n_cpus_per_node} CPU "
                    f"streams, got {len(cpu_streams)}")
            smp = self.smp_nodes[node_id]
            handler = self._comm_handler(node_id)
            for cpu_id, ops in enumerate(cpu_streams):
                self.sim.process(
                    smp.cpu_process(cpu_id, iter(ops), comm_handler=handler),
                    name=f"node{node_id}.cpu{cpu_id}")
        self.sim.run(check_deadlock=True)
        for node_id in range(self.n_nodes):
            self.network.activity[node_id].finish_time = self.sim.now
        return HybridArchResult(
            self.network.result(),
            [smp.result() for smp in self.smp_nodes])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<HybridArchitectureModel nodes={self.n_nodes} "
                f"cpus/node={self.n_cpus_per_node}>")
