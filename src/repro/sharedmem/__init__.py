"""``repro.sharedmem`` — shared-memory and hybrid architectures (Sec 4.3).

Multi-CPU nodes with snoopy-coherent private caches (SMP), and clusters
of such nodes joined by the message-passing communication model.
"""

from .hybridarch import HybridArchitectureModel, HybridArchResult
from .smp import CPUActivity, SMPNodeModel, SMPResult

__all__ = ["CPUActivity", "HybridArchResult", "HybridArchitectureModel",
           "SMPNodeModel", "SMPResult"]
