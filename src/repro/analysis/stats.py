"""Post-processing statistics helpers for simulation output."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..pearl import TallyMonitor

__all__ = ["histogram", "percentiles", "speedup_table", "geometric_mean"]


def histogram(monitor: TallyMonitor, bins: int = 10
              ) -> list[tuple[float, float, int]]:
    """Histogram of a sample-keeping monitor: (lo, hi, count) rows."""
    if monitor.samples is None:
        raise ValueError(
            f"monitor {monitor.name!r} was created without keep_samples")
    if not monitor.samples:
        return []
    counts, edges = np.histogram(np.asarray(monitor.samples), bins=bins)
    return [(float(edges[i]), float(edges[i + 1]), int(counts[i]))
            for i in range(len(counts))]


def percentiles(monitor: TallyMonitor,
                qs: Sequence[float] = (50, 90, 99)) -> dict[float, float]:
    """Percentiles of a sample-keeping monitor."""
    if monitor.samples is None:
        raise ValueError(
            f"monitor {monitor.name!r} was created without keep_samples")
    if not monitor.samples:
        return {q: 0.0 for q in qs}
    arr = np.asarray(monitor.samples)
    return {q: float(np.percentile(arr, q)) for q in qs}


def speedup_table(times_by_nodes: dict[int, float]) -> list[dict]:
    """Speedup/efficiency rows from {n_nodes: simulated_time}.

    The baseline is the smallest node count present.
    """
    if not times_by_nodes:
        return []
    base_n = min(times_by_nodes)
    base_t = times_by_nodes[base_n]
    rows = []
    for n in sorted(times_by_nodes):
        t = times_by_nodes[n]
        speedup = base_t * base_n / t if t > 0 else math.inf
        rows.append({
            "nodes": n,
            "time": t,
            "speedup": speedup,
            "efficiency": speedup / n,
        })
    return rows


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the customary average for slowdowns/speedups)."""
    arr = np.asarray([v for v in values if v > 0], dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))
