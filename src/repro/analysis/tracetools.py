"""Trace inspection tools — post-mortem analysis of operation traces.

Mermaid's toolbox included post-mortem analysis of simulation artefacts;
these helpers do the same for traces: human-readable dumps, summary
profiles, and structural comparison of two trace sets (e.g. recorded vs
regenerated, or two application variants).
"""

from __future__ import annotations

from typing import Optional, TextIO

from ..operations.ops import (
    ARITHMETIC_OPS,
    COMMUNICATION_OPS,
    CONTROL_OPS,
    MEMORY_OPS,
    OpCode,
)
from ..operations.trace import Trace, TraceSet

__all__ = ["dump_trace", "trace_profile", "trace_set_profile",
           "compare_trace_sets"]


def dump_trace(trace: Trace, fp: TextIO, limit: Optional[int] = None) -> int:
    """Write one operation per line; returns the number written."""
    written = 0
    for i, op in enumerate(trace):
        if limit is not None and i >= limit:
            fp.write(f"... ({len(trace) - limit} more)\n")
            break
        fp.write(f"{i:8d}  {op!r}\n")
        written += 1
    return written


def trace_profile(trace: Trace) -> dict:
    """Category-level profile of one node's trace."""
    hist = trace.op_histogram()

    def count(codes) -> int:
        return sum(n for c, n in hist.items() if c in codes)

    total = len(trace)
    memory = count(MEMORY_OPS)
    arith = count(ARITHMETIC_OPS)
    control = count(CONTROL_OPS)
    comm = count(COMMUNICATION_OPS)
    ifetches = hist.get(OpCode.IFETCH, 0)
    unique_fetch = len({op.address for op in trace
                        if op.code is OpCode.IFETCH})
    return {
        "node": trace.node,
        "ops": total,
        "memory": memory,
        "arithmetic": arith,
        "control": control,
        "communication": comm,
        "bytes_sent": trace.bytes_sent,
        "loop_reuse": (ifetches / unique_fetch) if unique_fetch else 0.0,
    }


def trace_set_profile(traces: TraceSet) -> list[dict]:
    """Per-node profiles plus a totals row."""
    rows = [trace_profile(t) for t in traces]
    total = {"node": "all"}
    for key in ("ops", "memory", "arithmetic", "control", "communication",
                "bytes_sent"):
        total[key] = sum(r[key] for r in rows)
    total["loop_reuse"] = (sum(r["loop_reuse"] for r in rows)
                           / len(rows)) if rows else 0.0
    return rows + [total]


def compare_trace_sets(a: TraceSet, b: TraceSet,
                       label_a: str = "a", label_b: str = "b") -> dict:
    """Structural diff of two trace sets.

    Returns per-op-code count deltas and the first differing position
    per node (None if prefix-equal), for regression analysis of trace
    generators.
    """
    if len(a) != len(b):
        return {"node_count": (len(a), len(b)), "comparable": False}
    hist_a = a.op_histogram()
    hist_b = b.op_histogram()
    codes = set(hist_a) | set(hist_b)
    deltas = {code.name.lower(): hist_b.get(code, 0) - hist_a.get(code, 0)
              for code in sorted(codes)
              if hist_b.get(code, 0) != hist_a.get(code, 0)}
    first_diff: dict[int, Optional[int]] = {}
    for ta, tb in zip(a, b):
        pos = None
        for i, (oa, ob) in enumerate(zip(ta, tb)):
            if oa != ob:
                pos = i
                break
        if pos is None and len(ta) != len(tb):
            pos = min(len(ta), len(tb))
        first_diff[ta.node] = pos
    return {
        "comparable": True,
        "identical": not deltas and all(v is None
                                        for v in first_diff.values()),
        "count_deltas": deltas,
        "first_difference": first_diff,
        "total_ops": {label_a: a.total_ops, label_b: b.total_ops},
    }
