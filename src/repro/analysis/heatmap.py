"""Link-utilization heatmaps — network visualization, text rendered.

For grid-shaped topologies the per-link utilizations of a
:class:`~repro.commmodel.CommResult` render as a 2-D map with the
horizontal/vertical link loads between node cells; for arbitrary
topologies a ranked table is produced.  The headless stand-in for
Mermaid's network-load visualization.
"""

from __future__ import annotations

from typing import Optional

from ..commmodel.network import CommResult
from ..topology import Topology, build_topology
from .report import format_table

__all__ = ["link_utilization_grid", "top_links"]

#: glyphs from cold to hot.
_SHADES = " .:-=+*#%@"


def _shade(value: float, vmax: float) -> str:
    if vmax <= 0:
        return _SHADES[0]
    idx = min(int(value / vmax * (len(_SHADES) - 1) + 0.5),
              len(_SHADES) - 1)
    return _SHADES[idx]


def link_utilization_grid(result: CommResult,
                          topology: Optional[Topology] = None) -> str:
    """Render per-link utilization.

    For 2-D meshes/tori: a grid where ``[ n]`` cells are nodes, the
    glyph pairs between them are the two directed links' loads.  Other
    topologies fall back to :func:`top_links`.
    """
    topo = topology if topology is not None else build_topology(
        result.machine.network.topology)
    util = {tuple(map(int, k.split("->"))): v
            for k, v in result.link_utilization.items()}
    vmax = max(util.values(), default=0.0)
    if topo.kind not in ("mesh", "torus") or len(topo.dims) != 2:
        return top_links(result)
    rows_n, cols_n = topo.dims
    index = {c: i for i, c in enumerate(topo.coords)}
    lines = [f"link utilization (max={vmax:.2%}, scale '{_SHADES}'):"]
    for x in range(rows_n):
        # node row: [ id ] with horizontal link glyphs between columns.
        cells = []
        for y in range(cols_n):
            node = index[(x, y)]
            cells.append(f"[{node:3d}]")
            if y + 1 < cols_n:
                right = index[(x, y + 1)]
                fwd = _shade(util.get((node, right), 0.0), vmax)
                bwd = _shade(util.get((right, node), 0.0), vmax)
                cells.append(f"{fwd}{bwd}")
        lines.append(" ".join(cells))
        if x + 1 < rows_n:
            # vertical links row.
            cells = []
            for y in range(cols_n):
                node = index[(x, y)]
                down = index[(x + 1, y)]
                fwd = _shade(util.get((node, down), 0.0), vmax)
                bwd = _shade(util.get((down, node), 0.0), vmax)
                cells.append(f" {fwd}{bwd}  ")
                if y + 1 < cols_n:
                    cells.append("  ")
            lines.append(" ".join(cells))
    return "\n".join(lines)


def top_links(result: CommResult, limit: int = 10) -> str:
    """Ranked table of the hottest links."""
    rows = sorted(
        ({"link": k, "utilization": v}
         for k, v in result.link_utilization.items()),
        key=lambda r: -r["utilization"])[:limit]
    return format_table(rows, title=f"top {limit} links by utilization:")
