"""``repro.analysis`` — visualization and analysis tools (Fig 1).

Slowdown measurement (the paper's Section-6 metric), timeline recording
with text Gantt rendering, statistics post-processing, and text reports.
"""

from .heatmap import link_utilization_grid, top_links
from .report import comm_report, format_table, node_report, smp_report
from .slowdown import SlowdownMeasurement, SlowdownMeter
from .stats import geometric_mean, histogram, percentiles, speedup_table
from .timeline import TimelineRecorder, render_gantt
from .tracetools import (
    compare_trace_sets,
    dump_trace,
    trace_profile,
    trace_set_profile,
)

__all__ = [
    "SlowdownMeasurement", "SlowdownMeter", "TimelineRecorder",
    "comm_report", "compare_trace_sets", "dump_trace", "format_table",
    "geometric_mean", "histogram", "link_utilization_grid",
    "node_report", "percentiles",
    "render_gantt", "smp_report", "speedup_table", "top_links",
    "trace_profile",
    "trace_set_profile",
]
