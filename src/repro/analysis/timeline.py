"""Timeline recording and rendering — the visualization substrate.

Mermaid provided "a suite of tools ... to visualize and analyze the
simulation output.  Visualization of simulation data can be performed
both at run-time and post-mortem."  Headless reproduction: a
:class:`TimelineRecorder` captures state intervals per entity while the
simulation runs (run-time observers may subscribe) and renders them
post-mortem as a text Gantt chart or CSV export.
"""

from __future__ import annotations

from typing import Callable, Optional, TextIO

from ..pearl import Simulator

__all__ = ["TimelineRecorder", "render_gantt"]

#: Characters used for the Gantt rendering, by state name.
_STATE_GLYPHS = {
    "compute": "#",
    "busy": "#",
    "send": ">",
    "send_wait": ">",
    "recv": "<",
    "recv_wait": "<",
    "overhead": "o",
    "mem_stall": "m",
    "idle": ".",
}


class TimelineRecorder:
    """Records (entity, state, start, end) intervals in simulated time.

    Usage: call ``mark(entity, state)`` at every state change; the
    previous state of that entity is closed at the current simulation
    time.  ``finish()`` closes all open intervals.  Run-time observers
    registered with :meth:`subscribe` are called at each mark — the
    run-time-visualization hook.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.intervals: list[tuple[str, str, float, float]] = []
        self._open: dict[str, tuple[str, float]] = {}
        self._observers: list[Callable[[float, str, str], None]] = []

    def subscribe(self, observer: Callable[[float, str, str], None]) -> None:
        """Register a run-time observer called as ``observer(t, entity,
        state)`` at every mark."""
        self._observers.append(observer)

    def mark(self, entity: str, state: str) -> None:
        now = self.sim.now
        prev = self._open.get(entity)
        if prev is not None:
            prev_state, start = prev
            if now > start:
                self.intervals.append((entity, prev_state, start, now))
        self._open[entity] = (state, now)
        for obs in self._observers:
            obs(now, entity, state)

    def finish(self) -> None:
        now = self.sim.now
        for entity, (state, start) in self._open.items():
            if now > start:
                self.intervals.append((entity, state, start, now))
        self._open.clear()

    # -- post-mortem exports ------------------------------------------------

    def entities(self) -> list[str]:
        seen: dict[str, None] = {}
        for entity, _, _, _ in self.intervals:
            seen.setdefault(entity)
        return list(seen)

    def to_csv(self, fp: TextIO) -> None:
        fp.write("entity,state,start,end\n")
        for entity, state, start, end in self.intervals:
            fp.write(f"{entity},{state},{start:.6g},{end:.6g}\n")

    def state_totals(self, entity: str) -> dict[str, float]:
        """Total simulated time per state for one entity."""
        totals: dict[str, float] = {}
        for ent, state, start, end in self.intervals:
            if ent == entity:
                totals[state] = totals.get(state, 0.0) + (end - start)
        return totals


def render_gantt(recorder: TimelineRecorder, width: int = 72,
                 until: Optional[float] = None) -> str:
    """Text Gantt chart: one row per entity, one glyph per time bucket.

    Each bucket shows the state occupying the most time within it.
    """
    intervals = recorder.intervals
    if not intervals:
        return "(empty timeline)"
    horizon = until if until is not None else max(e for _, _, _, e in intervals)
    if horizon <= 0:
        return "(empty timeline)"
    bucket = horizon / width
    rows = []
    for entity in recorder.entities():
        # occupancy[b][state] = time of `state` within bucket b.
        occupancy: list[dict[str, float]] = [{} for _ in range(width)]
        for ent, state, start, end in intervals:
            if ent != entity:
                continue
            b0 = min(int(start / bucket), width - 1)
            b1 = min(int((end - 1e-12) / bucket), width - 1)
            for b in range(b0, b1 + 1):
                lo = max(start, b * bucket)
                hi = min(end, (b + 1) * bucket)
                if hi > lo:
                    occ = occupancy[b]
                    occ[state] = occ.get(state, 0.0) + (hi - lo)
        chars = []
        for occ in occupancy:
            if not occ:
                chars.append(" ")
            else:
                state = max(occ, key=occ.get)
                chars.append(_STATE_GLYPHS.get(state, state[0]))
        rows.append(f"{entity:<14}|{''.join(chars)}|")
    legend = "  ".join(f"{g}={s}" for s, g in
                       (("compute", "#"), ("send", ">"), ("recv", "<"),
                        ("overhead", "o"), ("idle", ".")))
    header = f"t = 0 .. {horizon:.4g} cycles ({bucket:.4g}/col)   {legend}"
    return "\n".join([header] + rows)
