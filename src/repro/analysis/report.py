"""Text reports over simulation results — the analysis-tool front end."""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["format_table", "comm_report", "node_report", "smp_report"]


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None,
                 floatfmt: str = ".4g", title: str = "") -> str:
    """Render dict rows as an aligned text table.

    Column order follows ``columns`` (default: keys of the first row).
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), max(len(row[i]) for row in rendered))
              for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def comm_report(result) -> str:
    """Human-readable summary of a :class:`~repro.commmodel.CommResult`."""
    s = result.summary()
    lat = s["message_latency"]
    lines = [
        f"machine: {s['machine']}",
        f"simulated time: {s['total_cycles']:.0f} cycles "
        f"({s['seconds'] * 1e3:.4g} ms)",
        f"messages: {s['engine']['messages_delivered']} delivered, "
        f"latency mean={lat['mean']:.4g} min={lat['min']:.4g} "
        f"max={lat['max']:.4g} cycles",
        f"parallel efficiency: {s['parallel_efficiency']:.2%}",
    ]
    node_rows = [{
        "node": a["node"],
        "compute": a["compute_cycles"],
        "send_wait": a["send_wait_cycles"],
        "recv_wait": a["recv_wait_cycles"],
        "overhead": a["overhead_cycles"],
        "ops": a["ops_processed"],
    } for a in s["nodes"]]
    lines.append(format_table(node_rows, title="per-node activity:"))
    return "\n".join(lines)


def node_report(result) -> str:
    """Summary of a :class:`~repro.compmodel.NodeResult`."""
    lines = [
        f"cycles: {result.cycles:.0f}  instructions: {result.instructions}"
        f"  CPI: {result.cpi:.3f}  time: {result.seconds * 1e3:.4g} ms",
    ]
    caches = result.memory_summary.get("caches", {})
    rows = [{
        "cache": name,
        "accesses": c["accesses"],
        "hit_rate": c["hit_rate"],
        "evictions": c["evictions"],
        "writebacks": c["writebacks"],
    } for name, c in caches.items()]
    if rows:
        lines.append(format_table(rows, title="cache behaviour:"))
    mem = result.memory_summary.get("memory", {})
    lines.append(f"memory: {mem.get('reads', 0)} reads, "
                 f"{mem.get('writes', 0)} writes")
    return "\n".join(lines)


def smp_report(result) -> str:
    """Summary of a :class:`~repro.sharedmem.SMPResult`."""
    s = result.summary()
    lines = [
        f"simulated time: {s['total_cycles']:.0f} cycles",
        f"coherence: {s['coherence']['transactions']} bus transactions "
        f"({s['coherence']['bus_rd']} rd / {s['coherence']['bus_rdx']} rdx / "
        f"{s['coherence']['bus_upgr']} upgr), "
        f"{s['coherence']['invalidations']} invalidations, "
        f"{s['coherence']['cache_to_cache']} cache-to-cache",
    ]
    rows = [{
        "cpu": a["cpu"],
        "busy": a["busy_cycles"],
        "mem_stall": a["mem_stall_cycles"],
        "instructions": a["instructions"],
    } for a in s["cpus"]]
    lines.append(format_table(rows, title="per-CPU activity:"))
    return "\n".join(lines)
