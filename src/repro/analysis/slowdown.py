"""Slowdown measurement (Section 6).

"The slowdown is defined by the number of cycles it takes for the host
computer to simulate one cycle of the target architecture. ... a typical
slowdown of about 750 to 4,000 per processor [detailed mode]; ...
between 0.5 and 4 per processor [task level]."

:class:`SlowdownMeter` wraps a simulation run with host timing and
produces the paper's metric: host cycles per simulated target cycle per
simulated processor, plus the derived "target cycles simulated per host
second".
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["SlowdownMeter", "SlowdownMeasurement"]

#: Reference host clock used to convert host seconds to "host cycles".
#: The paper's host was a 143 MHz Ultra SPARC; any constant works because
#: slowdown comparisons divide it out — set it to your machine's clock to
#: report absolute slowdown.
DEFAULT_HOST_CLOCK_HZ = 2.0e9


class SlowdownMeasurement:
    """One slowdown data point."""

    __slots__ = ("label", "host_seconds", "target_cycles", "n_processors",
                 "host_clock_hz", "extra")

    def __init__(self, label: str, host_seconds: float, target_cycles: float,
                 n_processors: int, host_clock_hz: float,
                 extra: Optional[dict] = None) -> None:
        self.label = label
        self.host_seconds = host_seconds
        self.target_cycles = target_cycles
        self.n_processors = n_processors
        self.host_clock_hz = host_clock_hz
        self.extra = extra or {}

    @property
    def host_cycles(self) -> float:
        return self.host_seconds * self.host_clock_hz

    @property
    def slowdown(self) -> float:
        """Host cycles per simulated target cycle (whole machine)."""
        if self.target_cycles <= 0:
            return float("inf")
        return self.host_cycles / self.target_cycles

    @property
    def slowdown_per_processor(self) -> float:
        """The paper's metric: slowdown divided by simulated processors."""
        return self.slowdown / max(self.n_processors, 1)

    @property
    def target_cycles_per_host_second(self) -> float:
        """How many target cycles one host second simulates."""
        if self.host_seconds <= 0:
            return float("inf")
        return self.target_cycles / self.host_seconds

    def summary(self) -> dict:
        return {
            "label": self.label,
            "host_seconds": self.host_seconds,
            "target_cycles": self.target_cycles,
            "n_processors": self.n_processors,
            "slowdown": self.slowdown,
            "slowdown_per_processor": self.slowdown_per_processor,
            "target_cycles_per_host_second":
                self.target_cycles_per_host_second,
        }

    def __repr__(self) -> str:
        return (f"<Slowdown {self.label!r} "
                f"{self.slowdown_per_processor:.1f}/proc "
                f"({self.target_cycles_per_host_second:.3g} cyc/s)>")


class SlowdownMeter:
    """Times simulation runs and accumulates slowdown measurements."""

    def __init__(self, host_clock_hz: float = DEFAULT_HOST_CLOCK_HZ) -> None:
        self.host_clock_hz = host_clock_hz
        self.measurements: list[SlowdownMeasurement] = []

    def measure(self, label: str, n_processors: int,
                run: Callable[[], object],
                target_cycles_of: Callable[[object], float] = None,
                ) -> SlowdownMeasurement:
        """Run ``run()`` under host timing.

        ``target_cycles_of(result)`` extracts the simulated cycle count;
        by default the result's ``total_cycles`` attribute is used.
        """
        # Host-side measurement: wall time here IS the measurand.
        t0 = time.perf_counter()           # repro: noqa[PY002]
        result = run()
        host_seconds = time.perf_counter() - t0  # repro: noqa[PY002]
        if target_cycles_of is not None:
            cycles = float(target_cycles_of(result))
        else:
            cycles = float(getattr(result, "total_cycles"))
        m = SlowdownMeasurement(label, host_seconds, cycles, n_processors,
                                self.host_clock_hz)
        self.measurements.append(m)
        return m

    def format(self) -> str:
        lines = [f"{'workload':<34}{'procs':>6}{'target Mcyc':>13}"
                 f"{'host s':>9}{'slowdown/proc':>15}{'cyc/s':>12}"]
        for m in self.measurements:
            lines.append(
                f"{m.label:<34}{m.n_processors:>6}"
                f"{m.target_cycles / 1e6:>13.3f}{m.host_seconds:>9.3f}"
                f"{m.slowdown_per_processor:>15.1f}"
                f"{m.target_cycles_per_host_second:>12.3g}")
        return "\n".join(lines)
