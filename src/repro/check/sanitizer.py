"""Kernel determinism sanitizer (``KD`` rules).

The Pearl kernel breaks same-time ties with a global monotone sequence
number, so a given program always replays identically.  But a schedule
whose *outcome* depends on that tie-break is fragile: reordering two
model statements, or running the same model on a kernel with a
different tie-break rule, changes the result.  The
:class:`DeterminismSanitizer` is an opt-in hook
(:meth:`repro.pearl.kernel.Simulator.attach_sanitizer`) that records
same-timestamp conflicting operations:

* ``KD001`` — two or more ``acquire`` requests on one resource at the
  same instant where at least one had to queue: the grant order is
  decided purely by tie-breaking.
* ``KD002`` — two or more sends (or two or more receives) on one
  channel at the same instant: their FIFO order is decided purely by
  tie-breaking.

Each finding names the simulation time and the contending processes;
repeats of the same (object, processes) cluster at later instants are
deduplicated into the first finding's occurrence count rather than
re-reported.  Findings are warnings, never errors — tie-break-sensitive
schedules are legal, just worth knowing about when chasing
reproducibility.  :mod:`repro.verify` upgrades them to verdicts
(``KV0xx``) by actually exploring the alternative orderings; the
:meth:`DeterminismSanitizer.clusters` accessor is its hand-off point.
"""

from __future__ import annotations

from dataclasses import dataclass

from .diagnostics import Diagnostic, Report, Severity

__all__ = ["ContentionCluster", "DeterminismSanitizer"]


@dataclass
class ContentionCluster:
    """One deduplicated same-time contention site.

    ``procs`` lists the contending process names in operation order of
    the first occurrence; ``count`` is how many instants exhibited the
    same (object, processes) contention, ``time``/``last_time`` the
    first and last of them.
    """

    rule: str                    # "KD001" | "KD002"
    obj: str                     # resource or channel name
    kind: str                    # "acquire" | "send" | "recv"
    time: float                  # first occurrence
    procs: tuple[str, ...]       # contending process names
    count: int = 1               # instants deduplicated into this cluster
    last_time: float = 0.0       # last occurrence (set on creation)


class DeterminismSanitizer:
    """Records same-timestamp conflicting resource/channel operations.

    The kernel calls :meth:`record_resource` / :meth:`record_channel`
    on every operation (cheap: one dict update).  Conflicts are
    evaluated lazily whenever simulated time advances, so memory stays
    bounded by the widest single instant plus one
    :class:`ContentionCluster` per distinct contention site.  Call
    :meth:`finish` (or :meth:`report`) after the run to flush the final
    instant.
    """

    def __init__(self, max_findings: int = 100) -> None:
        self.max_findings = max_findings
        self.diagnostics: list[Diagnostic] = []
        self.suppressed = 0
        self.deduplicated = 0        # repeat occurrences folded into clusters
        self._time: float | None = None
        #: resource name -> [requests, queued] this instant
        self._resources: dict[str, list[int]] = {}
        #: resource name -> contending process names this instant
        self._resource_procs: dict[str, list[str]] = {}
        #: (channel name, "send" | "recv") -> process names this instant
        self._channels: dict[tuple[str, str], list[str]] = {}
        #: (rule, obj, kind, sorted procs) -> cluster, insertion-ordered
        self._clusters: dict[tuple[str, str, str, tuple[str, ...]],
                             ContentionCluster] = {}

    # -- kernel-facing hooks (hot path) ---------------------------------

    def record_resource(self, name: str, now: float, granted: bool,
                        process: str = "") -> None:
        """One ``acquire`` on resource ``name``; ``granted`` if immediate."""
        if now != self._time:
            self._flush()
            self._time = now
        entry = self._resources.get(name)
        if entry is None:
            entry = self._resources[name] = [0, 0]
            self._resource_procs[name] = []
        entry[0] += 1
        if not granted:
            entry[1] += 1
        self._resource_procs[name].append(process or "?")

    def record_channel(self, name: str, now: float, kind: str,
                       process: str = "") -> None:
        """One ``send`` or ``recv`` on channel ``name``."""
        if now != self._time:
            self._flush()
            self._time = now
        key = (name, kind)
        procs = self._channels.get(key)
        if procs is None:
            procs = self._channels[key] = []
        procs.append(process or "?")

    # -- conflict evaluation --------------------------------------------

    def _emit(self, diag: Diagnostic) -> None:
        if len(self.diagnostics) < self.max_findings:
            self.diagnostics.append(diag)
        else:
            self.suppressed += 1

    def _cluster(self, rule: str, obj: str, kind: str, t: float,
                 procs: tuple[str, ...]) -> ContentionCluster | None:
        """Register one contention instant; returns the cluster if it is
        new (i.e. a diagnostic should be emitted), else ``None``."""
        key = (rule, obj, kind, tuple(sorted(set(procs))))
        cluster = self._clusters.get(key)
        if cluster is not None:
            cluster.count += 1
            cluster.last_time = t
            self.deduplicated += 1
            return None
        cluster = ContentionCluster(rule=rule, obj=obj, kind=kind,
                                    time=t, procs=procs, last_time=t)
        self._clusters[key] = cluster
        return cluster

    def _flush(self) -> None:
        t = self._time
        if t is None:
            return
        for name, (requests, queued) in self._resources.items():
            if requests >= 2 and queued >= 1:
                procs = tuple(self._resource_procs[name])
                if self._cluster("KD001", name, "acquire", t, procs) is None:
                    continue
                self._emit(Diagnostic(
                    rule="KD001", severity=Severity.WARNING,
                    message=f"{requests} acquire(s) on resource {name!r} "
                            f"at t={t:g} by {', '.join(procs)} with "
                            f"{queued} queued: grant order depends on "
                            f"event tie-breaking",
                    subject="determinism", location=f"t={t:g}",
                    hint="stagger the requests or make the arbitration "
                         "policy explicit in the model"))
        for (name, kind), chan_procs in self._channels.items():
            if len(chan_procs) >= 2:
                procs = tuple(chan_procs)
                if self._cluster("KD002", name, kind, t, procs) is None:
                    continue
                self._emit(Diagnostic(
                    rule="KD002", severity=Severity.WARNING,
                    message=f"{len(procs)} {kind}(s) on channel {name!r} "
                            f"at t={t:g} by {', '.join(procs)}: their "
                            f"FIFO order depends on event tie-breaking",
                    subject="determinism", location=f"t={t:g}"))
        self._resources.clear()
        self._resource_procs.clear()
        self._channels.clear()

    # -- results ---------------------------------------------------------

    def finish(self) -> list[Diagnostic]:
        """Flush the final instant and return all findings."""
        self._flush()
        self._time = None
        return list(self.diagnostics)

    def clusters(self) -> list[ContentionCluster]:
        """All contention clusters observed so far, in discovery order.

        Flushes the pending instant first.  This is the hand-off to
        :mod:`repro.verify`: each cluster is a candidate choice point
        whose process orderings the explorer permutes.
        """
        self._flush()
        self._time = None
        return list(self._clusters.values())

    def report(self, subject: str = "determinism") -> Report:
        """All findings as a :class:`Report` (never failing: warnings only)."""
        report = Report(subject=subject)
        report.extend(self.finish())
        repeated = [c for c in self._clusters.values() if c.count > 1]
        if repeated:
            worst = sorted(repeated, key=lambda c: -c.count)[:3]
            detail = "; ".join(
                f"{c.obj!r} x{c.count} (t={c.time:g}..{c.last_time:g})"
                for c in worst)
            report.add(Diagnostic(
                rule="KD001" if any(c.rule == "KD001" for c in repeated)
                     else "KD002",
                severity=Severity.NOTE,
                message=f"{self.deduplicated} repeat occurrence(s) across "
                        f"{len(repeated)} cluster(s) deduplicated: {detail}",
                subject=subject))
        if self.suppressed:
            report.add(Diagnostic(
                rule="KD001", severity=Severity.NOTE,
                message=f"{self.suppressed} further finding(s) suppressed "
                        f"(max_findings={self.max_findings})",
                subject=subject))
        return report
