"""Kernel determinism sanitizer (``KD`` rules).

The Pearl kernel breaks same-time ties with a global monotone sequence
number, so a given program always replays identically.  But a schedule
whose *outcome* depends on that tie-break is fragile: reordering two
model statements, or running the same model on a kernel with a
different tie-break rule, changes the result.  The
:class:`DeterminismSanitizer` is an opt-in hook
(:meth:`repro.pearl.kernel.Simulator.attach_sanitizer`) that records
same-timestamp conflicting operations:

* ``KD001`` — two or more ``acquire`` requests on one resource at the
  same instant where at least one had to queue: the grant order is
  decided purely by tie-breaking.
* ``KD002`` — two or more sends (or two or more receives) on one
  channel at the same instant: their FIFO order is decided purely by
  tie-breaking.

Findings are warnings, never errors — tie-break-sensitive schedules are
legal, just worth knowing about when chasing reproducibility.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, Report, Severity

__all__ = ["DeterminismSanitizer"]


class DeterminismSanitizer:
    """Records same-timestamp conflicting resource/channel operations.

    The kernel calls :meth:`record_resource` / :meth:`record_channel`
    on every operation (cheap: one dict update).  Conflicts are
    evaluated lazily whenever simulated time advances, so memory stays
    bounded by the widest single instant.  Call :meth:`finish` (or
    :meth:`report`) after the run to flush the final instant.
    """

    def __init__(self, max_findings: int = 100) -> None:
        self.max_findings = max_findings
        self.diagnostics: list[Diagnostic] = []
        self.suppressed = 0
        self._time: float | None = None
        #: resource name -> [requests this instant, queued this instant]
        self._resources: dict[str, list[int]] = {}
        #: (channel name, "send" | "recv") -> ops this instant
        self._channels: dict[tuple[str, str], int] = {}

    # -- kernel-facing hooks (hot path) ---------------------------------

    def record_resource(self, name: str, now: float, granted: bool) -> None:
        """One ``acquire`` on resource ``name``; ``granted`` if immediate."""
        if now != self._time:
            self._flush()
            self._time = now
        entry = self._resources.get(name)
        if entry is None:
            entry = self._resources[name] = [0, 0]
        entry[0] += 1
        if not granted:
            entry[1] += 1

    def record_channel(self, name: str, now: float, kind: str) -> None:
        """One ``send`` or ``recv`` on channel ``name``."""
        if now != self._time:
            self._flush()
            self._time = now
        key = (name, kind)
        self._channels[key] = self._channels.get(key, 0) + 1

    # -- conflict evaluation --------------------------------------------

    def _emit(self, diag: Diagnostic) -> None:
        if len(self.diagnostics) < self.max_findings:
            self.diagnostics.append(diag)
        else:
            self.suppressed += 1

    def _flush(self) -> None:
        t = self._time
        if t is None:
            return
        for name, (requests, queued) in self._resources.items():
            if requests >= 2 and queued >= 1:
                self._emit(Diagnostic(
                    rule="KD001", severity=Severity.WARNING,
                    message=f"{requests} acquire(s) on resource {name!r} "
                            f"at t={t:g} with {queued} queued: grant order "
                            f"depends on event tie-breaking",
                    subject="determinism", location=f"t={t:g}",
                    hint="stagger the requests or make the arbitration "
                         "policy explicit in the model"))
        for (name, kind), count in self._channels.items():
            if count >= 2:
                self._emit(Diagnostic(
                    rule="KD002", severity=Severity.WARNING,
                    message=f"{count} {kind}(s) on channel {name!r} at "
                            f"t={t:g}: their FIFO order depends on event "
                            f"tie-breaking",
                    subject="determinism", location=f"t={t:g}"))
        self._resources.clear()
        self._channels.clear()

    # -- results ---------------------------------------------------------

    def finish(self) -> list[Diagnostic]:
        """Flush the final instant and return all findings."""
        self._flush()
        self._time = None
        return list(self.diagnostics)

    def report(self, subject: str = "determinism") -> Report:
        """All findings as a :class:`Report` (never failing: warnings only)."""
        report = Report(subject=subject)
        report.extend(self.finish())
        if self.suppressed:
            report.add(Diagnostic(
                rule="KD001", severity=Severity.NOTE,
                message=f"{self.suppressed} further finding(s) suppressed "
                        f"(max_findings={self.max_findings})",
                subject=subject))
        return report
