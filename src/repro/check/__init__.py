"""``repro check`` — the workbench's static analyzer.

Multi-pass linting of the three artifact kinds a simulation consumes —
communication traces, machine configs, stochastic application
descriptions — plus an opt-in kernel determinism sanitizer.  A sweep
that would burn hours on a doomed variant is rejected here in
milliseconds.

Facade functions (one per artifact kind):

* :func:`check_traces` — structure, count matching, and static deadlock
  prediction over a :class:`~repro.operations.trace.TraceSet`;
* :func:`check_machine` — contract, topology reachability, routing
  validity, parameter consistency of a
  :class:`~repro.core.config.MachineConfig`;
* :func:`check_description` — stochastic-description linting of a
  :class:`~repro.tracegen.descriptions.StochasticAppDescription`;
* :func:`check_bounds` — static performance-bound analysis (``PB``
  rules) of a ``(machine, traces)`` pair via :mod:`repro.bounds`.

Each returns a :class:`Report` of :class:`Diagnostic` records (rule ids
``TR001``..., ``MC001``..., ``AD001``...; see :data:`RULES`).
:func:`ensure_ok` turns a failing report into a :class:`CheckError` for
call sites that want an exception (``Sweep.run`` pre-flight).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .description_passes import DESCRIPTION_PASSES
from .diagnostics import (
    RULE_FAMILIES,
    RULES,
    Diagnostic,
    Report,
    Severity,
    reports_to_dict,
    rule_family,
)
from .lint import (
    LINT_PASSES,
    Baseline,
    FileLint,
    LintCache,
    lint_file,
    lint_paths,
    lint_source,
)
from .machine_passes import MACHINE_PASSES
from .passes import CheckContext, CheckPass, PassManager
from .sanitizer import ContentionCluster, DeterminismSanitizer
from .trace_passes import TRACE_PASSES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import MachineConfig
    from ..operations.trace import TraceSet
    from ..tracegen.descriptions import StochasticAppDescription

__all__ = [
    "Baseline", "CheckContext", "CheckError", "CheckPass",
    "ContentionCluster", "DESCRIPTION_PASSES", "Diagnostic",
    "DeterminismSanitizer",
    "FileLint", "LINT_PASSES", "LintCache", "MACHINE_PASSES",
    "PassManager", "RULES", "RULE_FAMILIES", "Report", "Severity",
    "TRACE_PASSES", "check_bounds", "check_description", "check_machine",
    "check_traces", "ensure_ok", "lint_file", "lint_paths", "lint_source",
    "reports_to_dict", "rule_family",
]


class CheckError(ValueError):
    """An artifact failed static analysis.

    Carries the full :class:`Report`; the exception message is the
    compact one-line error summary (rule ids + messages), which is what
    sweep error rows and CLI batch output show.
    """

    def __init__(self, report: Report) -> None:
        self.report = report
        super().__init__(report.summary_message())


def check_traces(traces: "TraceSet", n_nodes: Optional[int] = None,
                 subject: str = "trace-set") -> Report:
    """Run the trace pipeline (``TR`` rules) over a trace set."""
    ctx = CheckContext(subject=subject, traces=traces, n_nodes=n_nodes)
    return PassManager(TRACE_PASSES).run(ctx)


def check_machine(machine: "MachineConfig",
                  subject: Optional[str] = None) -> Report:
    """Run the machine pipeline (``MC`` rules) over a config."""
    if subject is None:
        subject = f"machine:{machine.name}"
    ctx = CheckContext(subject=subject, machine=machine)
    return PassManager(MACHINE_PASSES).run(ctx)


def check_description(description: "StochasticAppDescription",
                      n_nodes: Optional[int] = None,
                      subject: Optional[str] = None) -> Report:
    """Run the description pipeline (``AD`` rules) over a description."""
    if subject is None:
        subject = f"description:{description.name}"
    ctx = CheckContext(subject=subject, description=description,
                       n_nodes=n_nodes)
    return PassManager(DESCRIPTION_PASSES).run(ctx)


def check_bounds(machine: "MachineConfig", traces: "TraceSet",
                 subject: Optional[str] = None) -> Report:
    """Run the static bound pipeline (``PB`` rules) on one workload.

    The machine and trace pipelines run first as a silent pre-flight:
    their findings are *not* repeated in the returned report (those
    families belong to :func:`check_machine`/:func:`check_traces`), but
    any error among them suppresses the bound analysis, whose geometry
    they would invalidate.
    """
    from ..bounds.passes import BOUNDS_PASSES
    if subject is None:
        subject = f"bounds:{machine.name}"
    ctx = CheckContext(subject=subject, machine=machine, traces=traces,
                       n_nodes=machine.n_nodes)
    ctx.prior.extend(check_machine(machine, subject=subject))
    ctx.prior.extend(check_traces(traces, n_nodes=machine.n_nodes,
                                  subject=subject))
    return PassManager(BOUNDS_PASSES).run(ctx)


def ensure_ok(report: Report) -> Report:
    """Return ``report`` if clean, else raise :class:`CheckError`."""
    if not report.ok:
        raise CheckError(report)
    return report
