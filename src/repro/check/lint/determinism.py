"""Determinism-hazard lint pass (``PY001``–``PY003``).

The workbench's headline guarantee — a simulation is a pure function of
``(machine config, workload, code)`` — dies silently the moment model
code consults an unseeded RNG, the wall clock, or set iteration order.
These are exactly the hazards the runtime ``DeterminismSanitizer``
*cannot* see (it observes schedules, not their causes), which is why
they are caught at the source level before a sweep burns hours.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..diagnostics import Diagnostic, Severity
from ..passes import CheckContext
from .context import LintContext
from .source import iter_own_nodes

__all__ = ["DeterminismLintPass"]

#: RNG factories that are deterministic *when given a seed argument*.
_SEEDED_FACTORIES = frozenset({
    "numpy.random.default_rng", "random.Random",
    "numpy.random.PCG64", "numpy.random.PCG64DXSM",
    "numpy.random.MT19937", "numpy.random.Philox", "numpy.random.SFC64",
    "numpy.random.SeedSequence",
})

#: numpy.random names that are fine regardless of call shape.
_RNG_NEUTRAL = frozenset({
    "numpy.random.Generator",       # wraps an (already seeded) bit gen
    "numpy.random.BitGenerator",
})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Attribute calls in a loop body that count as "event emission".
_EMISSION_ATTRS = frozenset({"send", "receive", "acquire", "trigger",
                             "process"})


def _classify_rng(qualname: str, has_args: bool) -> Optional[str]:
    """A PY001 message for ``qualname()``, or None if it is fine."""
    if qualname in _RNG_NEUTRAL:
        return None
    if qualname in _SEEDED_FACTORIES:
        if has_args:
            return None
        return (f"`{qualname}()` without a seed draws OS entropy; "
                f"two runs will diverge")
    if qualname == "random.SystemRandom" or \
            qualname.startswith("random.SystemRandom."):
        return f"`{qualname}` reads OS entropy and is never reproducible"
    if qualname.startswith("numpy.random."):
        return (f"`{qualname}` uses numpy's hidden global RNG state; "
                f"results depend on call order across the whole process")
    if qualname.startswith("random."):
        return (f"`{qualname}` uses the `random` module's global state; "
                f"results depend on import and call order")
    return None


def _is_unordered_iterable(node: ast.expr) -> Optional[str]:
    """A description of ``node`` if its iteration order is unstable."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return f"`{node.func.id}(...)`"
    return None


def _body_emits_events(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _EMISSION_ATTRS:
                return True
    return False


class DeterminismLintPass:
    """PY001 unseeded RNG · PY002 wall clock · PY003 set-order events."""

    name = "lint-determinism"
    rules = ("PY001", "PY002", "PY003")
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        assert isinstance(ctx, LintContext)
        module = ctx.module
        found: list[Diagnostic] = []

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                qualname = module.resolve(node.func)
                if qualname is None:
                    continue
                has_args = bool(node.args or node.keywords)
                rng_message = _classify_rng(qualname, has_args)
                if rng_message is not None:
                    diag = ctx.lint_diag(
                        "PY001", Severity.ERROR, rng_message, node=node,
                        hint="thread a seeded generator from the config "
                             "(np.random.default_rng(seed))")
                    if diag:
                        found.append(diag)
                elif qualname in _WALL_CLOCK:
                    diag = ctx.lint_diag(
                        "PY002", Severity.ERROR,
                        f"`{qualname}()` reads the wall clock; model "
                        f"code must only see simulated time", node=node,
                        hint="use sim.now (or drop the timestamp)")
                    if diag:
                        found.append(diag)

        for func in module.functions:
            if not func.is_pearl:
                continue
            for node in iter_own_nodes(func.node):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                kind = _is_unordered_iterable(node.iter)
                if kind is None or not _body_emits_events(node.body):
                    continue
                diag = ctx.lint_diag(
                    "PY003", Severity.ERROR,
                    f"iteration over {kind} feeds event emission in "
                    f"{func.qualname}(); set order is hash-dependent",
                    node=node, scope=func.qualname,
                    hint="iterate sorted(...) for a stable order")
                if diag:
                    found.append(diag)
        return found
