"""Parsed source model for the ``repro lint`` analyzer.

One :class:`SourceModule` per linted file: the AST, the raw lines,
inline ``# repro: noqa[...]`` suppressions, an import map for resolving
dotted call names (``np.random.rand`` → ``numpy.random.rand``), and the
inventory of function definitions with generator/process classification.
Passes consume this instead of re-walking the AST from scratch.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ...pearl.introspect import (
    BLOCKING_EVENT_METHODS,
    EVENT_RETURNING_METHODS,
    SELF_CONTAINED_HOLD_METHODS,
)

__all__ = ["FunctionInfo", "SourceModule", "iter_own_nodes", "parse_module"]

#: ``# repro: noqa`` (blanket) or ``# repro: noqa[PY001, PY012]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9, ]+)\])?")

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def iter_own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef
                   ) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    A nested ``def``/``lambda``/``class`` is yielded (so a pass can see
    that it exists) but its children are not — its yields, returns and
    calls belong to the nested scope's own analysis.
    """
    stack: list[ast.AST] = list(reversed(func.body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


@dataclass
class FunctionInfo:
    """One function definition found in the module."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    is_generator: bool = False
    #: name appears inside a ``*.process(...)`` call in this module —
    #: the best static signal that the generator runs as a kernel
    #: process (rather than as a ``yield from`` sub-generator).
    is_process: bool = False
    #: at least one registration keeps the Process handle (``p =
    #: sim.process(...)``, yielded, passed on, ...) — the only ways
    #: ``proc.result`` / ``proc.terminated`` stay observable.
    process_observed: bool = False
    #: the generator plausibly runs under the pearl kernel: it is
    #: registered as a process, or its body uses the kernel API.
    #: Ordinary Python generators (yielding tuples from a topology
    #: walk, say) must not be held to process yield rules.
    is_pearl: bool = False


@dataclass
class SourceModule:
    """Everything the lint passes need to know about one file."""

    path: str                      # display path (diagnostic subject)
    source: str
    tree: ast.Module
    #: line number -> suppressed rule ids (``None`` = every rule).
    suppressions: dict[int, Optional[frozenset[str]]] = field(
        default_factory=dict)
    #: local name -> fully qualified dotted name, for imported roots.
    imports: dict[str, str] = field(default_factory=dict)
    functions: list[FunctionInfo] = field(default_factory=list)

    def is_suppressed(self, rule: str, lineno: int) -> bool:
        if lineno not in self.suppressions:
            return False
        rules = self.suppressions[lineno]
        return rules is None or rule in rules

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted name of ``node`` if it roots in an import, else None.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        a local variable (``rng.normal``) resolves to ``None``, which
        is what keeps seeded-generator *method* calls out of PY001.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])


def _collect_suppressions(source: str) -> dict[int, Optional[frozenset[str]]]:
    out: dict[int, Optional[frozenset[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        raw = match.group("rules")
        if raw is None:
            out[lineno] = None
        else:
            rules = frozenset(r.strip().upper() for r in raw.split(",")
                              if r.strip())
            # ``noqa[]`` would suppress nothing; treat as blanket.
            out[lineno] = rules or None
    return out


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds
                # ``c`` to the full dotted path.
                imports[local] = alias.name if alias.asname else \
                    alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue            # relative imports are project-local
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _function_is_generator(node: ast.FunctionDef | ast.AsyncFunctionDef
                           ) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in iter_own_nodes(node))


def _function_uses_kernel_api(node: ast.FunctionDef | ast.AsyncFunctionDef
                              ) -> bool:
    """Body evidence that a generator runs under the pearl kernel.

    Any of: a call to an event-returning kernel method
    (``.acquire``/``.send``/``.receive``/``.timeout``/...), a
    ``yield from`` of a self-contained hold (``.use``/``.using``), or a
    blocking-method call anywhere in the body.
    """
    for n in iter_own_nodes(node):
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute):
            if n.func.attr in EVENT_RETURNING_METHODS \
                    or n.func.attr in BLOCKING_EVENT_METHODS:
                return True
        if isinstance(n, ast.YieldFrom) \
                and isinstance(n.value, ast.Call) \
                and isinstance(n.value.func, ast.Attribute) \
                and n.value.func.attr in SELF_CONTAINED_HOLD_METHODS:
            return True
    return False


def _registered_names(call: ast.Call) -> Iterator[str]:
    """Generator names referenced by one ``*.process(...)`` call.

    Matches ``sim.process(worker())``, ``sim.process(worker(a, b),
    name=...)`` and ``sim.process(gen)`` — the module-local evidence
    that a generator function is registered as a kernel process.
    """
    for arg in call.args:
        target: ast.expr = arg
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, ast.Attribute):
            yield target.attr


def _collect_process_names(
        tree: ast.Module) -> tuple[frozenset[str], frozenset[str]]:
    """``(registered, observed)`` generator names.

    *registered*: the name appears in any ``*.process(...)`` call.
    *observed*: at least one of those calls keeps the returned Process
    handle (anything but a bare expression statement) — the only ways
    the process's ``result``/``terminated`` event stay reachable.
    """
    discarded_calls: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            discarded_calls.add(id(node.value))
    registered: set[str] = set()
    observed: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"):
            continue
        for name in _registered_names(node):
            registered.add(name)
            if id(node) not in discarded_calls:
                observed.add(name)
    return frozenset(registered), frozenset(observed)


def _collect_functions(tree: ast.Module) -> list[FunctionInfo]:
    registered, observed = _collect_process_names(tree)
    out: list[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                is_gen = _function_is_generator(child)
                is_process = child.name in registered
                out.append(FunctionInfo(
                    node=child, qualname=qual,
                    is_generator=is_gen,
                    is_process=is_process,
                    process_observed=child.name in observed,
                    is_pearl=is_gen and (
                        is_process or _function_uses_kernel_api(child))))
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


def parse_module(source: str, path: str) -> SourceModule:
    """Parse ``source`` into a :class:`SourceModule` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    module = SourceModule(
        path=path, source=source, tree=tree,
        suppressions=_collect_suppressions(source),
        imports=_collect_imports(tree),
        functions=_collect_functions(tree))
    return module
