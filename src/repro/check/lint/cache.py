"""Incremental result cache for ``repro lint``.

Linting is a pure function of ``(file bytes, rule set)``, so each
file's findings are cached under
``sha256(file bytes + rules version)`` where the rules version is a
:func:`~repro.parallel.cache.sources_digest` over the ``repro.check``
package — editing any analyzer source invalidates every entry, exactly
like the sweep cache's ``code_version``.  Entries store serialized
diagnostics *before* baseline filtering (baselines can change without
re-analyzing), plus the suppression count.  Layout and atomic-write
discipline follow :class:`repro.parallel.cache.ResultCache`.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Optional

from ...parallel.cache import CacheStats, sources_digest
from ..diagnostics import Diagnostic

__all__ = ["LintCache", "lint_key", "lint_rules_version"]


@lru_cache(maxsize=1)
def lint_rules_version() -> str:
    """Digest over the ``repro.check`` sources — the analyzer version."""
    return sources_digest(Path(__file__).resolve().parent.parent)


def lint_key(source_bytes: bytes, version: Optional[str] = None) -> str:
    """Cache key of one file's lint result under one rule set."""
    digest = hashlib.sha256()
    digest.update(source_bytes)
    digest.update(b"\0")
    digest.update((version if version is not None
                   else lint_rules_version()).encode())
    return digest.hexdigest()


class LintCache:
    """Directory-backed store of per-file lint findings."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[tuple[list[Diagnostic], int]]:
        """Cached ``(diagnostics, n_suppressed)``, or ``None`` on miss."""
        try:
            with open(self._path(key)) as fp:
                entry = json.load(fp)
            diags = [Diagnostic.from_dict(d)
                     for d in entry["diagnostics"]]
            suppressed = int(entry["suppressed"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return diags, suppressed

    def put(self, key: str, diagnostics: list[Diagnostic],
            suppressed: int) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "rules_version": lint_rules_version(),
            "suppressed": suppressed,
            "diagnostics": [d.to_dict() for d in diagnostics],
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as fp:
            json.dump(entry, fp, indent=2)
        os.replace(tmp, path)
        self.stats.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
