"""Process-hygiene lint pass (``PY020``–``PY021``).

Two habits that are legal Python but wrong pearl: a generator that
returns a value while every ``*.process(...)`` registration discards
the Process handle (the kernel stores return values on
``Process.result``, so a dropped handle makes the result unobservable),
and yielding the same event variable twice without rebinding it in
between (a triggered event resumes the process immediately, which
usually means the model silently skips a wait).  PY021 is a may-analysis over the function CFG:
a name is "possibly yielded" on *some* path in, and only an assignment
kills the fact.
"""

from __future__ import annotations

import ast
from typing import Optional

from ...pearl.introspect import EVENT_RETURNING_METHODS
from ..diagnostics import Diagnostic, Severity
from ..passes import CheckContext
from .cfg import CFG, CFGNode, build_cfg
from .context import LintContext
from .source import FunctionInfo, iter_own_nodes

__all__ = ["HygieneLintPass"]


def _yielded_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Yield) and isinstance(node.value, ast.Name):
        return node.value.id
    return None


def _event_bound_names(func: FunctionInfo) -> frozenset[str]:
    """Names ever assigned from an event-returning kernel call."""
    names: set[str] = set()
    for node in iter_own_nodes(func.node):
        value: Optional[ast.expr] = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            value, targets = node.value, [node.target]
        elif isinstance(node, ast.NamedExpr):
            value, targets = node.value, [node.target]
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in EVENT_RETURNING_METHODS):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _node_gens_kills(cfg_node: CFGNode) -> tuple[set[str], set[str]]:
    """(names yielded, names rebound) within one CFG node."""
    gens: set[str] = set()
    kills: set[str] = set()
    stmt = cfg_node.stmt
    if stmt is None:
        return gens, kills
    # Statement-level rebindings kill the "possibly yielded" fact.
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets: list[ast.expr] = list(stmt.targets) \
            if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            for part in ast.walk(target):
                if isinstance(part, ast.Name):
                    kills.add(part.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for part in ast.walk(stmt.target):
            if isinstance(part, ast.Name):
                kills.add(part.id)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for part in ast.walk(item.optional_vars):
                    if isinstance(part, ast.Name):
                        kills.add(part.id)
    # Yields generate; walrus targets kill.  Only scan the statement's
    # own expressions for simple statements — compound bodies are their
    # own CFG nodes, but a kill in the header (``for ev in ...``) was
    # already collected above.
    if not isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor,
                             ast.Try, ast.With, ast.AsyncWith,
                             ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
        for part in ast.walk(stmt):
            name = _yielded_name(part)
            if name is not None:
                gens.add(name)
            if isinstance(part, ast.NamedExpr) and \
                    isinstance(part.target, ast.Name):
                kills.add(part.target.id)
    return gens, kills


def _possibly_yielded_in(cfg: CFG) -> list[set[str]]:
    """Fixed point of the may-yielded analysis: for each node, the set
    of names that may already have been yielded when it executes."""
    gens_kills = [_node_gens_kills(n) for n in cfg.nodes]
    preds = cfg.preds()
    in_sets: list[set[str]] = [set() for _ in cfg.nodes]
    out_sets: list[set[str]] = [set() for _ in cfg.nodes]
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            i = node.index
            new_in: set[str] = set()
            for p in preds[i]:
                new_in |= out_sets[p]
            gens, kills = gens_kills[i]
            new_out = (new_in | gens) - kills
            if new_in != in_sets[i] or new_out != out_sets[i]:
                in_sets[i], out_sets[i] = new_in, new_out
                changed = True
    return in_sets


class HygieneLintPass:
    """PY020 process returns a value · PY021 re-yield of a stale event."""

    name = "lint-hygiene"
    rules = ("PY020", "PY021")
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        assert isinstance(ctx, LintContext)
        found: list[Diagnostic] = []
        for func in ctx.module.functions:
            if not func.is_generator:
                continue
            if func.is_process and not func.process_observed:
                self._returns(ctx, func, found)
            if func.is_pearl:
                self._reyields(ctx, func, found)
        return found

    # -- PY020: process generator returning a value ----------------------

    def _returns(self, ctx: LintContext, func: FunctionInfo,
                 found: list[Diagnostic]) -> None:
        for node in iter_own_nodes(func.node):
            if not (isinstance(node, ast.Return)
                    and node.value is not None
                    and not (isinstance(node.value, ast.Constant)
                             and node.value.value is None)):
                continue
            diag = ctx.lint_diag(
                "PY020", Severity.WARNING,
                f"{func.qualname}() returns a value but every "
                f"`.process(...)` registration discards the Process "
                f"handle; nothing can observe the result",
                node=node, scope=func.qualname,
                hint="keep the handle (`p = sim.process(...)`) and read "
                     "`p.result`, or drop the return value")
            if diag:
                found.append(diag)

    # -- PY021: yielding an event name that may already be consumed ------

    def _reyields(self, ctx: LintContext, func: FunctionInfo,
                  found: list[Diagnostic]) -> None:
        # Only *event-typed* names participate: a name somewhere bound
        # from an event-returning kernel call.  Yielding the same plain
        # number each loop iteration (a hold duration read from config)
        # is normal and must not be flagged.
        event_names = _event_bound_names(func)
        if not event_names:
            return
        # Cheap pre-filter: need at least two `yield <name>` of the
        # same event name before the fixed point is worth computing.
        counts: dict[str, int] = {}
        for node in iter_own_nodes(func.node):
            name = _yielded_name(node)
            if name is not None and name in event_names:
                counts[name] = counts.get(name, 0) + 1
        # A loop can re-reach a single yield site, so a repeated name is
        # sufficient but not necessary; the dataflow handles loops, the
        # pre-filter only skips the obviously clean common case.
        has_loop = any(isinstance(n, (ast.While, ast.For, ast.AsyncFor))
                       for n in iter_own_nodes(func.node))
        if not counts or (max(counts.values()) < 2 and not has_loop):
            return

        cfg = build_cfg(func.node)
        in_sets = _possibly_yielded_in(cfg)
        for cfg_node in cfg.nodes:
            stmt = cfg_node.stmt
            if stmt is None or isinstance(
                    stmt, (ast.If, ast.While, ast.For, ast.AsyncFor,
                           ast.Try, ast.With, ast.AsyncWith,
                           ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
                continue
            for part in ast.walk(stmt):
                name = _yielded_name(part)
                if name is None or name not in event_names \
                        or name not in in_sets[cfg_node.index]:
                    continue
                diag = ctx.lint_diag(
                    "PY021", Severity.WARNING,
                    f"{func.qualname}() may yield event `{name}` "
                    f"after it was already yielded; a triggered event "
                    f"resumes immediately instead of waiting",
                    node=part, scope=func.qualname,
                    hint=f"rebind `{name}` to a fresh event before "
                         f"yielding it again")
                if diag:
                    found.append(diag)
        return
