"""Per-function control-flow graphs over Python ASTs.

The graph is statement-granular: each simple statement (and each
control-construct *header* — an ``if``/``while`` test, a ``for`` iter,
a ``with`` item list) becomes one node.  Edges follow the usual
control-flow rules; ``finally`` bodies are *inlined* along every exit
path (normal fall-through, ``return``, ``break``/``continue`` crossing
the ``try``, and ``raise``), which is what makes the resource-leak pass
``try/finally``-aware without a separate exception lattice.  Exception
edges are approximated: every node created inside a ``try`` body gets
an edge to each handler's head.

Nodes carry their statement; :func:`node_search_exprs` yields only the
parts that belong to the node itself (headers of compound statements),
so dataflow passes never double-count a loop body through its header.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["CFG", "CFGNode", "build_cfg", "node_search_exprs"]


@dataclass
class CFGNode:
    """One statement (or synthetic entry/exit/handler-head) node."""

    index: int
    stmt: Optional[ast.stmt] = None
    succ: set[int] = field(default_factory=set)


class CFG:
    """A function's control-flow graph; node 0 = entry, node 1 = exit."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self._new(None)
        self.exit = self._new(None)

    def _new(self, stmt: Optional[ast.stmt]) -> CFGNode:
        node = CFGNode(index=len(self.nodes), stmt=stmt)
        self.nodes.append(node)
        return node

    def preds(self) -> list[set[int]]:
        """Predecessor sets, derived from the successor edges."""
        out: list[set[int]] = [set() for _ in self.nodes]
        for node in self.nodes:
            for succ in node.succ:
                out[succ].add(node.index)
        return out


@dataclass
class _LoopCtx:
    head: int                       # node to re-enter on ``continue``
    breaks: list[int] = field(default_factory=list)
    finally_depth: int = 0          # finally-stack depth at loop entry


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.loops: list[_LoopCtx] = []
        self.finals: list[list[ast.stmt]] = []

    # -- plumbing --------------------------------------------------------

    def connect(self, frontier: list[int], target: int) -> None:
        for index in frontier:
            self.cfg.nodes[index].succ.add(target)

    def seq(self, stmts: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier)
        return frontier

    def _inline_finals(self, frontier: list[int],
                       down_to: int = 0) -> list[int]:
        """Route ``frontier`` through copies of the active finally
        bodies (innermost first), stopping at stack depth ``down_to``."""
        for body in reversed(self.finals[down_to:]):
            frontier = self.seq(body, frontier)
        return frontier

    # -- statement dispatch ----------------------------------------------

    def stmt(self, s: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(s, ast.If):
            return self._if(s, frontier)
        if isinstance(s, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(s, frontier)
        if isinstance(s, ast.Try):
            return self._try(s, frontier)
        if isinstance(s, (ast.With, ast.AsyncWith)):
            node = self.cfg._new(s)
            self.connect(frontier, node.index)
            return self.seq(s.body, [node.index])
        if isinstance(s, ast.Return):
            node = self.cfg._new(s)
            self.connect(frontier, node.index)
            tail = self._inline_finals([node.index])
            self.connect(tail, self.cfg.exit.index)
            return []
        if isinstance(s, ast.Raise):
            node = self.cfg._new(s)
            self.connect(frontier, node.index)
            tail = self._inline_finals([node.index])
            self.connect(tail, self.cfg.exit.index)
            return []
        if isinstance(s, ast.Break):
            node = self.cfg._new(s)
            self.connect(frontier, node.index)
            if self.loops:
                ctx = self.loops[-1]
                tail = self._inline_finals([node.index], ctx.finally_depth)
                ctx.breaks.extend(tail)
            return []
        if isinstance(s, ast.Continue):
            node = self.cfg._new(s)
            self.connect(frontier, node.index)
            if self.loops:
                ctx = self.loops[-1]
                tail = self._inline_finals([node.index], ctx.finally_depth)
                self.connect(tail, ctx.head)
            return []
        # Simple statement (includes nested def/class headers).
        node = self.cfg._new(s)
        self.connect(frontier, node.index)
        return [node.index]

    # -- compound forms --------------------------------------------------

    def _if(self, s: ast.If, frontier: list[int]) -> list[int]:
        test = self.cfg._new(s)
        self.connect(frontier, test.index)
        out = self.seq(s.body, [test.index])
        if s.orelse:
            out += self.seq(s.orelse, [test.index])
        else:
            out.append(test.index)
        return out

    def _loop(self, s: ast.While | ast.For | ast.AsyncFor,
              frontier: list[int]) -> list[int]:
        head = self.cfg._new(s)
        self.connect(frontier, head.index)
        self.loops.append(_LoopCtx(head=head.index,
                                   finally_depth=len(self.finals)))
        body_out = self.seq(s.body, [head.index])
        self.connect(body_out, head.index)
        ctx = self.loops.pop()
        if s.orelse:
            out = self.seq(s.orelse, [head.index])
        else:
            out = [head.index]
        return out + ctx.breaks

    def _try(self, s: ast.Try, frontier: list[int]) -> list[int]:
        first_body_node = len(self.cfg.nodes)
        if s.finalbody:
            self.finals.append(s.finalbody)
        body_out = self.seq(s.body, frontier)
        if s.finalbody:
            self.finals.pop()
        body_nodes = range(first_body_node, len(self.cfg.nodes))

        if s.orelse:
            merged = self.seq(s.orelse, body_out)
        else:
            merged = list(body_out)

        for handler in s.handlers:
            head = self.cfg._new(None)
            for index in body_nodes:
                self.cfg.nodes[index].succ.add(head.index)
            if not body_nodes:      # empty try body: reachable anyway
                self.connect(frontier, head.index)
            merged += self.seq(handler.body, [head.index])

        if s.finalbody:
            merged = self.seq(s.finalbody, merged)
        return merged


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function body."""
    cfg = CFG()
    builder = _Builder(cfg)
    frontier = builder.seq(func.body, [cfg.entry.index])
    builder.connect(frontier, cfg.exit.index)
    return cfg


def node_search_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """The AST parts a dataflow pass should scan for *this* node.

    Compound statements contribute only their headers — their bodies
    are separate CFG nodes.  Nested function/class definitions
    contribute nothing (separate scopes).
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        yield from ast.walk(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from ast.walk(stmt.iter)
        yield from ast.walk(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
            if item.optional_vars is not None:
                yield from ast.walk(item.optional_vars)
    elif isinstance(stmt, ast.Try):
        return
    else:
        yield from ast.walk(stmt)
