"""The lint-specific :class:`CheckContext` subclass.

Adds the parsed :class:`~repro.check.lint.source.SourceModule` and a
diagnostic builder that applies inline ``# repro: noqa[...]``
suppressions at emission time (suppressed findings are counted, never
collected — they exist in no report, no baseline, no cache entry).
"""

from __future__ import annotations

import ast
from typing import Any, Optional

from ..diagnostics import Diagnostic
from ..passes import CheckContext
from .source import SourceModule

__all__ = ["LintContext"]


class LintContext(CheckContext):
    """Context for source-lint passes over one parsed module."""

    def __init__(self, module: SourceModule) -> None:
        super().__init__(subject=module.path)
        self.module = module
        self.suppressed = 0

    def lint_diag(self, rule: str, severity: Any, message: str,
                  node: Optional[ast.AST] = None, scope: str = "",
                  hint: str = "") -> Optional[Diagnostic]:
        """Build a diagnostic pinned to ``node``'s line, or ``None`` if
        an inline suppression covers it.

        ``message`` must stay line-number-free — baselines fingerprint
        ``(rule, subject, message)`` so findings survive unrelated
        edits that only shift lines; the line (and enclosing ``scope``)
        live in ``location``.
        """
        lineno = getattr(node, "lineno", 0) if node is not None else 0
        if lineno and self.module.is_suppressed(rule, lineno):
            self.suppressed += 1
            return None
        where = f"{scope}:" if scope else ""
        return self.diag(rule, severity, message,
                         location=f"{where}line {lineno}", hint=hint)
