"""Pearl-API misuse lint pass (``PY010``–``PY013``).

Checks how generator process code talks to the kernel: what it yields
(events, delays — nothing else), that blocking calls keep their
completion events, that every ``acquire`` reaches a ``release`` on all
paths to function exit (path-sensitive over the
:mod:`~repro.check.lint.cfg` graph, ``use()``/``try-finally`` aware),
and that literal hold durations are non-negative.  The method-name sets
come from :mod:`repro.pearl.introspect` so the linter tracks the kernel
API by construction.
"""

from __future__ import annotations

import ast
from typing import Optional

from ...pearl.introspect import (
    BLOCKING_EVENT_METHODS,
    RELEASE_METHODS,
    SELF_CONTAINED_HOLD_METHODS,
)
from ..diagnostics import Diagnostic, Severity
from ..passes import CheckContext
from .cfg import CFG, build_cfg, node_search_exprs
from .context import LintContext
from .source import FunctionInfo, iter_own_nodes

__all__ = ["PearlApiLintPass"]

#: Yielding one of these is a statically certain kernel error: the
#: dispatch loop accepts numbers, Events and None, nothing else.
_BAD_YIELD_TYPES = (ast.List, ast.Dict, ast.Set, ast.Tuple, ast.ListComp,
                    ast.DictComp, ast.SetComp, ast.GeneratorExp,
                    ast.Lambda, ast.Compare, ast.BoolOp, ast.JoinedStr)

#: Calls whose literal duration argument must be non-negative.
_DURATION_CALLS = frozenset(SELF_CONTAINED_HOLD_METHODS | {"timeout"})


def _expr_key(node: ast.expr) -> Optional[str]:
    """Dotted key of a Name/Attribute chain (``self.bus``), else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    return ".".join([node.id, *reversed(parts)])


def _negative_literal(node: ast.expr) -> bool:
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float))
            and node.operand.value > 0)


def _stmt_releases(stmt: Optional[ast.stmt], base: str) -> bool:
    if stmt is None:
        return False
    for node in node_search_exprs(stmt):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in RELEASE_METHODS \
                and _expr_key(node.func.value) == base:
            return True
    return False


def _leaks_to_exit(cfg: CFG, start: int, base: str) -> bool:
    """True if exit is reachable from ``start`` without releasing
    ``base`` — the path-sensitive half of PY012."""
    stack = list(cfg.nodes[start].succ)
    seen: set[int] = set()
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        if index == cfg.exit.index:
            return True
        if _stmt_releases(cfg.nodes[index].stmt, base):
            continue                # this path is satisfied
        stack.extend(cfg.nodes[index].succ)
    return False


class PearlApiLintPass:
    """PY010 bad yield · PY011 dropped event · PY012 leak · PY013 hold<0."""

    name = "lint-pearl-api"
    rules = ("PY010", "PY011", "PY012", "PY013")
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        assert isinstance(ctx, LintContext)
        found: list[Diagnostic] = []
        for func in ctx.module.functions:
            if not func.is_pearl:
                continue
            self._yields(ctx, func, found)
            self._dropped_events(ctx, func, found)
            self._durations(ctx, func, found)
            self._leaks(ctx, func, found)
        return found

    # -- PY010 / PY013: what a process may yield -------------------------

    def _yields(self, ctx: LintContext, func: FunctionInfo,
                found: list[Diagnostic]) -> None:
        for node in iter_own_nodes(func.node):
            if not isinstance(node, ast.Yield) or node.value is None:
                continue
            value = node.value
            bad: Optional[str] = None
            if isinstance(value, ast.Constant) and isinstance(
                    value.value, (str, bytes)):
                bad = f"a {type(value.value).__name__} constant"
            elif isinstance(value, _BAD_YIELD_TYPES):
                bad = f"a {type(value).__name__.lower()} expression"
            if bad is not None:
                diag = ctx.lint_diag(
                    "PY010", Severity.ERROR,
                    f"{func.qualname}() yields {bad}; a process may "
                    f"only yield an Event, a delay, or None",
                    node=node, scope=func.qualname,
                    hint="yield the event returned by the kernel API, "
                         "or a non-negative number to hold")
                if diag:
                    found.append(diag)
            elif _negative_literal(value):
                diag = ctx.lint_diag(
                    "PY013", Severity.ERROR,
                    f"{func.qualname}() yields a negative hold "
                    f"duration; the kernel raises SimTimeError at "
                    f"runtime", node=node, scope=func.qualname,
                    hint="hold durations must be >= 0")
                if diag:
                    found.append(diag)

    # -- PY011: blocking call whose event is discarded -------------------

    def _dropped_events(self, ctx: LintContext, func: FunctionInfo,
                        found: list[Diagnostic]) -> None:
        for node in iter_own_nodes(func.node):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr in BLOCKING_EVENT_METHODS):
                continue
            attr = node.value.func.attr
            diag = ctx.lint_diag(
                "PY011", Severity.ERROR,
                f"{func.qualname}() calls `.{attr}(...)` and discards "
                f"the result; the blocking operation's completion "
                f"event is lost", node=node, scope=func.qualname,
                hint=f"write `yield ....{attr}(...)` (or keep the "
                     f"event and yield it later)")
            if diag:
                found.append(diag)

    # -- PY013 (call form): negative literal durations -------------------

    def _durations(self, ctx: LintContext, func: FunctionInfo,
                   found: list[Diagnostic]) -> None:
        for node in iter_own_nodes(func.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DURATION_CALLS):
                continue
            if any(_negative_literal(arg) for arg in node.args):
                diag = ctx.lint_diag(
                    "PY013", Severity.ERROR,
                    f"{func.qualname}() passes a negative literal "
                    f"duration to `.{node.func.attr}(...)`",
                    node=node, scope=func.qualname,
                    hint="hold durations must be >= 0")
                if diag:
                    found.append(diag)

    # -- PY012: acquire with a release-free path to exit -----------------

    def _leaks(self, ctx: LintContext, func: FunctionInfo,
               found: list[Diagnostic]) -> None:
        acquire_sites: list[tuple[ast.Call, str]] = []
        for node in iter_own_nodes(func.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "acquire":
                base = _expr_key(node.func.value)
                if base is not None:
                    acquire_sites.append((node, base))
        if not acquire_sites:
            return

        cfg = build_cfg(func.node)
        call_to_node: dict[int, int] = {}
        for cfg_node in cfg.nodes:
            if cfg_node.stmt is None:
                continue
            for part in node_search_exprs(cfg_node.stmt):
                if isinstance(part, ast.Call):
                    call_to_node[id(part)] = cfg_node.index

        for call, base in acquire_sites:
            start = call_to_node.get(id(call))
            if start is None:
                continue            # header of a construct we skip
            if not _leaks_to_exit(cfg, start, base):
                continue
            diag = ctx.lint_diag(
                "PY012", Severity.ERROR,
                f"{func.qualname}() acquires `{base}` but a path to "
                f"function exit skips `{base}.release()`",
                node=call, scope=func.qualname,
                hint="release in a try/finally, or use the "
                     "self-contained `yield from resource.use(...)`")
            if diag:
                found.append(diag)
