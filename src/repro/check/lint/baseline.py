"""Finding baselines for ``repro lint``.

A baseline is a JSON set of finding *fingerprints* — the hash of
``(rule, subject, message)``, deliberately excluding line numbers so a
known finding survives unrelated edits that shift code around.  Linting
with ``--baseline`` splits findings into *known* (present in the file,
reported but not fatal) and *new* (absent — these gate CI).
``--update-baseline`` rewrites the file from the current findings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..diagnostics import Diagnostic, Report

__all__ = ["Baseline", "fingerprint"]

_FORMAT = "repro-lint-baseline/v1"


def fingerprint(diag: Diagnostic) -> str:
    """Stable, line-number-free identity of a finding."""
    payload = "\x1f".join((diag.rule, diag.subject, diag.message))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclass
class Baseline:
    """A set of accepted finding fingerprints, with display context."""

    #: fingerprint -> short human context ("PY001 path/to/file.py").
    entries: dict[str, str] = field(default_factory=dict)

    def __contains__(self, diag: Diagnostic) -> bool:
        return fingerprint(diag) in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_reports(cls, reports: Iterable[Report]) -> "Baseline":
        entries: dict[str, str] = {}
        for report in reports:
            for diag in report.diagnostics:
                entries[fingerprint(diag)] = \
                    f"{diag.rule} {diag.subject}"
        return cls(entries=entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != _FORMAT:
            raise ValueError(
                f"{path}: not a {_FORMAT} file "
                f"(format={data.get('format')!r})")
        raw = data.get("findings", {})
        return cls(entries={str(k): str(v) for k, v in raw.items()})

    def save(self, path: Path) -> None:
        data = {
            "format": _FORMAT,
            "findings": dict(sorted(self.entries.items())),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    def split(self, diagnostics: Iterable[Diagnostic]
              ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Partition into (new, known-from-baseline)."""
        new: list[Diagnostic] = []
        known: list[Diagnostic] = []
        for diag in diagnostics:
            (known if diag in self else new).append(diag)
        return new, known

    def stale(self, diagnostics: Iterable[Diagnostic]) -> dict[str, str]:
        """Baseline entries no current finding matched.

        A stale entry means the finding it suppressed was fixed (or its
        rule retired), but the baseline still carries the suppression —
        so the same issue could silently come back without gating CI.
        Returns ``{fingerprint: context}``; refresh the file with
        ``--update-baseline`` to drop them.
        """
        seen = {fingerprint(diag) for diag in diagnostics}
        return {fp: context for fp, context in self.entries.items()
                if fp not in seen}
