"""``repro lint`` — source-level analysis of simulation model code.

Where the rest of ``repro check`` validates *artifacts* (traces,
configs, descriptions), this package parses the *Python source* of
model and application files into ASTs, builds per-generator-function
control-flow graphs, and runs dataflow passes over them.  Three pass
families (see :data:`LINT_PASSES`):

* **determinism hazards** (``PY001``–``PY003``) — unseeded RNGs, wall
  clock reads, set-iteration order feeding event emission — the causes
  the runtime :class:`~repro.check.sanitizer.DeterminismSanitizer` can
  only observe as effects;
* **pearl-API misuse** (``PY010``–``PY013``) — yields of non-events,
  dropped completion events, acquire-without-release paths, negative
  hold durations;
* **process hygiene** (``PY020``–``PY021``) — processes returning
  values, re-yields of possibly completed events.

Infrastructure: inline ``# repro: noqa[PY0xx]`` suppressions, JSON
:class:`~repro.check.lint.baseline.Baseline` files, and an incremental
:class:`~repro.check.lint.cache.LintCache` keyed by file content and
analyzer version.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..diagnostics import Diagnostic, Report, Severity
from ..passes import CheckPass, PassManager
from .baseline import Baseline, fingerprint
from .cache import LintCache, lint_key, lint_rules_version
from .cfg import CFG, CFGNode, build_cfg, node_search_exprs
from .context import LintContext
from .determinism import DeterminismLintPass
from .hygiene import HygieneLintPass
from .pearl_api import PearlApiLintPass
from .source import FunctionInfo, SourceModule, iter_own_nodes, parse_module

__all__ = [
    "Baseline", "CFG", "CFGNode", "DeterminismLintPass", "FileLint",
    "FunctionInfo", "HygieneLintPass", "LINT_PASSES", "LintCache",
    "LintContext", "PearlApiLintPass", "SourceModule", "build_cfg",
    "fingerprint", "iter_lint_targets", "iter_own_nodes", "lint_file",
    "lint_key",
    "lint_paths", "lint_rules_version", "lint_source",
    "node_search_exprs", "parse_module",
]

#: The source-lint pipeline, in rule-id order.
LINT_PASSES: tuple[CheckPass, ...] = (
    DeterminismLintPass(),
    PearlApiLintPass(),
    HygieneLintPass(),
)


@dataclass
class FileLint:
    """One file's lint outcome: the report plus bookkeeping counters."""

    report: Report
    suppressed: int = 0
    cached: bool = False


def lint_source(source: str, path: str = "<string>") -> FileLint:
    """Lint one source string; ``path`` labels the diagnostics."""
    try:
        module = parse_module(source, path)
    except SyntaxError as exc:
        report = Report(subject=path)
        lineno = exc.lineno or 0
        report.add(Diagnostic(
            rule="PY000", severity=Severity.ERROR,
            message=f"source failed to parse: {exc.msg}",
            subject=path, location=f"line {lineno}",
            hint="fix the syntax error; no other rule can run"))
        return FileLint(report=report)
    ctx = LintContext(module)
    report = PassManager(list(LINT_PASSES)).run(ctx)
    return FileLint(report=report, suppressed=ctx.suppressed)


def lint_file(path: Path, cache: Optional[LintCache] = None,
              label: Optional[str] = None) -> FileLint:
    """Lint one file, optionally through an incremental cache.

    Cache entries hold the pre-baseline diagnostics, so changing a
    baseline never forces re-analysis.  ``label`` overrides the
    diagnostic subject (defaults to the path as given).
    """
    subject = label if label is not None else str(path)
    raw = path.read_bytes()
    key = lint_key(raw) if cache is not None else None
    if cache is not None and key is not None:
        hit = cache.get(key)
        if hit is not None:
            diags, suppressed = hit
            report = Report(subject=subject)
            report.extend(diags)
            return FileLint(report=report, suppressed=suppressed,
                            cached=True)
    result = lint_source(raw.decode("utf-8"), subject)
    if cache is not None and key is not None:
        cache.put(key, result.report.diagnostics, result.suppressed)
    return result


def iter_lint_targets(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        else:
            out.add(path)
    return sorted(out)


def lint_paths(paths: Sequence[Path],
               cache: Optional[LintCache] = None,
               baseline: Optional[Baseline] = None
               ) -> tuple[list[FileLint], list[Diagnostic]]:
    """Lint files/directories; return ``(per-file results, new findings)``.

    With a ``baseline``, "new" excludes baselined fingerprints; without
    one every finding is new.  The per-file reports always carry the
    full (unfiltered) diagnostics.
    """
    results = [lint_file(p, cache=cache) for p in iter_lint_targets(paths)]
    all_diags: list[Diagnostic] = []
    for result in results:
        all_diags.extend(result.report.diagnostics)
    if baseline is None:
        return results, all_diags
    new, _known = baseline.split(all_diags)
    return results, new
