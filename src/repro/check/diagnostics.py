"""Diagnostic vocabulary of the ``repro check`` static analyzer.

Every analyzer pass reports :class:`Diagnostic` records — structured,
machine-readable findings with a stable rule id — collected into a
:class:`Report` per checked artifact.  One vocabulary serves all four
analyzer families (traces, machine configs, application descriptions,
kernel determinism) plus the runtime deadlock reporter, so tools and
tests can filter on rule ids instead of parsing exception strings.

Rule-id families
----------------
``TR``   trace passes (structure, matching, static deadlock)
``MC``   machine-config passes (contract, topology, routing, parameters)
``AD``   application-description passes (mix, branch model, node count)
``KD``   kernel determinism sanitizer (tie-break sensitivity)
``KV``   schedule-space verification verdicts (``repro verify``)
``RT``   runtime reports (simulation deadlock details)
``PY``   source lint of model/app Python code (``repro lint``)
``PB``   static performance bounds (``repro bound`` / bound cross-checks)

This module is the one registry: every rule id any tool can emit lives
in :data:`RULES`, every family in :data:`RULE_FAMILIES`, and
``tests/test_rules_registry.py`` asserts both global uniqueness and
that no :class:`Diagnostic` construction site uses an unregistered id.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterable, Iterator, Optional

__all__ = ["Severity", "Diagnostic", "Report", "RULES", "RULE_FAMILIES",
           "rule_family", "reports_to_dict"]


class Severity(IntEnum):
    """How bad a finding is.  Only ``ERROR`` makes a report fail."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: Stable one-line description of every rule the analyzer can emit.
#: (README documents this table; ``repro check --rules`` prints it.)
RULES: dict[str, str] = {
    "TR001": "malformed operation (negative size, duration or address)",
    "TR002": "self-communication (a node sends to / receives from itself)",
    "TR003": "ghost peer (peer id outside [0, n_nodes))",
    "TR004": "unmatched communication counts between a node pair",
    "TR005": "static deadlock: cyclic wait between blocking receives",
    "TR006": "starved receive: blocks forever, no matching send in flight",
    "MC001": "machine config violates the parameter contract",
    "MC002": "topology leaves endpoint pairs unreachable",
    "MC003": "routing function produces an invalid path",
    "MC004": "suspicious parameter combination (consistency warning)",
    "AD001": "application description violates its contract",
    "AD002": "instruction-mix weight negative or not finite",
    "AD003": "branch probabilities exceed 1 (loopback + far-jump)",
    "AD004": "unreachable basic blocks (loop never advances)",
    "AD005": "communication pattern vs node count mismatch",
    "KD001": "same-time contention on a resource (tie-break sensitive)",
    "KD002": "same-time conflicting channel operations (tie-break sensitive)",
    "KV001": "confirmed race: two schedules yield different final results",
    "KV002": "contention cluster proven benign (all orderings agree)",
    "KV003": "reachable deadlock under an alternative event ordering",
    "KV004": "exploration budget exhausted (schedule frontier unexplored)",
    "RT001": "simulation deadlock: blocked process details",
    "PY000": "model source failed to parse (syntax error)",
    "PY001": "unseeded or global-state random number generator",
    "PY002": "wall-clock read in model code (time.time / datetime.now)",
    "PY003": "iteration over an unordered set feeds event emission",
    "PY010": "yield of a value that is neither an event nor a delay",
    "PY011": "blocking channel/resource call discards its completion event",
    "PY012": "resource acquired but not released on some path to exit",
    "PY013": "hold/timeout with a negative literal duration",
    "PY020": "process return value unobservable (handle discarded)",
    "PY021": "yield of an event that may already have completed",
    "PB001": "simulated cycles below the static lower bound (kernel/model "
             "bug or corrupted cache row)",
    "PB002": "link statically loaded beyond capacity (demand exceeds the "
             "task-graph critical path)",
    "PB003": "simulated-to-bound gap above threshold (machine mostly "
             "waiting; informational)",
}

#: One-line description of every rule-id family (the two-letter prefix
#: shared by related rules).  ``repro check --json`` and friends report
#: per-family counts keyed by these prefixes.
RULE_FAMILIES: dict[str, str] = {
    "TR": "trace passes (structure, matching, static deadlock)",
    "MC": "machine-config passes (contract, topology, routing, parameters)",
    "AD": "application-description passes (mix, branch model, node count)",
    "KD": "kernel determinism sanitizer (tie-break sensitivity)",
    "KV": "schedule-space verification verdicts (repro verify)",
    "RT": "runtime reports (simulation deadlock details)",
    "PY": "source lint of model/app Python code (repro lint)",
    "PB": "static performance bounds (repro bound / cross-checks)",
}


def rule_family(rule: str) -> str:
    """The family prefix of a rule id (``"PB001"`` -> ``"PB"``)."""
    return rule.rstrip("0123456789")


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding.

    ``subject`` names the checked artifact (``"trace-set"``,
    ``"machine:t805-grid-4x4"``, ...); ``location`` pins the finding
    inside it (``"node 2 op 14"``, ``"network.flit_bytes"``, ...).
    """

    rule: str
    severity: Severity
    message: str
    subject: str = ""
    location: str = ""
    hint: str = ""

    def format(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        at = f" ({self.location})" if self.location else ""
        tail = f"\n    hint: {self.hint}" if self.hint else ""
        return f"{self.severity}: {self.rule}{where} {self.message}{at}{tail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (lint-cache deserialization)."""
        return cls(rule=data["rule"],
                   severity=Severity[str(data["severity"]).upper()],
                   message=data["message"],
                   subject=data.get("subject", ""),
                   location=data.get("location", ""),
                   hint=data.get("hint", ""))


@dataclass
class Report:
    """All diagnostics one checked artifact produced.

    A report is *clean* (:attr:`ok`) when it holds no ``ERROR``-severity
    diagnostics; warnings and notes never fail a check.
    """

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "Report") -> "Report":
        self.diagnostics.extend(other.diagnostics)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, prefix: str) -> list[Diagnostic]:
        """Diagnostics whose rule id starts with ``prefix`` (e.g. ``"TR"``)."""
        return [d for d in self.diagnostics if d.rule.startswith(prefix)]

    def format(self, verbose: bool = True) -> str:
        """Human-readable rendering; one line per diagnostic."""
        head = self.subject or "report"
        if not self.diagnostics:
            return f"ok   {head}"
        status = "FAIL" if not self.ok else "warn"
        lines = [f"{status} {head}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        if verbose:
            for d in sorted(self.diagnostics,
                            key=lambda d: (-int(d.severity), d.rule)):
                lines.append("  " + d.format())
        return "\n".join(lines)

    def summary_message(self) -> str:
        """Compact one-line error summary (sweep error rows, exceptions)."""
        parts = [f"{d.rule} {d.message}" for d in self.errors]
        return "; ".join(parts) if parts else "ok"

    def to_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "n_errors": len(self.errors),
            "n_warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def reports_to_dict(reports: Iterable[Report],
                    **extra: Any) -> dict[str, Any]:
    """The one JSON schema shared by ``repro check`` and ``repro lint``.

    ``{"ok", "n_errors", "n_warnings", "rule_families",
    "reports": [Report.to_dict()...]}`` plus any command-specific
    ``extra`` keys (e.g. baseline counters).  ``ok`` follows PR-2
    semantics: only error severity fails.  ``rule_families`` counts
    findings per family prefix (only families that fired appear)::

        {"TR": {"errors": 1, "warnings": 0, "notes": 0}, ...}
    """
    materialized = list(reports)
    families: dict[str, dict[str, int]] = {}
    for report in materialized:
        for d in report.diagnostics:
            bucket = families.setdefault(
                rule_family(d.rule), {"errors": 0, "warnings": 0, "notes": 0})
            if d.severity is Severity.ERROR:
                bucket["errors"] += 1
            elif d.severity is Severity.WARNING:
                bucket["warnings"] += 1
            else:
                bucket["notes"] += 1
    out: dict[str, Any] = {
        "ok": all(r.ok for r in materialized),
        "n_errors": sum(len(r.errors) for r in materialized),
        "n_warnings": sum(len(r.warnings) for r in materialized),
        "rule_families": {k: families[k] for k in sorted(families)},
        "reports": [r.to_dict() for r in materialized],
    }
    out.update(extra)
    return out
