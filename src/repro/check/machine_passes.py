"""Machine-config analyzer passes (``MC`` rules).

A machine description that passes ``MachineConfig.validate()`` can
still be unusable: a routing strategy that cannot reach every endpoint
pair, or parameter combinations that are individually legal but
mutually absurd.  These passes reject such configs in milliseconds —
before a sweep burns hours simulating a doomed variant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .diagnostics import Diagnostic, Severity
from .passes import CheckContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.topologies import Topology

__all__ = ["MachineContractPass", "TopologyReachabilityPass",
           "RoutingValidityPass", "ParameterConsistencyPass",
           "MACHINE_PASSES"]

#: Above this endpoint count, routing validity samples pairs instead of
#: enumerating all O(n^2) of them.
_EXHAUSTIVE_ENDPOINTS = 64


def _build_topology(ctx: CheckContext) -> Optional["Topology"]:
    from ..topology import build_topology
    if ctx.machine is None:
        return None
    try:
        return build_topology(ctx.machine.network.topology)
    except Exception:
        return None        # TopologyReachabilityPass reports this


class MachineContractPass:
    """The dataclass contract: every ``validate()`` rule, as MC001."""

    name = "machine-contract"
    rules = ("MC001",)
    gating = True          # later passes need a well-formed config

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        if ctx.machine is None:
            return []
        from ..core.config import ConfigError
        try:
            ctx.machine.validate()
        except ConfigError as exc:
            return [ctx.diag("MC001", Severity.ERROR, str(exc),
                             location="validate()")]
        return []


class TopologyReachabilityPass:
    """Every endpoint pair must be connected through the interconnect."""

    name = "machine-topology"
    rules = ("MC002",)
    gating = True          # routing over a disconnected graph is moot

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        if ctx.machine is None:
            return []
        from ..core.config import ConfigError
        from ..topology import build_topology
        try:
            topo = build_topology(ctx.machine.network.topology)
        except ConfigError as exc:
            return [ctx.diag("MC002", Severity.ERROR,
                             f"topology cannot be built: {exc}",
                             location="network.topology")]
        out: list[Diagnostic] = []
        if not topo.is_connected():
            dist = topo.shortest_path_lengths(0)
            unreachable = [v for v in range(topo.n_endpoints)
                           if dist[v] < 0]
            out.append(ctx.diag(
                "MC002", Severity.ERROR,
                f"topology {topo.kind} is disconnected: endpoints "
                f"{unreachable[:8]} unreachable from endpoint 0",
                location="network.topology"))
        for node in range(topo.n_endpoints):
            if topo.degree(node) == 0 and topo.n > 1:
                out.append(ctx.diag(
                    "MC002", Severity.ERROR,
                    f"endpoint {node} has no links",
                    location=f"network.topology node {node}"))
        return out


class RoutingValidityPass:
    """The routing function must produce valid paths for endpoint pairs.

    A valid path starts at the source, ends at the destination, follows
    only existing topology links, and visits no node twice.  All pairs
    are checked up to 64 endpoints; beyond that a deterministic sample
    (every pair involving endpoints 0 and n-1, plus a stride-based
    subset) keeps the pass fast.
    """

    name = "machine-routing"
    rules = ("MC003",)
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        topo = _build_topology(ctx)
        if topo is None or ctx.machine is None:
            return []
        from ..commmodel.routing import make_routing
        from ..core.config import ConfigError
        try:
            routing = make_routing(ctx.machine.network.routing, topo)
        except ConfigError as exc:
            return [ctx.diag("MC003", Severity.ERROR,
                             f"routing cannot be constructed: {exc}",
                             location="network.routing")]
        out: list[Diagnostic] = []
        for src, dst in self._pairs(topo.n_endpoints):
            try:
                path = routing.path(src, dst)
            except Exception as exc:       # noqa: BLE001 - reported below
                out.append(ctx.diag(
                    "MC003", Severity.ERROR,
                    f"routing failed for {src}->{dst}: "
                    f"{type(exc).__name__}: {exc}",
                    location=f"route {src}->{dst}"))
                continue
            problem = self._path_problem(topo, src, dst, path)
            if problem:
                out.append(ctx.diag(
                    "MC003", Severity.ERROR,
                    f"route {src}->{dst} invalid: {problem} "
                    f"(path {path[:12]})",
                    location=f"route {src}->{dst}"))
            if len(out) >= 8:              # enough evidence; stop early
                break
        return out

    @staticmethod
    def _pairs(n: int) -> list[tuple[int, int]]:
        if n <= _EXHAUSTIVE_ENDPOINTS:
            return [(s, d) for s in range(n) for d in range(n) if s != d]
        stride = max(n // 32, 1)
        sample = sorted({0, n - 1, *range(0, n, stride)})
        return [(s, d) for s in sample for d in sample if s != d]

    @staticmethod
    def _path_problem(topo: "Topology", src: int, dst: int,
                      path: list[int]) -> str:
        if not path or path[0] != src:
            return f"does not start at source {src}"
        if path[-1] != dst:
            return f"does not end at destination {dst}"
        if len(set(path)) != len(path):
            return "revisits a node (routing loop)"
        for u, v in zip(path, path[1:]):
            if v not in topo.neighbors(u):
                return f"uses nonexistent link {u}->{v}"
        return ""


class ParameterConsistencyPass:
    """Cross-field sanity of the Table-1 latency/bandwidth parameters."""

    name = "machine-parameters"
    rules = ("MC004",)
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        if ctx.machine is None:
            return []
        net = ctx.machine.network
        node = ctx.machine.node
        out: list[Diagnostic] = []

        def warn(message: str, location: str, hint: str = "") -> None:
            out.append(ctx.diag("MC004", Severity.WARNING, message,
                                location=location, hint=hint))

        if net.flit_bytes > net.packet_bytes + net.header_bytes:
            warn(f"flit_bytes {net.flit_bytes} exceeds a whole packet "
                 f"({net.packet_bytes} payload + {net.header_bytes} "
                 f"header)", "network.flit_bytes",
                 "a packet should span at least one flit")
        if net.header_bytes >= net.packet_bytes:
            warn(f"header_bytes {net.header_bytes} >= packet_bytes "
                 f"{net.packet_bytes}: headers dominate every packet",
                 "network.header_bytes")
        if node.cpu.clock_hz > 1e11:
            warn(f"clock_hz {node.cpu.clock_hz:g} exceeds 100 GHz",
                 "node.cpu.clock_hz")
        if net.link_bandwidth > 4096:
            warn(f"link_bandwidth {net.link_bandwidth:g} bytes/cycle is "
                 f"implausibly high", "network.link_bandwidth")
        sizes = [lvl.data.size_bytes for lvl in node.cache_levels]
        for upper, lower in zip(sizes, sizes[1:]):
            if lower < upper:
                warn(f"cache level of {lower} bytes sits below a larger "
                     f"level of {upper} bytes (inverted hierarchy)",
                     "node.cache_levels")
        return out


#: The standard machine pipeline, in execution order.
MACHINE_PASSES: tuple = (MachineContractPass(), TopologyReachabilityPass(),
                         RoutingValidityPass(), ParameterConsistencyPass())
