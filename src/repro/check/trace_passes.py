"""Trace analyzer passes (``TR`` rules).

Upgrades the count-only matching check of
:mod:`repro.operations.validate` with a *positional* analysis: an
abstract execution of the communication operations that mirrors the
blocking semantics of the multi-node model (synchronous ``send`` blocks
until delivery, ``recv`` blocks until a matching message exists,
``asend``/``arecv`` never block).  When the abstract execution stalls,
the wait-for graph over the blocked nodes is built and searched for
cycles — a cycle is a deadlock the simulation *will* hit (``TR005``);
blocked nodes off every cycle are starved receives (``TR006``).

For purely synchronous traces the abstraction is exact: communication
progress is a monotone counter dataflow, so the stall result does not
depend on the order nodes are advanced in.  Traces using ``arecv``
pre-posting are matched heuristically (the NIC's "waiting receiver
beats older pre-post" arrival rule is time-dependent), so findings on
such traces are demoted to warnings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..operations.ops import OpCode
from .diagnostics import Diagnostic, Severity
from .passes import CheckContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..operations.trace import Trace

__all__ = ["TraceStructuralPass", "MatchedCountsPass", "DeadlockPass",
           "TRACE_PASSES", "structural_diagnostics"]

_SENDS = (OpCode.SEND, OpCode.ASEND)
_RECVS = (OpCode.RECV, OpCode.ARECV)


def _comm_code(op: object) -> Optional[OpCode]:
    """The op's code if it is a Table-1 communication op, else None.

    Tolerates :class:`~repro.commmodel.nic.RecvAnyEvent` extension
    objects (``code is None``) living in task-level traces.
    """
    code = getattr(op, "code", None)
    return code if isinstance(code, OpCode) else None


def structural_diagnostics(trace: "Trace", n_nodes: Optional[int],
                           subject: str = "") -> list[Diagnostic]:
    """TR001/TR002/TR003 findings for a single node's trace.

    This is the per-trace structural contract — shared with the
    backward-compatible :func:`repro.operations.validate.validate_trace`
    so both speak the same diagnostic vocabulary.
    """
    out: list[Diagnostic] = []
    node = trace.node

    def diag(rule: str, message: str, i: int) -> None:
        out.append(Diagnostic(rule=rule, severity=Severity.ERROR,
                              message=f"node {node} op {i}: {message}",
                              subject=subject,
                              location=f"node {node} op {i}"))

    for i, op in enumerate(trace):
        code = _comm_code(op)
        if code is None:
            code = getattr(op, "code", None)
        if code in _SENDS:
            if op.size < 0:
                diag("TR001", "negative size", i)
            _peer_diag(out, node, op.peer, n_nodes, i, subject)
        elif code in _RECVS:
            _peer_diag(out, node, op.peer, n_nodes, i, subject)
        elif code is OpCode.COMPUTE:
            if op.duration < 0:
                diag("TR001", "negative compute duration", i)
        elif code in (OpCode.LOAD, OpCode.STORE, OpCode.IFETCH,
                      OpCode.BRANCH, OpCode.CALL, OpCode.RET):
            if op.address < 0:
                diag("TR001", f"negative address {op.address}", i)
    return out


def _peer_diag(out: list[Diagnostic], node: int, peer: int,
               n_nodes: Optional[int], i: int, subject: str) -> None:
    if peer == node:
        out.append(Diagnostic(
            rule="TR002", severity=Severity.ERROR,
            message=f"node {node} op {i}: self-communication",
            subject=subject, location=f"node {node} op {i}"))
    elif peer < 0 or (n_nodes is not None and peer >= n_nodes):
        out.append(Diagnostic(
            rule="TR003", severity=Severity.ERROR,
            message=f"node {node} op {i}: peer {peer} out of range",
            subject=subject, location=f"node {node} op {i}"))


class TraceStructuralPass:
    """Per-operation contract: sizes, durations, addresses, peers."""

    name = "trace-structure"
    rules = ("TR001", "TR002", "TR003")
    gating = True      # matching/deadlock are meaningless on ghost peers

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        traces = ctx.traces
        if traces is None:
            return []
        n = ctx.n_nodes if ctx.n_nodes is not None else len(traces)
        out: list[Diagnostic] = []
        for t in traces:
            out.extend(structural_diagnostics(t, n, ctx.subject))
        return out


class MatchedCountsPass:
    """Count-level matching per ordered node pair (the legacy check)."""

    name = "trace-matched-counts"
    rules = ("TR004",)
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        traces = ctx.traces
        if traces is None:
            return []
        from ..operations.validate import communication_matrix
        sends, recvs = communication_matrix(traces)
        n = len(sends)
        out: list[Diagnostic] = []
        for src in range(n):
            for dst in range(n):
                if sends[src][dst] != recvs[src][dst]:
                    out.append(ctx.diag(
                        "TR004", Severity.ERROR,
                        f"unmatched communication {src}->{dst}: "
                        f"{sends[src][dst]} send(s) vs "
                        f"{recvs[src][dst]} recv(s)",
                        location=f"pair {src}->{dst}"))
        return out


class _NodeState:
    """Abstract-execution state of one node."""

    __slots__ = ("node", "ops", "pc")

    def __init__(self, node: int, ops: list) -> None:
        self.node = node
        self.ops = ops          # [(trace index, op)]
        self.pc = 0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.ops)

    @property
    def head(self):
        return self.ops[self.pc]


class DeadlockPass:
    """Abstract execution + wait-for-graph cycle detection (TR005/TR006).

    Blocking rules mirror :class:`repro.commmodel.nic.NIC`:

    * ``send``/``asend`` deposit a message for the destination and
      complete (a synchronous send waits only for network transit,
      which always terminates in a connected, deadlock-free network);
    * ``recv src`` blocks until a deposited message from ``src`` is
      available;
    * ``arecv src`` consumes an available message or pre-posts a claim
      against the next one, never blocking;
    * ``recv_any`` consumes from any listed source, blocking until one
      has a message.
    """

    name = "trace-deadlock"
    rules = ("TR005", "TR006")
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        traces = ctx.traces
        if traces is None or ctx.has_error("TR00"):
            return []
        states = [self._comm_ops(t) for t in traces]
        buffered: dict[tuple[int, int], int] = {}    # (src, dst) -> avail
        preposted: dict[tuple[int, int], int] = {}   # (src, dst) -> claims
        stats = {"prepost": False}

        progress = True
        while progress:
            progress = False
            for st in states:
                while not st.done:
                    if not self._advance(st, buffered, preposted, stats):
                        break
                    progress = True

        blocked = [st for st in states if not st.done]
        if not blocked:
            return []
        severity = Severity.WARNING if stats["prepost"] else Severity.ERROR
        return self._stall_diagnostics(ctx, blocked, severity)

    # -- abstract execution ------------------------------------------------

    @staticmethod
    def _comm_ops(trace: "Trace") -> _NodeState:
        ops = []
        for i, op in enumerate(trace):
            code = _comm_code(op)
            if code in _SENDS or code in _RECVS:
                ops.append((i, op))
            elif getattr(op, "code", None) is None and \
                    hasattr(op, "sources"):       # RecvAnyEvent extension
                ops.append((i, op))
        return _NodeState(trace.node, ops)

    def _advance(self, st: _NodeState, buffered: dict, preposted: dict,
                 stats: dict) -> bool:
        """Try to complete the head op; return True on progress."""
        _, op = st.head
        node = st.node
        code = _comm_code(op)
        if code in _SENDS:
            key = (node, op.peer)
            if preposted.get(key, 0) > 0:
                preposted[key] -= 1          # absorbed by an arecv claim
            else:
                buffered[key] = buffered.get(key, 0) + 1
            st.pc += 1
            return True
        if code is OpCode.RECV:
            key = (op.peer, node)
            if buffered.get(key, 0) > 0:
                buffered[key] -= 1
                st.pc += 1
                return True
            return False
        if code is OpCode.ARECV:
            key = (op.peer, node)
            if buffered.get(key, 0) > 0:
                buffered[key] -= 1
            else:
                preposted[key] = preposted.get(key, 0) + 1
                stats["prepost"] = True
            st.pc += 1
            return True
        # RecvAnyEvent: consume from the lowest-numbered ready source.
        for src in sorted(op.sources):
            key = (src, node)
            if buffered.get(key, 0) > 0:
                buffered[key] -= 1
                st.pc += 1
                return True
        return False

    # -- stall analysis -----------------------------------------------------

    def _waits_on(self, st: _NodeState) -> list[int]:
        """Peer node(s) the blocked head op is waiting for."""
        _, op = st.head
        code = _comm_code(op)
        if code is OpCode.RECV:
            return [op.peer]
        return sorted(getattr(op, "sources", ()))

    def _stall_diagnostics(self, ctx: CheckContext,
                           blocked: list[_NodeState],
                           severity: Severity) -> list[Diagnostic]:
        blocked_ids = {st.node for st in blocked}
        by_node = {st.node: st for st in blocked}

        # Follow one wait-for edge per node to find a cycle (prefer
        # edges that stay inside the blocked set).
        cycles: list[tuple[int, ...]] = []
        seen_cycles: set[tuple[int, ...]] = set()
        for start in sorted(blocked_ids):
            path: list[int] = []
            index: dict[int, int] = {}
            cur = start
            while cur in blocked_ids and cur not in index:
                index[cur] = len(path)
                path.append(cur)
                peers = [p for p in self._waits_on(by_node[cur])
                         if p in blocked_ids]
                if not peers:
                    break
                cur = peers[0]
            if cur in index:
                cycle = tuple(path[index[cur]:])
                lo = cycle.index(min(cycle))
                canon = cycle[lo:] + cycle[:lo]
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(canon)

        out: list[Diagnostic] = []
        on_cycle: set[int] = set()
        for cycle in cycles:
            on_cycle.update(cycle)
            where = " -> ".join(
                f"node {u} (op {by_node[u].head[0]})" for u in cycle)
            out.append(ctx.diag(
                "TR005", severity,
                f"static deadlock: cyclic wait {where} -> node {cycle[0]}",
                location=f"nodes {list(cycle)}",
                hint="every node in the cycle blocks on a receive whose "
                     "matching send comes later in the sender's trace"))
        for st in blocked:
            if st.node in on_cycle:
                continue
            i, _op = st.head
            waits = self._waits_on(st)
            stuck = [p for p in waits if p in blocked_ids]
            if stuck:
                why = f"transitively blocked behind node {stuck[0]}"
            else:
                why = "no matching send remains"
            out.append(ctx.diag(
                "TR006", severity,
                f"node {st.node} op {i}: receive from "
                f"{waits[0] if len(waits) == 1 else waits} can never "
                f"complete ({why})",
                location=f"node {st.node} op {i}"))
        return out


#: The standard trace pipeline, in execution order.
TRACE_PASSES: tuple = (TraceStructuralPass(), MatchedCountsPass(),
                       DeadlockPass())
