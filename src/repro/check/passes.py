"""The pass manager: how analyzer passes compose into a check.

A *pass* looks at one artifact (a trace set, a machine config, an
application description) through a :class:`CheckContext` and returns
:class:`~repro.check.diagnostics.Diagnostic` records.  The
:class:`PassManager` runs a pipeline of passes in order, collecting
everything into a single :class:`~repro.check.diagnostics.Report`; a
pass marked ``gating`` stops the pipeline when it produced errors (e.g.
there is no point routing over a topology whose config is malformed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Protocol, Sequence

from .diagnostics import Diagnostic, Report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import MachineConfig
    from ..operations.trace import TraceSet
    from ..tracegen.descriptions import StochasticAppDescription

__all__ = ["CheckContext", "CheckPass", "PassManager"]


class CheckContext:
    """Everything a pass may look at, plus the findings so far.

    Only the fields relevant to the artifact under analysis are set;
    passes must tolerate the others being ``None``.  ``prior`` exposes
    diagnostics already emitted by earlier passes in the pipeline, so a
    pass can skip analysis that earlier findings invalidate (the
    deadlock pass does not interpret traces with ghost peers).
    """

    def __init__(self, *, subject: str = "",
                 traces: Optional["TraceSet"] = None,
                 machine: Optional["MachineConfig"] = None,
                 description: Optional["StochasticAppDescription"] = None,
                 n_nodes: Optional[int] = None) -> None:
        self.subject = subject
        self.traces = traces
        self.machine = machine
        self.description = description
        self.n_nodes = n_nodes
        self.prior: list[Diagnostic] = []

    def has_error(self, rule_prefix: str = "") -> bool:
        """True if an earlier pass emitted an error (matching ``prefix``)."""
        from .diagnostics import Severity
        return any(d.severity is Severity.ERROR
                   and d.rule.startswith(rule_prefix) for d in self.prior)

    def diag(self, rule: str, severity: Any, message: str,
             location: str = "", hint: str = "") -> Diagnostic:
        """Build a diagnostic bound to this context's subject."""
        return Diagnostic(rule=rule, severity=severity, message=message,
                          subject=self.subject, location=location, hint=hint)


class CheckPass(Protocol):
    """One analyzer pass.

    ``rules`` declares which rule ids the pass may emit (documentation
    and test discoverability); ``gating`` stops the pipeline after this
    pass if it reported an error.
    """

    name: str
    rules: tuple[str, ...]
    gating: bool

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        """Analyze the context; return findings (possibly empty)."""
        ...  # pragma: no cover - protocol


class PassManager:
    """Run a pipeline of passes over one artifact."""

    def __init__(self, passes: Sequence[CheckPass]) -> None:
        self.passes = list(passes)

    def run(self, ctx: CheckContext) -> Report:
        report = Report(subject=ctx.subject)
        for p in self.passes:
            found = p.run(ctx)
            report.extend(found)
            ctx.prior.extend(found)
            if p.gating and any(d.severity.value >= 2 for d in found):
                break
        return report
