"""Application-description analyzer passes (``AD`` rules).

Stochastic descriptions are small but easy to mis-parameterize: the
dataclass contract only rejects values that make generation *crash*,
not ones that make it *meaningless* (a negative instruction-mix weight
with a positive total yields negative probabilities; branch
probabilities summing past 1 leave the fall-through arc with negative
mass).  These passes lint for the latter class before trace generation.
"""

from __future__ import annotations

import math

from .diagnostics import Diagnostic, Severity
from .passes import CheckContext

__all__ = ["DescriptionContractPass", "InstructionMixPass",
           "BranchModelPass", "CommunicationShapePass",
           "DESCRIPTION_PASSES"]

_MIX_FIELDS = ("load", "store", "loadc", "add", "sub", "mul", "div",
               "branch", "call", "ret")


class DescriptionContractPass:
    """The dataclass contract: every ``validate()`` rule, as AD001."""

    name = "description-contract"
    rules = ("AD001",)
    gating = True

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        if ctx.description is None:
            return []
        try:
            ctx.description.validate()
        except ValueError as exc:
            return [ctx.diag("AD001", Severity.ERROR, str(exc),
                             location="validate()")]
        return []


class InstructionMixPass:
    """Per-weight sanity the total-only contract cannot see (AD002)."""

    name = "description-mix"
    rules = ("AD002",)
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        desc = ctx.description
        if desc is None:
            return []
        out: list[Diagnostic] = []
        for fld in _MIX_FIELDS:
            w = getattr(desc.mix, fld)
            if not math.isfinite(w):
                out.append(ctx.diag(
                    "AD002", Severity.ERROR,
                    f"mix weight {fld} is {w}: not finite",
                    location=f"mix.{fld}"))
            elif w < 0:
                out.append(ctx.diag(
                    "AD002", Severity.ERROR,
                    f"mix weight {fld} is negative ({w}): normalization "
                    f"would assign it negative probability",
                    location=f"mix.{fld}",
                    hint="weights are relative frequencies; use 0 to "
                         "disable an operation class"))
        return out


class BranchModelPass:
    """Loop-model probability mass and reachability (AD003/AD004)."""

    name = "description-branches"
    rules = ("AD003", "AD004")
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        desc = ctx.description
        if desc is None:
            return []
        out: list[Diagnostic] = []
        mass = desc.loopback_prob + desc.far_jump_prob
        if mass > 1.0:
            out.append(ctx.diag(
                "AD003", Severity.ERROR,
                f"loopback_prob {desc.loopback_prob} + far_jump_prob "
                f"{desc.far_jump_prob} = {mass:g} > 1: the fall-through "
                f"branch would have negative probability",
                location="loopback_prob/far_jump_prob"))
        if desc.loopback_prob >= 1.0 and desc.far_jump_prob <= 0.0 \
                and desc.n_basic_blocks > 1:
            out.append(ctx.diag(
                "AD004", Severity.WARNING,
                f"loopback_prob is 1 with no far jumps: execution never "
                f"leaves the first basic block, so the other "
                f"{desc.n_basic_blocks - 1} block(s) are unreachable",
                location="loopback_prob",
                hint="lower loopback_prob or set n_basic_blocks=1"))
        return out


class CommunicationShapePass:
    """Communication pattern vs node count (AD005)."""

    name = "description-comm"
    rules = ("AD005",)
    gating = False

    def run(self, ctx: CheckContext) -> list[Diagnostic]:
        desc = ctx.description
        if desc is None or ctx.n_nodes is None:
            return []
        n = ctx.n_nodes
        out: list[Diagnostic] = []
        if n < 2:
            out.append(ctx.diag(
                "AD005", Severity.WARNING,
                f"communication rounds need at least 2 nodes, got {n}: "
                f"the generated workload will be compute-only",
                location="n_nodes"))
        elif n % 2 == 1:
            out.append(ctx.diag(
                "AD005", Severity.NOTE,
                f"odd node count {n}: one node idles in every "
                f"pairing round",
                location="n_nodes"))
        return out


#: The standard description pipeline, in execution order.
DESCRIPTION_PASSES: tuple = (DescriptionContractPass(), InstructionMixPass(),
                             BranchModelPass(), CommunicationShapePass())
