"""Event tracing — structured records out of a running simulation.

MGSim ships integrated event tracing as a first-class simulator
feature, and Akita's hook-based tracing (feeding the Daisen visualizer)
shows the clean pattern: components emit typed records through one
uniform instrumentation API instead of printing.  :class:`Tracer` is
that API for the Pearl kernel: attach it with
:meth:`repro.pearl.kernel.Simulator.attach_tracer` and the kernel,
channels, resources, NICs, switching engines and the hybrid scheduler
emit span/instant/counter records as the model runs.  Detached
simulations pay only a ``None`` check per operation (the same contract
as the PR-2 determinism sanitizer).

Records use the Chrome ``trace_event`` phase vocabulary (``X`` complete
span, ``i`` instant, ``C`` counter), so :meth:`Tracer.to_chrome`
produces JSON that opens directly in ``about://tracing`` or Perfetto.
Timestamps are simulated cycles, mapped 1:1 onto the viewer's
microsecond axis.

A bounded **ring-buffer mode** (``Tracer(capacity=N)``) keeps only the
last ``N`` records — long runs can stay attached without unbounded
memory; :attr:`Tracer.dropped` counts what fell off the front.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import IO, Any, Optional, Union

__all__ = ["Tracer", "TraceRecord", "validate_chrome_trace"]

#: Chrome trace_event phases this tracer emits.
SPAN = "X"
INSTANT = "i"
COUNTER = "C"
_PHASES = frozenset((SPAN, INSTANT, COUNTER))


class TraceRecord:
    """One typed trace record (a thin, slotted value object).

    ``ph`` is the Chrome phase (``X``/``i``/``C``), ``cat`` the
    component category (``kernel``, ``process``, ``channel``,
    ``resource``, ``network``, ``nic``, ``task``, ...), ``tid`` the
    track the viewer groups the record under (process name, channel
    name, resource name, ``node3``, ...).
    """

    __slots__ = ("ph", "cat", "name", "ts", "dur", "tid", "args")

    def __init__(self, ph: str, cat: str, name: str, ts: float,
                 dur: float = 0.0, tid: str = "",
                 args: Optional[dict] = None) -> None:
        self.ph = ph
        self.cat = cat
        self.name = name
        self.ts = ts
        self.dur = dur
        self.tid = tid
        self.args = args

    def to_event(self, tid_number: int) -> dict:
        """This record as one Chrome ``traceEvents`` entry."""
        event: dict[str, Any] = {
            "ph": self.ph, "cat": self.cat, "name": self.name,
            "ts": self.ts, "pid": 0, "tid": tid_number,
        }
        if self.ph == SPAN:
            event["dur"] = self.dur
        if self.ph == INSTANT:
            event["s"] = "t"        # instant scope: thread
        if self.args is not None:
            event["args"] = self.args
        return event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TraceRecord {self.ph} {self.cat}:{self.name} "
                f"t={self.ts:g} tid={self.tid!r}>")


class Tracer:
    """Collects typed trace records from an attached simulation.

    Parameters
    ----------
    capacity:
        ``None`` keeps every record; an integer keeps only the last
        ``capacity`` records (ring buffer) — :attr:`dropped` reports
        how many older records were discarded.

    The ``record_*``-style hooks below are called by the kernel and the
    model layers on the hot path; each is one tuple construction and an
    append.  The generic :meth:`span` / :meth:`instant` /
    :meth:`counter` entry points serve model code with record shapes of
    its own.
    """

    __slots__ = ("capacity", "emitted", "_records")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.emitted = 0
        self._records: Union[deque, list] = (
            deque(maxlen=capacity) if capacity is not None else [])

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Records discarded by the ring buffer (0 when unbounded)."""
        return self.emitted - len(self._records)

    def counts_by_category(self) -> dict[str, int]:
        """Retained record counts per category (reports, CLI summary)."""
        return dict(Counter(rec.cat for rec in self._records))

    def clear(self) -> None:
        self._records.clear()
        self.emitted = 0

    # -- generic emission --------------------------------------------------

    def _emit(self, rec: TraceRecord) -> None:
        self.emitted += 1
        self._records.append(rec)

    def span(self, cat: str, name: str, ts: float, dur: float,
             tid: str, args: Optional[dict] = None) -> None:
        """A complete span: ``name`` occupied ``tid`` for ``dur`` cycles."""
        self._emit(TraceRecord(SPAN, cat, name, ts, dur, tid, args))

    def instant(self, cat: str, name: str, ts: float, tid: str,
                args: Optional[dict] = None) -> None:
        """A zero-duration point event on track ``tid``."""
        self._emit(TraceRecord(INSTANT, cat, name, ts, 0.0, tid, args))

    def counter(self, ts: float, name: str, value: float,
                cat: str = "occupancy") -> None:
        """A sampled level (queue depth, buffered messages, in-use units)."""
        self._emit(TraceRecord(COUNTER, cat, name, ts, 0.0, name,
                               {"value": value}))

    # -- typed hooks (called by the kernel and the model layers) -----------

    def process_step(self, ts: float, name: str) -> None:
        """Kernel dispatched one event to process/callback ``name``."""
        self._emit(TraceRecord(INSTANT, "kernel", "step", ts, 0.0, name))

    def hold(self, ts: float, dur: float, name: str) -> None:
        """Process ``name`` holds (advances local time) for ``dur``."""
        self._emit(TraceRecord(SPAN, "process", "hold", ts, dur, name))

    def channel_send(self, ts: float, channel: str) -> None:
        self._emit(TraceRecord(INSTANT, "channel", "send", ts, 0.0, channel))

    def channel_recv(self, ts: float, channel: str) -> None:
        self._emit(TraceRecord(INSTANT, "channel", "recv", ts, 0.0, channel))

    def resource_acquire(self, ts: float, resource: str, granted: bool,
                         in_use: int) -> None:
        """One acquire on ``resource`` (queued when not ``granted``),
        plus the resulting occupancy level."""
        self._emit(TraceRecord(INSTANT, "resource",
                               "acquire" if granted else "enqueue",
                               ts, 0.0, resource))
        self._emit(TraceRecord(COUNTER, "resource", resource, ts, 0.0,
                               resource, {"value": in_use}))

    def resource_release(self, ts: float, resource: str,
                         in_use: int) -> None:
        self._emit(TraceRecord(INSTANT, "resource", "release", ts, 0.0,
                               resource))
        self._emit(TraceRecord(COUNTER, "resource", resource, ts, 0.0,
                               resource, {"value": in_use}))

    def task_boundary(self, ts: float, tid: str, label: str,
                      args: Optional[dict] = None) -> None:
        """A task-level operation boundary in the hybrid model."""
        self._emit(TraceRecord(INSTANT, "task", label, ts, 0.0, tid, args))

    def fault(self, ts: float, kind: str, tid: str,
              args: Optional[dict] = None) -> None:
        """A fault-injection event (``drop``, ``corrupt``, ``down_wait``,
        ``nic_stall``, ``node_pause``, ``retransmit``,
        ``fallback_route``, ``delivery_failed``) on track ``tid``."""
        self._emit(TraceRecord(INSTANT, "faults", kind, ts, 0.0, tid, args))

    # -- Chrome trace_event export ----------------------------------------

    def to_chrome(self) -> dict:
        """The retained records as a Chrome ``trace_event`` document.

        Tracks (``tid`` strings) are numbered in first-appearance order
        and named via ``thread_name`` metadata events, so the viewer
        shows ``node0``, ``link0->1/vc0``, ... instead of bare numbers.
        """
        tids: dict[str, int] = {}
        events = []
        for rec in self._records:
            number = tids.get(rec.tid)
            if number is None:
                number = tids[rec.tid] = len(tids)
            events.append(rec.to_event(number))
        metadata = [
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": number,
             "args": {"name": name}}
            for name, number in tids.items()]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.observe.Tracer",
                "time_unit": "simulated cycles (1 cycle = 1 us on the "
                             "viewer axis)",
                "records": len(self._records),
                "dropped": self.dropped,
            },
        }

    def export_chrome(self, destination: Union[str, IO[str]]) -> dict:
        """Write :meth:`to_chrome` JSON to a path or file object.

        Returns the exported document (handy for summaries/tests).
        """
        doc = self.to_chrome()
        if hasattr(destination, "write"):
            json.dump(doc, destination, indent=1, sort_keys=True)
        else:
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = self.capacity if self.capacity is not None else "inf"
        return (f"<Tracer records={len(self._records)} cap={cap} "
                f"dropped={self.dropped}>")


def validate_chrome_trace(doc: dict) -> dict[str, int]:
    """Validate a Chrome ``trace_event`` document (JSON-object format).

    Checks the structural contract the viewers rely on: a
    ``traceEvents`` list whose entries carry ``ph``/``name``/``pid``/
    ``tid``, timestamps on every non-metadata event, a non-negative
    ``dur`` on complete (``X``) spans, and an ``args`` dict on counter
    (``C``) samples.  Raises :class:`ValueError` on the first
    violation; returns per-phase event counts for smoke reports.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"trace document must be an object, "
                         f"got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document has no 'traceEvents' list")
    counts: Counter = Counter()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"{where}: missing phase 'ph'")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{where}: missing {key!r}")
        if ph == "M":                      # metadata: no timestamp needed
            counts[ph] += 1
            continue
        if ph not in _PHASES:
            raise ValueError(f"{where}: unsupported phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: bad timestamp {ts!r}")
        if ph == SPAN:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: span needs dur >= 0, "
                                 f"got {dur!r}")
        if ph == COUNTER and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: counter needs an 'args' object")
        counts[ph] += 1
    return dict(counts)
