"""Metric registry — one namespace for every component's monitors.

Mermaid's value as a *workbench* comes from "a suite of tools ... to
visualize and analyze the simulation output" (PAPER.md Sec 5).  The
models already measure plenty — :class:`~repro.pearl.TallyMonitor` /
:class:`~repro.pearl.TimeWeightedMonitor` instances and ``summary()``
dicts scattered across caches, buses, links, NICs and switching
engines — but each component held its numbers privately.  A
:class:`MetricRegistry` gives them one address space: components
register their monitors under a dotted namespace at construction time,
and :meth:`MetricRegistry.snapshot` flattens everything into a single
``{"namespace.metric": value}`` dict ready to become an experiment row
(`repro stats`, sweep columns, report tables).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Union

from ..pearl.kernel import Simulator
from ..pearl.monitor import TallyMonitor, TimeWeightedMonitor

__all__ = ["CounterMetric", "MetricRegistry"]


class CounterMetric:
    """A monotonically increasing named counter with a ``summary()``.

    The server-side complement of the simulation monitors: service
    components (job manager, scheduler) count discrete occurrences —
    jobs submitted, completed, rejected — and the counter plugs into a
    :class:`MetricRegistry` like any monitor source.  Thread-safe via
    the GIL (single ``+=`` on an int under CPython); values are plain
    ints so snapshots stay JSON-serializable and deterministic.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1); returns the new value."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount
        return self.value

    def summary(self) -> dict:
        return {"name": self.name, "count": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CounterMetric {self.name}={self.value}>"

#: a metric source: a monitor (``summary() -> dict``) or a zero-arg
#: callable returning a dict of values.
Source = Union[TallyMonitor, TimeWeightedMonitor, Callable[[], dict]]

#: summary keys that label rather than measure — excluded from snapshots.
_LABEL_KEYS = frozenset(("name",))


class MetricRegistry:
    """Namespaced registry of metric sources with flat snapshots.

    ::

        registry = MetricRegistry()
        latency = registry.tally("network.message_latency")
        registry.register("node0.nic", nic.stats.summary)   # callable
        ...
        row = registry.snapshot()
        # {"network.message_latency.count": 42, ..., "node0.nic.bytes_sent": ...}

    Sources are either monitor objects (anything with a ``summary() ->
    dict`` method) or zero-argument callables returning a dict; nested
    dicts flatten with dotted keys.  Namespaces are unique — a
    collision raises ``ValueError`` at registration time, when the
    duplicate is still attributable to a component.
    """

    __slots__ = ("_sources",)

    def __init__(self) -> None:
        self._sources: dict[str, Source] = {}

    # -- registration -----------------------------------------------------

    def register(self, namespace: str, source: Source) -> Source:
        """Register ``source`` under ``namespace``; returns the source."""
        if not namespace:
            raise ValueError("metric namespace must be non-empty")
        if namespace in self._sources:
            raise ValueError(
                f"metric namespace {namespace!r} already registered")
        if not callable(source) and not hasattr(source, "summary"):
            raise TypeError(
                f"metric source for {namespace!r} must be a monitor with "
                f".summary() or a zero-arg callable, got "
                f"{type(source).__name__}")
        self._sources[namespace] = source
        return source

    def tally(self, namespace: str, *,
              keep_samples: bool = False) -> TallyMonitor:
        """Create and register a :class:`TallyMonitor` in one step."""
        monitor = TallyMonitor(namespace, keep_samples=keep_samples)
        self.register(namespace, monitor)
        return monitor

    def counter(self, namespace: str) -> CounterMetric:
        """Create and register a :class:`CounterMetric` in one step."""
        metric = CounterMetric(namespace)
        self.register(namespace, metric)
        return metric

    def level(self, namespace: str, sim: Simulator, *,
              initial: float = 0.0) -> TimeWeightedMonitor:
        """Create and register a :class:`TimeWeightedMonitor`."""
        monitor = TimeWeightedMonitor(sim, namespace, initial=initial)
        self.register(namespace, monitor)
        return monitor

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._sources)

    def __contains__(self, namespace: str) -> bool:
        return namespace in self._sources

    def namespaces(self) -> list[str]:
        """Registered namespaces, in registration order."""
        return list(self._sources)

    def get(self, namespace: str) -> Optional[Source]:
        return self._sources.get(namespace)

    # -- snapshots --------------------------------------------------------

    def _flatten(self, prefix: str, data: dict) -> Iterator[tuple[str, object]]:
        for key, value in data.items():
            if key in _LABEL_KEYS:
                continue
            dotted = f"{prefix}.{key}"
            if isinstance(value, dict):
                yield from self._flatten(dotted, value)
            else:
                yield dotted, value

    def snapshot(self) -> dict[str, object]:
        """Every metric as one flat ``{"namespace.metric": value}`` dict.

        Monitor sources contribute their ``summary()``; callable
        sources contribute their returned dict; nested dicts flatten
        with dotted keys.  The result is plain-JSON-serializable and
        row-shaped for the experiment/report layer.
        """
        flat: dict[str, object] = {}
        for namespace, source in self._sources.items():
            data = source() if callable(source) else source.summary()
            flat.update(self._flatten(namespace, data))
        return flat

    def rows(self) -> list[dict]:
        """Snapshot as ``[{"metric": ..., "value": ...}]`` table rows."""
        return [{"metric": key, "value": value}
                for key, value in sorted(self.snapshot().items())]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricRegistry sources={len(self._sources)}>"
