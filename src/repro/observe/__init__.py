"""``repro.observe`` — the workbench's observability layer.

Two first-class instruments over a running simulation:

* :class:`Tracer` — typed span/instant/counter records out of the
  kernel, channels, resources, NICs, switching engines and the hybrid
  scheduler; attach with
  :meth:`~repro.pearl.kernel.Simulator.attach_tracer`.  Exports Chrome
  ``trace_event`` JSON that opens directly in ``about://tracing`` /
  Perfetto (``repro trace <app> --out trace.json``).
* :class:`MetricRegistry` — namespaces every component's
  :class:`~repro.pearl.TallyMonitor` / summary dict and snapshots them
  into one flat experiment row (``repro stats``).

Both are opt-in and zero-cost when detached (one ``None`` check per
kernel operation, same as the PR-2 determinism sanitizer).

Dispatcher independence (PR-6): both instruments observe identical
records under the seed kernel and the fast ring dispatcher
(``REPRO_KERNEL``), and a *detached* simulator takes each kernel's
instrumentation-free bulk path — attaching a tracer never changes what
a simulation computes, and not attaching one costs the fast path
nothing.  ``tests/test_kernel_equivalence.py`` and the dispatcher
parity suite in ``tests/test_pearl_kernel.py`` pin record-level
equality across kernels.
"""

from .registry import CounterMetric, MetricRegistry
from .tracer import Tracer, TraceRecord, validate_chrome_trace

__all__ = ["CounterMetric", "MetricRegistry", "TraceRecord", "Tracer",
           "validate_chrome_trace"]
