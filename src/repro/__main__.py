"""``python -m repro`` — the workbench command-line interface."""

from .cli import main

raise SystemExit(main())
