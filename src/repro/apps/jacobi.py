"""Jacobi 2-D stencil iteration with halo exchange.

The canonical "coarse-grained computations alternated with periods of
communication" workload the paper's Section 3.2 motivates: the grid is
split into horizontal strips; each iteration exchanges boundary rows
with both neighbours, then relaxes the interior with the 4-point
stencil.
"""

from __future__ import annotations

from typing import Callable

from ..operations.optypes import ArithType, MemType
from .api import NodeContext

__all__ = ["make_jacobi"]


def make_jacobi(grid: int = 32, iterations: int = 4
                ) -> Callable[[NodeContext], None]:
    """Build the instrumented Jacobi program for a grid×grid domain.

    Each node owns ``grid // n_nodes`` rows (plus two halo rows).  Halo
    exchange is synchronous and ordered by parity so neighbouring sends
    and receives pair deterministically.
    """
    if grid < 3:
        raise ValueError(f"grid must be >= 3, got {grid}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    def program(ctx: NodeContext) -> None:
        me, p = ctx.node_id, ctx.n_nodes
        rows = max(grid // p, 1)
        width = grid
        row_bytes = width * 8
        # Local strip with halo rows above and below.
        U = ctx.global_var("U", MemType.FLOAT64, (rows + 2) * width)
        V = ctx.global_var("V", MemType.FLOAT64, (rows + 2) * width)
        up = me - 1 if me > 0 else None
        down = me + 1 if me < p - 1 else None

        def exchange() -> None:
            # Even nodes send first; odd nodes receive first.
            if me % 2 == 0:
                if down is not None:
                    ctx.send(down, row_bytes)
                if up is not None:
                    ctx.send(up, row_bytes)
                if down is not None:
                    ctx.recv(down)
                if up is not None:
                    ctx.recv(up)
            else:
                if up is not None:
                    ctx.recv(up)
                if down is not None:
                    ctx.recv(down)
                if up is not None:
                    ctx.send(up, row_bytes)
                if down is not None:
                    ctx.send(down, row_bytes)

        for _ in ctx.loop(range(iterations)):
            if p > 1:
                exchange()
            for i in ctx.loop(range(1, rows + 1)):
                for j in ctx.loop(range(1, width - 1)):
                    ctx.read(U, (i - 1) * width + j)   # north
                    ctx.read(U, (i + 1) * width + j)   # south
                    ctx.read(U, i * width + j - 1)     # west
                    ctx.read(U, i * width + j + 1)     # east
                    ctx.add(ArithType.DOUBLE, count=3)
                    ctx.const(MemType.FLOAT64)         # 0.25
                    ctx.mul(ArithType.DOUBLE)
                    ctx.write(V, i * width + j)
            # Swap buffers (a pointer swap: no memory traffic).
            U, V = V, U
    return program
