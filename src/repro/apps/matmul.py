"""SPMD blocked matrix multiplication — the classic multicomputer kernel.

Row-block decomposition of C = A × B: every node owns N/P rows of A and
C and a full copy of B, computes its block, and gathers results to node
0.  The instrumented inner loop annotates the two loads, multiply,
accumulate-add and store a compiler would emit, so the computational
model sees a realistic address stream (A walks row-major, B column-wise
— the cache-hostile direction).
"""

from __future__ import annotations

from typing import Callable

from ..operations.optypes import ArithType, MemType
from .api import NodeContext

__all__ = ["make_matmul", "matmul_flops"]


def matmul_flops(n: int) -> int:
    """Floating-point operations of an n×n×n multiply (mul + add)."""
    return 2 * n ** 3


def make_matmul(n: int = 32, gather: bool = True
                ) -> Callable[[NodeContext], None]:
    """Build the instrumented SPMD matmul program for n×n matrices.

    Rows are distributed as evenly as possible; with ``gather`` each
    node sends its C block to node 0 at the end.
    """
    if n < 1:
        raise ValueError(f"matrix size must be >= 1, got {n}")

    def program(ctx: NodeContext) -> None:
        me, p = ctx.node_id, ctx.n_nodes
        rows = n // p + (1 if me < n % p else 0)
        if rows == 0:
            # More nodes than rows: idle nodes still join the gather.
            if gather and me != 0:
                pass
            if gather and me == 0:
                for peer in range(1, p):
                    peer_rows = n // p + (1 if peer < n % p else 0)
                    if peer_rows:
                        ctx.recv(peer)
            return
        A = ctx.global_var("A", MemType.FLOAT64, rows * n)
        B = ctx.global_var("B", MemType.FLOAT64, n * n)
        C = ctx.global_var("C", MemType.FLOAT64, rows * n)
        acc = ctx.local_var("acc", MemType.FLOAT64)   # register-allocated

        for i in ctx.loop(range(rows)):
            for j in ctx.loop(range(n)):
                ctx.const(MemType.FLOAT64)            # acc = 0.0
                for k in ctx.loop(range(n)):
                    ctx.read(A, i * n + k)
                    ctx.read(B, k * n + j)            # column walk of B
                    ctx.mul(ArithType.DOUBLE)
                    ctx.add(ArithType.DOUBLE)         # acc += a*b
                ctx.write(C, i * n + j)

        if gather:
            block_bytes = rows * n * 8
            if me == 0:
                for peer in range(1, p):
                    peer_rows = n // p + (1 if peer < n % p else 0)
                    if peer_rows:
                        ctx.recv(peer)
            else:
                ctx.send(0, block_bytes)
    return program
