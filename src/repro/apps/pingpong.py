"""Ping-pong — the communication micro-benchmark.

Two nodes bounce a message back and forth; everyone else idles.  Used to
calibrate/validate link parameters (latency = alpha + beta·size) and to
compare switching strategies at different hop counts.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..operations.ops import recv, send
from ..operations.trace import Trace, TraceSet
from .api import NodeContext

__all__ = ["make_pingpong", "pingpong_task_traces"]


def make_pingpong(size: int = 1024, repeats: int = 8, a: int = 0,
                  b: Optional[int] = None
                  ) -> Callable[[NodeContext], None]:
    """Instrumented ping-pong between nodes ``a`` and ``b`` (default:
    the last node, maximizing hop count)."""
    if size < 0 or repeats < 1:
        raise ValueError("need size >= 0 and repeats >= 1")

    def program(ctx: NodeContext) -> None:
        me, p = ctx.node_id, ctx.n_nodes
        peer_b = (p - 1) if b is None else b
        if a == peer_b:
            raise ValueError("ping-pong needs two distinct nodes")
        if me == a:
            for _ in ctx.loop(range(repeats)):
                ctx.send(peer_b, size)
                ctx.recv(peer_b)
        elif me == peer_b:
            for _ in ctx.loop(range(repeats)):
                ctx.recv(a)
                ctx.send(a, size)
    return program


def pingpong_task_traces(n_nodes: int, size: int = 1024, repeats: int = 8,
                         a: int = 0, b: Optional[int] = None,
                         think_cycles: float = 0.0) -> TraceSet:
    """Pure task-level ping-pong traces (no instrumentation needed)."""
    peer_b = (n_nodes - 1) if b is None else b
    if a == peer_b:
        raise ValueError("ping-pong needs two distinct nodes")
    from ..operations.ops import compute
    ops_a: list = []
    ops_b: list = []
    for _ in range(repeats):
        if think_cycles:
            ops_a.append(compute(think_cycles))
        ops_a += [send(size, peer_b), recv(peer_b)]
        ops_b += [recv(a), send(size, a)]
    traces = [Trace(i) for i in range(n_nodes)]
    traces[a] = Trace(a, ops_a)
    traces[peer_b] = Trace(peer_b, ops_b)
    return TraceSet(traces)
