"""Master/worker dynamic load balancing — runtime-system-level modelling.

The paper's abstract promises "study of the interaction between
software and hardware at different levels, ranging from the application
level to the runtime system level"; a self-scheduling task farm is the
classic runtime-system workload.  Node 0 is the master holding a bag of
tasks with heterogeneous (seeded) costs; workers request work, execute
it (annotated flops proportional to the task's cost), and return
results; the master services whoever speaks first via ``recv_any``
(occam-ALT style).

Because assignment depends on *which worker asks first in simulated
time*, the trace is genuinely execution-driven: different architectures
produce different schedules — exactly the non-determinism that
physical-time interleaving exists to keep valid.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..operations.optypes import ArithType
from .api import NodeContext

__all__ = ["make_master_worker"]

#: sentinel payload telling a worker to stop.
_POISON = ("__done__",)


def make_master_worker(n_tasks: int = 24, mean_flops: int = 400,
                       seed: int = 0, request_bytes: int = 16,
                       task_bytes: int = 1024, result_bytes: int = 64,
                       collect: Optional[dict] = None
                       ) -> Callable[[NodeContext], None]:
    """Build the task-farm program.

    ``collect`` (optional dict) receives the final schedule:
    ``collect["assignments"]`` maps task id → worker and
    ``collect["per_worker"]`` counts tasks per worker.
    """
    if n_tasks < 1 or mean_flops < 1:
        raise ValueError("need n_tasks >= 1 and mean_flops >= 1")
    rng = np.random.default_rng(seed)
    # Heterogeneous task costs, fixed by the seed.
    costs = [max(int(c), 1) for c in
             rng.exponential(mean_flops, size=n_tasks)]

    def master(ctx: NodeContext) -> None:
        p = ctx.n_nodes
        assignments: dict[int, int] = {}
        next_task = 0
        outstanding = 0
        # Every worker sends an initial request; afterwards each result
        # implies the worker is idle again.
        expected = p - 1
        while next_task < n_tasks or outstanding > 0:
            worker, payload = ctx.recv_any()
            if payload != "request":
                outstanding -= 1     # a completed task's result
            if next_task < n_tasks:
                task_id = next_task
                next_task += 1
                outstanding += 1
                assignments[task_id] = worker
                ctx.send(worker, task_bytes,
                         payload=("task", task_id, costs[task_id]))
        for worker in range(1, p):
            ctx.send(worker, request_bytes, payload=_POISON)
        if collect is not None:
            per_worker = {w: 0 for w in range(1, p)}
            for w in assignments.values():
                per_worker[w] += 1
            collect["assignments"] = dict(assignments)
            collect["per_worker"] = per_worker
            collect["costs"] = list(costs)

    def worker(ctx: NodeContext) -> None:
        ctx.send(0, request_bytes, payload="request")
        while True:
            task = ctx.recv(0)
            if task == _POISON:
                break
            _tag, task_id, cost = task
            ctx.flops(cost, arith_type=ArithType.DOUBLE)
            ctx.send(0, result_bytes, payload=("result", task_id))

    def program(ctx: NodeContext) -> None:
        if ctx.n_nodes < 2:
            raise ValueError("master/worker needs at least 2 nodes")
        if ctx.node_id == 0:
            master(ctx)
        else:
            worker(ctx)

    return program
