"""``repro.apps`` — the application level: instrumentation API + workloads.

:class:`NodeContext` / :class:`ThreadedApplication` are the annotation
library instrumented programs are written against; the workload modules
(matmul, jacobi, pingpong, alltoall, pipeline, reduction) are the
reference instrumented applications used by examples, tests and
benchmarks.
"""

from .alltoall import alltoall_task_traces, make_alltoall
from .api import NodeContext, ThreadedApplication
from .fft import make_fft
from .jacobi import make_jacobi
from .masterworker import make_master_worker
from .matmul import make_matmul, matmul_flops
from .pingpong import make_pingpong, pingpong_task_traces
from .pipeline import make_pipeline, pipeline_task_traces
from .reduction import make_reduction

__all__ = [
    "NodeContext", "ThreadedApplication", "alltoall_task_traces",
    "make_alltoall", "make_fft", "make_jacobi", "make_master_worker",
    "make_matmul", "make_pingpong",
    "make_pipeline", "make_reduction", "matmul_flops",
    "pingpong_task_traces", "pipeline_task_traces",
]
