"""The application-instrumentation API (Section 5).

An instrumented Mermaid application is an ordinary program whose source
has been annotated with calls describing its memory, computational and
communication behaviour.  In this reproduction an application is a
Python function

    def program(ctx: NodeContext) -> None: ...

executed once per node in its own node thread; the :class:`NodeContext`
is the annotation library bound to that thread.  Annotations are
architecture-independent — "they only have to be made once, after which
they can be used to evaluate a wide range of architectures".

Because the host program is real Python, all control flow is evaluated
by the host ("the trace generator evaluates loop and branch-conditions")
and messages may carry real payloads so programs can make data-dependent
decisions; the simulator itself never sees data, only operations.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Iterable, Optional, Sequence

from ..operations.ops import arecv as _arecv_op
from ..operations.ops import asend as _asend_op
from ..operations.ops import recv as _recv_op
from ..operations.ops import send as _send_op
from ..operations.optypes import ArithType, MemType
from ..tracegen.annotate import AnnotationTranslator
from ..tracegen.threads import FunctionalExecutor, InterleavedStream, NodeThread
from ..tracegen.vdt import TargetABI, VarDescriptor

__all__ = ["NodeContext", "ThreadedApplication"]


def _caller_site(depth: int = 2):
    """Static code site (filename, lineno) of the annotation call."""
    frame = sys._getframe(depth)
    return (frame.f_code.co_filename, frame.f_lineno)


class NodeContext:
    """The annotation library bound to one node's trace thread.

    Computational annotations feed the annotation translator (and thus
    the VDT and virtual PC); communication annotations are *global
    events*: they suspend the thread until the simulator has completed
    the operation in simulated time.
    """

    def __init__(self, thread: NodeThread, n_nodes: int,
                 abi: Optional[TargetABI] = None) -> None:
        self._thread = thread
        self.node_id = thread.node_id
        self.n_nodes = n_nodes
        self.translator = AnnotationTranslator(thread.emit, abi)

    # -- variable declarations -------------------------------------------

    def global_var(self, name: str, mem_type: MemType = MemType.FLOAT64,
                   n: int = 1) -> VarDescriptor:
        """Declare a global (data-segment) variable or array."""
        return self.translator.declare_global(name, mem_type, n)

    def local_var(self, name: str, mem_type: MemType = MemType.FLOAT64,
                  n: int = 1) -> VarDescriptor:
        """Declare a local (stack/register) variable or array."""
        return self.translator.declare_local(name, mem_type, n)

    def argument(self, name: str, mem_type: MemType = MemType.FLOAT64,
                 n: int = 1) -> VarDescriptor:
        """Declare a function argument."""
        return self.translator.declare_argument(name, mem_type, n)

    # -- computational annotations -----------------------------------------

    def read(self, var: VarDescriptor, index: int = 0) -> None:
        """Annotate a use of ``var[index]``."""
        self.translator.read(var, index, site=_caller_site())

    def write(self, var: VarDescriptor, index: int = 0) -> None:
        """Annotate an assignment to ``var[index]``."""
        self.translator.write(var, index, site=_caller_site())

    def const(self, mem_type: MemType = MemType.INT32) -> None:
        """Annotate an immediate-constant load."""
        self.translator.const(mem_type, site=_caller_site())

    def add(self, arith_type: ArithType = ArithType.INT,
            count: int = 1) -> None:
        self.translator.arith("add", arith_type, count, site=_caller_site())

    def sub(self, arith_type: ArithType = ArithType.INT,
            count: int = 1) -> None:
        self.translator.arith("sub", arith_type, count, site=_caller_site())

    def mul(self, arith_type: ArithType = ArithType.INT,
            count: int = 1) -> None:
        self.translator.arith("mul", arith_type, count, site=_caller_site())

    def div(self, arith_type: ArithType = ArithType.INT,
            count: int = 1) -> None:
        self.translator.arith("div", arith_type, count, site=_caller_site())

    def flops(self, n: int, kind: str = "mul",
              arith_type: ArithType = ArithType.DOUBLE) -> None:
        """Annotate ``n`` floating-point operations at one site."""
        self.translator.arith(kind, arith_type, n, site=_caller_site())

    def loop(self, iterable: Iterable) -> Iterable:
        """Iterate while annotating the loop back-edge.

        Every iteration after the first emits the taken branch back to
        the loop head, giving the recurring instruction-fetch addresses
        of Section 3.3::

            for i in ctx.loop(range(n)):
                ...
        """
        site = _caller_site()
        first = True
        for item in iterable:
            if not first:
                self.translator.branch(site=site)
            first = False
            yield item

    def function(self, fn: Callable) -> Callable:
        """Decorator: annotate ``fn`` as a procedure (call/ret + VDT scope).

        ::

            @ctx.function
            def body(x):
                ...
        """
        site = (fn.__code__.co_filename, fn.__code__.co_firstlineno)

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            self.translator.call(site=site)
            try:
                return fn(*args, **kwargs)
            finally:
                self.translator.ret(site=site)
        wrapper.__name__ = getattr(fn, "__name__", "annotated")
        wrapper.__doc__ = fn.__doc__
        return wrapper

    # -- communication annotations (global events) ----------------------------

    def send(self, dest: int, nbytes: int, payload: Any = None) -> None:
        """Synchronous send: blocks (in simulated time) until delivered."""
        self._thread.global_event(_send_op(nbytes, dest), payload)

    def recv(self, source: int) -> Any:
        """Synchronous receive; returns the sender's payload."""
        return self._thread.global_event(_recv_op(source))

    def asend(self, dest: int, nbytes: int, payload: Any = None) -> None:
        """Asynchronous send: continues after the software overhead."""
        self._thread.global_event(_asend_op(nbytes, dest), payload)

    def arecv(self, source: int) -> Any:
        """Asynchronous receive; returns a payload or None (not arrived)."""
        return self._thread.global_event(_arecv_op(source))

    def recv_any(self, sources: Optional[Iterable[int]] = None
                 ) -> tuple[int, Any]:
        """Receive from whichever of ``sources`` sends first (occam ALT).

        Defaults to all other nodes.  Returns ``(source, payload)``.
        An extension beyond Table 1 — see
        :class:`repro.commmodel.RecvAnyEvent`.
        """
        from ..commmodel.nic import RecvAnyEvent
        if sources is None:
            sources = [n for n in range(self.n_nodes) if n != self.node_id]
        return self._thread.global_event(RecvAnyEvent(sources))

    # -- collective helpers (built from point-to-point, SPMD style) --------

    def barrier(self, tag_bytes: int = 4) -> None:
        """A central-coordinator barrier over all nodes."""
        if self.n_nodes == 1:
            return
        if self.node_id == 0:
            for peer in range(1, self.n_nodes):
                self.recv(peer)
            for peer in range(1, self.n_nodes):
                self.send(peer, tag_bytes)
        else:
            self.send(0, tag_bytes)
            self.recv(0)

    def broadcast(self, root: int, nbytes: int, payload: Any = None) -> Any:
        """Binomial-tree broadcast; returns the payload on every node."""
        n, me = self.n_nodes, self.node_id
        if n == 1:
            return payload
        rel = (me - root) % n
        value = payload
        mask = 1
        while mask < n:
            if rel & mask:
                value = self.recv((me - mask) % n)
                break
            mask <<= 1
        # Forward to children: ranks rel+m for each m below our own bit.
        mask >>= 1
        while mask > 0:
            if rel + mask < n:
                self.send((me + mask) % n, nbytes, value)
            mask >>= 1
        return value

    def reduce_to_root(self, root: int, nbytes: int,
                       value: float = 0.0,
                       op: Callable[[Any, Any], Any] = None) -> Any:
        """Flat reduction to ``root`` (children send, root combines)."""
        if op is None:
            op = lambda a, b: (a or 0) + (b or 0)
        if self.n_nodes == 1:
            return value
        if self.node_id == root:
            acc = value
            for peer in range(self.n_nodes):
                if peer != root:
                    acc = op(acc, self.recv(peer))
            return acc
        self.send(root, nbytes, value)
        return None

    def scatter(self, root: int, nbytes_each: int,
                values: Optional[Sequence[Any]] = None) -> Any:
        """Root sends one block (and payload) to every other node;
        returns this node's element."""
        if self.n_nodes == 1:
            return values[0] if values else None
        if self.node_id == root:
            if values is not None and len(values) != self.n_nodes:
                raise ValueError(
                    f"scatter needs {self.n_nodes} values, got {len(values)}")
            for peer in range(self.n_nodes):
                if peer != root:
                    self.send(peer, nbytes_each,
                              values[peer] if values else None)
            return values[root] if values else None
        return self.recv(root)

    def gather(self, root: int, nbytes_each: int,
               value: Any = None) -> Optional[list]:
        """Every node sends its block to root; root returns the list."""
        if self.n_nodes == 1:
            return [value]
        if self.node_id == root:
            out: list = [None] * self.n_nodes
            out[root] = value
            for peer in range(self.n_nodes):
                if peer != root:
                    out[peer] = self.recv(peer)
            return out
        self.send(root, nbytes_each, value)
        return None

    def allgather(self, nbytes_each: int, value: Any = None) -> list:
        """Ring allgather: n-1 shifted rounds; returns all values."""
        n, me = self.n_nodes, self.node_id
        out: list = [None] * n
        out[me] = value
        if n == 1:
            return out
        carry = value
        carry_src = me
        right, left = (me + 1) % n, (me - 1) % n
        for _ in range(n - 1):
            if me % 2 == 0:
                self.send(right, nbytes_each, (carry_src, carry))
                carry_src, carry = self.recv(left)
            else:
                incoming = self.recv(left)
                self.send(right, nbytes_each, (carry_src, carry))
                carry_src, carry = incoming
            out[carry_src] = carry
        return out


class ThreadedApplication:
    """An instrumented program ready to drive a simulation.

    ``program`` runs once per node (SPMD); pass a list of callables for
    MPMD.  :meth:`streams` yields the per-node interleaved operation
    streams for execution-driven simulation; :meth:`record` executes the
    program logically and returns static traces (trace-file mode).
    """

    def __init__(self, program, n_nodes: int,
                 abi: Optional[TargetABI] = None) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if callable(program):
            programs: Sequence[Callable] = [program] * n_nodes
        else:
            programs = list(program)
            if len(programs) != n_nodes:
                raise ValueError(
                    f"got {len(programs)} programs for {n_nodes} nodes")
        self.n_nodes = n_nodes
        self.abi = abi
        self._programs = programs

    def _bodies(self):
        def make_body(fn):
            def body(thread: NodeThread) -> None:
                fn(NodeContext(thread, self.n_nodes, self.abi))
            return body
        return [make_body(fn) for fn in self._programs]

    def streams(self) -> list[InterleavedStream]:
        """Fresh per-node interleaved operation streams (one use each)."""
        return [InterleavedStream(NodeThread(i, body))
                for i, body in enumerate(self._bodies())]

    def record(self):
        """Execute logically (no timing) and return the static TraceSet."""
        return FunctionalExecutor(self._bodies()).record()
