"""Software pipeline — streaming items through a chain of stages.

Node i receives an item from node i-1, processes it, and forwards it to
node i+1; m items stream through.  The pattern exposes pipeline fill
time and per-stage load imbalance (the timeline Gantt renders it
nicely).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..operations.ops import compute, recv, send
from ..operations.trace import Trace, TraceSet
from .api import NodeContext

__all__ = ["make_pipeline", "pipeline_task_traces"]


def make_pipeline(items: int = 8, item_bytes: int = 4096,
                  stage_flops: int = 512) -> Callable[[NodeContext], None]:
    """Instrumented pipeline: each node is one stage."""
    if items < 1 or item_bytes < 1:
        raise ValueError("need items >= 1 and item_bytes >= 1")

    def program(ctx: NodeContext) -> None:
        me, p = ctx.node_id, ctx.n_nodes
        for i in ctx.loop(range(items)):
            if me > 0:
                ctx.recv(me - 1)
            if stage_flops:
                ctx.flops(stage_flops)
            if me < p - 1:
                ctx.send(me + 1, item_bytes, payload=i)
    return program


def pipeline_task_traces(n_nodes: int, items: int = 8,
                         item_bytes: int = 4096,
                         stage_cycles: Sequence[float] | float = 2000.0
                         ) -> TraceSet:
    """Task-level pipeline traces.

    ``stage_cycles`` may be a scalar or per-stage sequence (to model an
    imbalanced pipeline — the slowest stage sets the throughput).
    """
    if isinstance(stage_cycles, (int, float)):
        stage_cycles = [float(stage_cycles)] * n_nodes
    if len(stage_cycles) != n_nodes:
        raise ValueError(
            f"need {n_nodes} stage_cycles entries, got {len(stage_cycles)}")
    traces = []
    for me in range(n_nodes):
        ops = []
        for _ in range(items):
            if me > 0:
                ops.append(recv(me - 1))
            ops.append(compute(stage_cycles[me]))
            if me < n_nodes - 1:
                ops.append(send(item_bytes, me + 1))
        traces.append(Trace(me, ops))
    return TraceSet(traces)
