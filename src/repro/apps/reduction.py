"""Global reduction + broadcast — the collective-communication workload.

Each node computes a partial result over its local data, the partials
are reduced to node 0, and the global value is broadcast back (an
allreduce).  Host payloads carry real partial sums, so the example also
demonstrates data-dependent program logic riding on the simulation.
"""

from __future__ import annotations

from typing import Callable

from ..operations.optypes import ArithType, MemType
from .api import NodeContext

__all__ = ["make_reduction"]


def make_reduction(local_elems: int = 256, value_bytes: int = 8,
                   check: bool = True) -> Callable[[NodeContext], None]:
    """Build the instrumented allreduce program.

    Every node sums ``local_elems`` doubles (annotated loads + adds),
    reduces the partial to node 0, and receives the broadcast total.
    With ``check``, nodes assert the reduced value is correct — host
    logic validating the payload plumbing end to end.
    """
    if local_elems < 1:
        raise ValueError("local_elems must be >= 1")

    def program(ctx: NodeContext) -> None:
        me, p = ctx.node_id, ctx.n_nodes
        X = ctx.global_var("X", MemType.FLOAT64, local_elems)
        partial = 0.0
        for i in ctx.loop(range(local_elems)):
            ctx.read(X, i)
            ctx.add(ArithType.DOUBLE)
            partial += float(me + 1)       # host-side real arithmetic
        total = ctx.reduce_to_root(0, value_bytes, partial)
        result = ctx.broadcast(0, value_bytes,
                               total if me == 0 else None)
        if check:
            expected = sum(local_elems * (node + 1) for node in range(p))
            assert result == expected, (
                f"node {me}: allreduce got {result}, expected {expected}")
    return program
