"""Parallel FFT butterfly — the canonical hypercube workload.

A radix-2 distributed FFT over P = 2^d nodes: log2(P) butterfly stages,
stage k exchanging half the local data with the partner ``me ^ 2^k``
followed by the local butterflies (complex multiply-add per point).
On a hypercube every exchange is nearest-neighbour; on lesser
topologies the later (high-bit) stages pay multi-hop latency — the
textbook argument for cube-like interconnects that an architecture
workbench exists to quantify.
"""

from __future__ import annotations

from typing import Callable

from ..operations.optypes import ArithType, MemType
from .api import NodeContext

__all__ = ["make_fft"]


def make_fft(points_per_node: int = 64) -> Callable[[NodeContext], None]:
    """Build the instrumented distributed FFT program.

    Requires a power-of-two node count.  ``points_per_node`` complex
    points per node; each stage annotates the exchange (half the local
    data both ways) and the local butterfly arithmetic (one complex
    multiply + two complex adds per point: 10 real flops).
    """
    if points_per_node < 2 or points_per_node & (points_per_node - 1):
        raise ValueError("points_per_node must be a power of two >= 2")

    def program(ctx: NodeContext) -> None:
        me, p = ctx.node_id, ctx.n_nodes
        if p & (p - 1):
            raise ValueError(f"FFT needs a power-of-two node count, got {p}")
        X = ctx.global_var("X", MemType.FLOAT64, 2 * points_per_node)
        W = ctx.global_var("W", MemType.FLOAT64, points_per_node)
        half_bytes = points_per_node * 8     # half the complex data
        stages = p.bit_length() - 1
        for stage in ctx.loop(range(stages)):
            partner = me ^ (1 << stage)
            # Pairwise exchange of halves (lower id sends first).
            if me < partner:
                ctx.send(partner, half_bytes)
                ctx.recv(partner)
            else:
                ctx.recv(partner)
                ctx.send(partner, half_bytes)
            # Local butterflies over every point.
            for i in ctx.loop(range(points_per_node)):
                ctx.read(X, 2 * i)          # re
                ctx.read(X, 2 * i + 1)      # im
                ctx.read(W, i)              # twiddle
                ctx.mul(ArithType.DOUBLE, count=4)   # complex multiply
                ctx.add(ArithType.DOUBLE, count=6)   # cross terms + adds
                ctx.write(X, 2 * i)
                ctx.write(X, 2 * i + 1)
        # Final local stages need no communication: log2(n_local) rounds
        # of butterflies over the resident points.
        local_stages = points_per_node.bit_length() - 1
        for _ in ctx.loop(range(local_stages)):
            for i in ctx.loop(range(points_per_node // 2)):
                ctx.read(X, 2 * i)
                ctx.read(X, 2 * i + 1)
                ctx.mul(ArithType.DOUBLE, count=4)
                ctx.add(ArithType.DOUBLE, count=6)
                ctx.write(X, 2 * i)
    return program
