"""All-to-all personalized exchange — the network stress workload.

Every node sends a distinct block to every other node in n-1 shifted
rounds (node ``me`` sends to ``me+r`` and receives from ``me-r`` in
round r).  Saturates bisection bandwidth, so it separates topologies
and switching strategies clearly (benchmark F3b).
"""

from __future__ import annotations

from typing import Callable

from ..operations.ops import compute, recv, send
from ..operations.trace import Trace, TraceSet
from .api import NodeContext

__all__ = ["make_alltoall", "alltoall_task_traces"]


def make_alltoall(block_bytes: int = 2048, rounds: int = 1,
                  work_flops: int = 256) -> Callable[[NodeContext], None]:
    """Instrumented all-to-all: compute a little, exchange everything.

    Synchronous sends complete at delivery (buffered at the receiver),
    so the everyone-sends-then-receives round structure cannot deadlock.
    """
    if block_bytes < 1 or rounds < 1:
        raise ValueError("need block_bytes >= 1 and rounds >= 1")

    def program(ctx: NodeContext) -> None:
        me, p = ctx.node_id, ctx.n_nodes
        for _ in ctx.loop(range(rounds)):
            if work_flops:
                ctx.flops(work_flops)
            for r in ctx.loop(range(1, p)):
                ctx.send((me + r) % p, block_bytes)
                ctx.recv((me - r) % p)
    return program


def alltoall_task_traces(n_nodes: int, block_bytes: int = 2048,
                         rounds: int = 1,
                         compute_cycles: float = 1000.0) -> TraceSet:
    """Task-level all-to-all traces for comm-only simulation."""
    traces = []
    for me in range(n_nodes):
        ops = []
        for _ in range(rounds):
            if compute_cycles:
                ops.append(compute(compute_cycles))
            for r in range(1, n_nodes):
                ops.append(send(block_bytes, (me + r) % n_nodes))
                ops.append(recv((me - r) % n_nodes))
        traces.append(Trace(me, ops))
    return TraceSet(traces)
