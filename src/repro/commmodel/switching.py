"""Switching strategies — "a configurable ... switching strategy" (Sec 4.2).

Three classic multicomputer switching disciplines, all modelled at the
packet level on top of the kernel's FIFO link resources:

* **store-and-forward** — a packet is received completely at each router
  before moving on; per-hop cost is the full packet serialization time.
* **virtual cut-through** — a packet starts forwarding as soon as its
  header has been routed; when blocked it is buffered entirely at the
  blocking router (upstream links are freed while the body streams out).
* **wormhole** — the header flit acquires links hop by hop and the body
  streams through the held path; a blocked worm keeps its partial path
  occupied (the characteristic wormhole behaviour).  On rings and tori
  a second, *dateline* virtual channel breaks the dimensional cycles so
  dimension-order wormhole routing stays deadlock-free.

Each engine exposes ``inject(message)``; delivery is reported through a
callback so the network model can hand the message to the destination's
abstract processor.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.config import ConfigError, NetworkConfig
from ..pearl import Simulator, TallyMonitor
from ..topology import Topology
from .link import Link
from .message import Message, Packet
from .routing import RoutingFunction

__all__ = ["SwitchingEngine", "StoreAndForward", "VirtualCutThrough",
           "Wormhole", "make_switching"]

DeliverFn = Callable[[Message], None]


class SwitchingEngine:
    """Base class: owns the links and the packet-level statistics."""

    #: virtual channels instantiated per link (overridden by Wormhole).
    n_vcs = 1

    def __init__(self, sim: Simulator, cfg: NetworkConfig, topo: Topology,
                 routing: RoutingFunction, deliver: DeliverFn,
                 injector=None) -> None:
        self.sim = sim
        self.cfg = cfg
        self.topo = topo
        self.routing = routing
        self.deliver = deliver
        # Optional repro.faults.FaultInjector; every transfer process
        # consults it per link crossing when set (None = seed path).
        self.injector = injector
        self.links: dict[tuple[int, int], Link] = {
            (u, v): Link(sim, u, v, cfg, self.n_vcs,
                         bandwidth_scale=topo.link_capacity(u, v))
            for (u, v) in topo.links()}
        self.packet_latency = TallyMonitor("packet_latency")
        self.packet_hops = TallyMonitor("packet_hops")
        self.messages_injected = 0
        self.messages_delivered = 0

    # -- public API -------------------------------------------------------

    def inject(self, message: Message,
               path: Optional[list[int]] = None) -> None:
        """Packetize ``message`` and launch one transfer process per packet.

        ``path`` overrides the routing function for every packet — the
        reliable transport's degraded-routing fallback steers retries
        around suspect links with it.
        """
        message.t_inject = self.sim.now
        self.messages_injected += 1
        if message.src == message.dst:
            raise ConfigError(
                f"message {message.id}: source equals destination "
                f"({message.src})")
        packets = message.split(self.cfg.packet_bytes, self.cfg.header_bytes)
        for pkt in packets:
            # Per-packet path: deterministic routers return the cached
            # path, adaptive (random-minimal) routers sample a fresh one.
            pkt_path = path if path is not None \
                else self.routing.path(message.src, message.dst)
            self.sim.process(
                self._packet_process(pkt, pkt_path),
                name=f"pkt{message.id}.{pkt.index}")

    # -- per-strategy transfer process --------------------------------------

    def _packet_process(self, pkt: Packet, path: list[int]):
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------

    def _packet_done(self, pkt: Packet, t_start: float) -> None:
        self.packet_latency.record(self.sim.now - t_start)
        msg = pkt.message
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.span("network", f"pkt{msg.id}.{pkt.index}", t_start,
                        self.sim.now - t_start, "network",
                        {"src": msg.src, "dst": msg.dst,
                         "bytes": pkt.total_bytes})
        if msg.packet_arrived():
            msg.t_deliver = self.sim.now
            self.messages_delivered += 1
            self.deliver(msg)

    def link_utilizations(self, horizon: Optional[float] = None) -> dict:
        h = horizon if horizon is not None else self.sim.now
        return {f"{u}->{v}": link.utilization(h)
                for (u, v), link in self.links.items()}

    def max_link_utilization(self, horizon: Optional[float] = None) -> float:
        h = horizon if horizon is not None else self.sim.now
        if not self.links:
            return 0.0
        return max(link.utilization(h) for link in self.links.values())

    def summary(self) -> dict:
        return {
            "strategy": type(self).__name__,
            "messages_injected": self.messages_injected,
            "messages_delivered": self.messages_delivered,
            "packet_latency": self.packet_latency.summary(),
            "packet_hops": self.packet_hops.summary(),
        }

    def register_metrics(self, registry) -> None:
        """Expose this engine's monitors in a
        :class:`~repro.observe.MetricRegistry`."""
        registry.register("network.packet_latency", self.packet_latency)
        registry.register("network.packet_hops", self.packet_hops)
        registry.register("network.traffic", lambda: {
            "messages_injected": self.messages_injected,
            "messages_delivered": self.messages_delivered,
        })
        registry.register("network.link_utilization",
                          self.link_utilizations)


class StoreAndForward(SwitchingEngine):
    """Full packet received at each hop before forwarding."""

    def _packet_process(self, pkt: Packet, path: list[int]):
        t0 = self.sim.now
        self.packet_hops.record(len(path) - 1)
        routing_cycles = self.cfg.routing_cycles
        injector = self.injector
        for i in range(len(path) - 1):
            link = self.links[(path[i], path[i + 1])]
            if injector is not None:
                verdict = yield from link.cross_faults(injector, pkt)
                if verdict == "drop":
                    return
            if routing_cycles:
                yield routing_cycles
            vc = link.vcs[0]
            yield vc.acquire()
            transfer = link.transfer_cycles(pkt.total_bytes)
            link.account(pkt.total_bytes, transfer)
            yield transfer
            vc.release()
            if link.latency:
                yield link.latency
        self._packet_done(pkt, t0)


class VirtualCutThrough(SwitchingEngine):
    """Forward on header arrival; buffer the whole packet when blocked."""

    def _packet_process(self, pkt: Packet, path: list[int]):
        t0 = self.sim.now
        self.packet_hops.record(len(path) - 1)
        cfg = self.cfg
        body_bytes = max(pkt.total_bytes - cfg.header_bytes, 0)
        injector = self.injector
        for i in range(len(path) - 1):
            link = self.links[(path[i], path[i + 1])]
            if injector is not None:
                verdict = yield from link.cross_faults(injector, pkt)
                if verdict == "drop":
                    return
            if cfg.routing_cycles:
                yield cfg.routing_cycles
            vc = link.vcs[0]
            # Released by the timeout callback below once the body
            # streams past, which the static leak check cannot see.
            yield vc.acquire()             # repro: noqa[PY012]
            header_t = link.transfer_cycles(cfg.header_bytes)
            body_t = link.transfer_cycles(body_bytes)
            link.account(pkt.total_bytes, header_t + body_t)
            yield header_t
            # The body streams behind the header: the link stays occupied
            # for body_t more cycles, but this packet's header moves on.
            if body_t > 0:
                self.sim.timeout(body_t).add_callback(
                    lambda _value, r=vc: r.release())
            else:
                vc.release()
            if link.latency:
                yield link.latency
        # Tail arrival at the destination.
        if body_bytes:
            yield self.links[(path[-2], path[-1])].transfer_cycles(body_bytes)
        self._packet_done(pkt, t0)


class Wormhole(SwitchingEngine):
    """Header flit reserves the path; body streams; tail releases.

    Virtual channel 0 is the default; packets that cross a ring/torus
    wraparound link switch to the dateline channel (VC 1) for the rest
    of their path, which breaks the cyclic channel dependency and keeps
    dimension-order wormhole routing deadlock-free.
    """

    n_vcs = 2

    def _packet_process(self, pkt: Packet, path: list[int]):
        t0 = self.sim.now
        self.packet_hops.record(len(path) - 1)
        cfg = self.cfg
        held = []
        vc_index = 0
        last_link = None
        injector = self.injector
        try:
            for i in range(len(path) - 1):
                u, v = path[i], path[i + 1]
                link = self.links[(u, v)]
                last_link = link
                if injector is not None:
                    # A dropped worm releases its partial path through
                    # the finally below (tail never advances).
                    verdict = yield from link.cross_faults(injector, pkt)
                    if verdict == "drop":
                        return
                if cfg.routing_cycles:
                    yield cfg.routing_cycles
                vc = link.vcs[vc_index]
                # Released through the `held` list in the finally
                # below, which the static leak check cannot see.
                yield vc.acquire()         # repro: noqa[PY012]
                held.append(vc)
                # Header flit crosses this hop.
                yield link.transfer_cycles(cfg.flit_bytes) + link.latency
                if self.topo.is_wrap_edge(u, v):
                    vc_index = 1
            # Path is held end to end: stream the body (everything after
            # the header flit) through the pipeline, at the bottleneck
            # link's rate (links may differ, e.g. fat-tree levels).
            body_bytes = max(pkt.total_bytes - cfg.flit_bytes, 0)
            body_t = max(self.links[(path[i], path[i + 1])]
                         .transfer_cycles(body_bytes)
                         for i in range(len(path) - 1))
            for i in range(len(path) - 1):
                link = self.links[(path[i], path[i + 1])]
                link.account(
                    pkt.total_bytes,
                    link.transfer_cycles(cfg.flit_bytes) + body_t)
            if body_t:
                yield body_t
        finally:
            # Tail flit passed: free the whole path.
            for vc in held:
                vc.release()
        self._packet_done(pkt, t0)


def make_switching(sim: Simulator, cfg: NetworkConfig, topo: Topology,
                   routing: RoutingFunction, deliver: DeliverFn,
                   injector=None) -> SwitchingEngine:
    """Build the engine named by ``NetworkConfig.switching``."""
    engines = {
        "store_and_forward": StoreAndForward,
        "virtual_cut_through": VirtualCutThrough,
        "wormhole": Wormhole,
    }
    try:
        engine_cls = engines[cfg.switching]
    except KeyError:
        raise ConfigError(f"unknown switching strategy {cfg.switching!r}") \
            from None
    return engine_cls(sim, cfg, topo, routing, deliver, injector)
