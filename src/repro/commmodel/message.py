"""Messages and packets.

The router "is responsible for further handling the transmission.  This
may include splitting up messages into multiple packets" (Section 4.2).
A :class:`Message` is what the abstract processor injects; the switching
engine splits it into :class:`Packet` objects according to the
configured maximum packet payload, and delivery completes when every
packet has arrived.
"""

from __future__ import annotations

import itertools
from typing import Optional

__all__ = ["Message", "Packet", "reset_message_ids"]

_message_ids = itertools.count()


def reset_message_ids() -> None:
    """Restart the global message-id counter from zero.

    Message ids only need to be unique within one simulation, but they
    leak into trace record names (``pkt<id>.<index>``), so anything
    comparing traces against a golden snapshot must pin the counter
    first — otherwise the ids depend on how many messages earlier
    tests created.
    """
    global _message_ids
    _message_ids = itertools.count()


class Message:
    """One application-level message travelling source → destination."""

    __slots__ = ("id", "src", "dst", "size", "synchronous", "payload",
                 "on_deliver", "t_inject", "t_deliver", "n_packets",
                 "_packets_remaining", "corrupted", "internal")

    def __init__(self, src: int, dst: int, size: int, synchronous: bool,
                 payload: object = None) -> None:
        self.id = next(_message_ids)
        self.src = src
        self.dst = dst
        self.size = size
        self.synchronous = synchronous
        # Host-side payload: carried for the instrumented program's own
        # logic (master/worker patterns etc.); the simulator never
        # inspects it and it contributes nothing to timing beyond `size`.
        self.payload = payload
        # Optional delivery override: protocol-internal traffic (e.g.
        # the VSM layer's page/invalidation messages) sets a callback
        # here so delivery bypasses the destination's application NIC.
        self.on_deliver = None
        self.t_inject: float = 0.0
        self.t_deliver: Optional[float] = None
        self.n_packets = 0
        self._packets_remaining = 0
        # Fault-injection state: `corrupted` is set when any packet is
        # corrupted in flight (the reliable transport discards such a
        # copy); `internal` marks a transport-layer attempt copy so the
        # model keeps it out of application-level metrics.
        self.corrupted = False
        self.internal = False

    @property
    def delivered(self) -> bool:
        return self.t_deliver is not None

    @property
    def latency(self) -> float:
        """Injection-to-delivery latency in cycles (delivered messages)."""
        if self.t_deliver is None:
            raise ValueError(f"message {self.id} not yet delivered")
        return self.t_deliver - self.t_inject

    def split(self, max_payload: int, header_bytes: int) -> list["Packet"]:
        """Packetize: each packet carries up to ``max_payload`` bytes plus
        a ``header_bytes`` header.  A zero-byte message still sends one
        (header-only) packet."""
        payloads: list[int] = []
        remaining = self.size
        while remaining > 0:
            take = min(remaining, max_payload)
            payloads.append(take)
            remaining -= take
        if not payloads:
            payloads = [0]
        packets = [Packet(self, i, p, header_bytes)
                   for i, p in enumerate(payloads)]
        self.n_packets = len(packets)
        self._packets_remaining = len(packets)
        return packets

    def packet_arrived(self) -> bool:
        """Count one packet delivery; True when the message is complete."""
        self._packets_remaining -= 1
        if self._packets_remaining < 0:
            raise ValueError(f"message {self.id}: too many packet arrivals")
        return self._packets_remaining == 0

    def __repr__(self) -> str:
        return (f"<Message {self.id} {self.src}->{self.dst} {self.size}B "
                f"{'sync' if self.synchronous else 'async'}>")


class Packet:
    """One network packet of a message."""

    __slots__ = ("message", "index", "payload_bytes", "header_bytes")

    def __init__(self, message: Message, index: int, payload_bytes: int,
                 header_bytes: int) -> None:
        self.message = message
        self.index = index
        self.payload_bytes = payload_bytes
        self.header_bytes = header_bytes

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.header_bytes

    @property
    def src(self) -> int:
        return self.message.src

    @property
    def dst(self) -> int:
        return self.message.dst

    def __repr__(self) -> str:
        return (f"<Packet {self.message.id}.{self.index} "
                f"{self.total_bytes}B {self.src}->{self.dst}>")
