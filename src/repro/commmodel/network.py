"""The multi-node communication model template (Fig 3b).

Builds the whole interconnect — abstract processors (NICs), routers
(the switching engine's per-packet transfer processes), links, and the
physical topology — and drives one task-level operation stream per
node.  This *is* Mermaid's fast-prototyping mode: "if fast prototyping
of a multicomputer is the primary goal, then the communication model
can be used directly".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..core.config import MachineConfig
from ..observe import MetricRegistry
from ..operations.ops import OpCode, Operation
from ..pearl import DeadlockError, Simulator, TallyMonitor
from ..topology import build_topology
from .message import Message
from .nic import NIC, RecvAnyEvent
from .routing import make_routing
from .switching import make_switching

__all__ = ["MultiNodeModel", "CommResult", "NodeActivity"]


class NodeActivity:
    """Time breakdown for one node's abstract processor."""

    __slots__ = ("node", "compute_cycles", "send_wait_cycles",
                 "recv_wait_cycles", "overhead_cycles", "ops_processed",
                 "finish_time")

    def __init__(self, node: int) -> None:
        self.node = node
        self.compute_cycles = 0.0
        self.send_wait_cycles = 0.0
        self.recv_wait_cycles = 0.0
        self.overhead_cycles = 0.0
        self.ops_processed = 0
        self.finish_time = 0.0

    @property
    def comm_cycles(self) -> float:
        return (self.send_wait_cycles + self.recv_wait_cycles
                + self.overhead_cycles)

    def busy_fraction(self, horizon: float) -> float:
        return self.compute_cycles / horizon if horizon > 0 else 0.0

    def summary(self) -> dict:
        return {
            "node": self.node,
            "compute_cycles": self.compute_cycles,
            "send_wait_cycles": self.send_wait_cycles,
            "recv_wait_cycles": self.recv_wait_cycles,
            "overhead_cycles": self.overhead_cycles,
            "ops_processed": self.ops_processed,
            "finish_time": self.finish_time,
        }


class CommResult:
    """Outcome of one communication-model simulation."""

    def __init__(self, machine: MachineConfig, total_cycles: float,
                 activity: list[NodeActivity], message_latency: TallyMonitor,
                 engine_summary: dict, link_utilization: dict,
                 events_executed: int = 0) -> None:
        self.machine = machine
        self.total_cycles = total_cycles
        self.activity = activity
        self.message_latency = message_latency
        self.engine_summary = engine_summary
        self.link_utilization = link_utilization
        self.events_executed = events_executed

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.machine.node.cpu.clock_hz

    @property
    def messages_delivered(self) -> int:
        return self.engine_summary["messages_delivered"]

    def parallel_efficiency(self) -> float:
        """Mean node busy (compute) fraction — the load-balance view."""
        if self.total_cycles <= 0 or not self.activity:
            return 0.0
        return (sum(a.compute_cycles for a in self.activity)
                / (self.total_cycles * len(self.activity)))

    def summary(self) -> dict:
        return {
            "machine": self.machine.name,
            "total_cycles": self.total_cycles,
            "seconds": self.seconds,
            "parallel_efficiency": self.parallel_efficiency(),
            "message_latency": self.message_latency.summary(),
            "engine": self.engine_summary,
            "nodes": [a.summary() for a in self.activity],
        }

    def __repr__(self) -> str:
        return (f"<CommResult cycles={self.total_cycles:.0f} "
                f"msgs={self.messages_delivered} "
                f"eff={self.parallel_efficiency():.2f}>")


class MultiNodeModel:
    """The communication model: topology + routers + links + NICs.

    Feed it one task-level operation stream per node via :meth:`run`.
    In hybrid mode (:mod:`repro.hybrid`) the streams come from the
    single-node computational models; in fast-prototyping mode they come
    straight from a trace generator.
    """

    def __init__(self, machine: MachineConfig,
                 sim: Optional[Simulator] = None,
                 registry: Optional[MetricRegistry] = None) -> None:
        machine.validate()
        self.machine = machine
        self.sim = sim if sim is not None else Simulator()
        self.topology = build_topology(machine.network.topology)
        self.routing = make_routing(machine.network.routing, self.topology)
        self.engine = make_switching(self.sim, machine.network,
                                     self.topology, self.routing,
                                     self._on_delivery)
        # Only endpoints (compute nodes) get NICs and drivers; switch
        # nodes of multistage interconnects are routing-only.
        self.nics = [NIC(self.sim, i, machine.network, self.engine.inject)
                     for i in range(self.topology.n_endpoints)]
        self.message_latency = TallyMonitor("message_latency")
        self.activity = [NodeActivity(i)
                         for i in range(self.topology.n_endpoints)]
        self.registry = registry if registry is not None else MetricRegistry()
        self.registry.register("network.message_latency",
                               self.message_latency)
        self.engine.register_metrics(self.registry)
        for nic in self.nics:
            self.registry.register(f"node{nic.node_id}.nic",
                                   nic.stats.summary)
        for act in self.activity:
            self.registry.register(f"node{act.node}.activity", act.summary)

    @property
    def n_nodes(self) -> int:
        return self.topology.n_endpoints

    # -- delivery plumbing ---------------------------------------------------

    def _on_delivery(self, msg: Message) -> None:
        self.message_latency.record(msg.latency)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("message", "deliver", self.sim.now,
                           f"node{msg.dst}",
                           {"src": msg.src, "dst": msg.dst,
                            "bytes": msg.size, "latency": msg.latency})
        if msg.on_deliver is not None:
            # Protocol-internal traffic (VSM pages, invalidations, ...):
            # handled by its own layer, never enters the application NIC.
            msg.on_deliver(msg)
            return
        self.nics[msg.dst].arrival(msg)
        if msg.synchronous:
            self.nics[msg.src].sender_completion(msg)

    # -- node driver -------------------------------------------------------------

    def node_driver(self, node_id: int, ops: Iterator[Operation],
                    payload_source=None, result_sink=None):
        """Process body: execute one node's task-level operation stream.

        ``payload_source()`` supplies the host payload of the send being
        processed (execution-driven mode); ``result_sink(value)`` is
        called after each communication operation with the received
        payload (or None), so an interleaved node thread can be resumed
        with it.
        """
        for op in ops:
            yield from self.handle_op(node_id, op, payload_source,
                                      result_sink)
        self.activity[node_id].finish_time = self.sim.now

    def handle_op(self, node_id: int, op: Operation,
                  payload_source=None, result_sink=None):
        """Process one task-level operation (generator; shared by the
        plain driver and the VSM driver)."""
        nic = self.nics[node_id]
        act = self.activity[node_id]
        cfg = self.machine.network
        sim = self.sim
        act.ops_processed += 1
        if isinstance(op, RecvAnyEvent):
            t0 = sim.now
            msg = yield from nic.recv_any(op.sources)
            waited = sim.now - t0
            act.overhead_cycles += min(cfg.recv_overhead, waited)
            act.recv_wait_cycles += max(waited - cfg.recv_overhead, 0.0)
            if result_sink:
                result_sink((msg.src, msg.payload))
            return
        code = op.code
        if code == OpCode.COMPUTE:
            act.compute_cycles += op.arg2
            yield op.arg2
        elif code == OpCode.SEND:
            t0 = sim.now
            payload = payload_source() if payload_source else None
            yield from nic.send(op.peer, op.size, payload)
            waited = sim.now - t0
            act.overhead_cycles += min(cfg.send_overhead, waited)
            act.send_wait_cycles += max(waited - cfg.send_overhead, 0.0)
            if result_sink:
                result_sink(None)
        elif code == OpCode.ASEND:
            t0 = sim.now
            payload = payload_source() if payload_source else None
            yield from nic.asend(op.peer, op.size, payload)
            act.overhead_cycles += sim.now - t0
            if result_sink:
                result_sink(None)
        elif code == OpCode.RECV:
            t0 = sim.now
            msg = yield from nic.recv(op.peer)
            waited = sim.now - t0
            act.overhead_cycles += min(cfg.recv_overhead, waited)
            act.recv_wait_cycles += max(waited - cfg.recv_overhead, 0.0)
            if result_sink:
                result_sink(msg.payload)
        elif code == OpCode.ARECV:
            t0 = sim.now
            msg = yield from nic.arecv(op.peer)
            act.overhead_cycles += sim.now - t0
            if result_sink:
                result_sink(msg.payload if msg is not None else None)
        else:
            raise ValueError(
                f"node {node_id}: computational operation {op!r} in a "
                "task-level trace; run it through the hybrid model "
                "(repro.hybrid) or extract tasks first")

    # -- top-level run --------------------------------------------------------------

    def run(self, per_node_ops: Sequence[Iterable[Operation]],
            until: Optional[float] = None) -> CommResult:
        """Simulate the machine driven by one op stream per node."""
        if len(per_node_ops) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} op streams (one per node), got "
                f"{len(per_node_ops)}")
        for node_id, ops in enumerate(per_node_ops):
            self.sim.process(self.node_driver(node_id, iter(ops)),
                             name=f"node{node_id}")
        try:
            self.sim.run(until=until, check_deadlock=True)
        except DeadlockError as err:
            raise DeadlockError(
                err.blocked,
                diagnostics=self._deadlock_diagnostics(err.blocked),
            ) from None
        return self.result()

    def _deadlock_diagnostics(self, blocked: Sequence[str]) -> list:
        """RT001 diagnostics naming what each blocked process waits on.

        Inspects NIC state: posted-but-unmatched receives (with their
        source filters), synchronous sends still awaiting delivery, and
        messages that arrived but were never consumed — the difference
        between "recv with no send" and "send stuck in the network".
        """
        from ..check.diagnostics import Diagnostic, Severity
        nic_by_name = {f"node{nic.node_id}": nic for nic in self.nics}
        out = []
        for name in blocked:
            nic = nic_by_name.get(name)
            if nic is None:
                detail = "internal process (router/link) blocked"
            else:
                waits = [sorted(sources) for _, sources in nic._waiting]
                pending_sends = len(nic._sync_events)
                if waits:
                    detail = "; ".join(
                        f"receive posted for source(s) {w}, no message"
                        for w in waits)
                elif pending_sends:
                    detail = (f"{pending_sends} synchronous send(s) still "
                              f"awaiting delivery")
                else:
                    detail = "blocked outside the NIC"
                buffered = nic.buffered_messages
                if buffered:
                    detail += (f" ({buffered} buffered message(s) never "
                               f"consumed)")
            out.append(Diagnostic(
                rule="RT001", severity=Severity.ERROR,
                message=f"process {name!r}: {detail}",
                subject=f"run:{self.machine.name}", location=name,
                hint="run `repro check` on the trace set for a static "
                     "wait-for-graph analysis"))
        return out

    def result(self) -> CommResult:
        return CommResult(
            self.machine, self.sim.now, self.activity, self.message_latency,
            self.engine.summary(), self.engine.link_utilizations(),
            events_executed=self.sim.events_executed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MultiNodeModel {self.machine.name!r} "
                f"n={self.n_nodes} {self.machine.network.switching}>")
