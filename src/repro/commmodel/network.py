"""The multi-node communication model template (Fig 3b).

Builds the whole interconnect — abstract processors (NICs), routers
(the switching engine's per-packet transfer processes), links, and the
physical topology — and drives one task-level operation stream per
node.  This *is* Mermaid's fast-prototyping mode: "if fast prototyping
of a multicomputer is the primary goal, then the communication model
can be used directly".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..core.config import MachineConfig
from ..observe import MetricRegistry
from ..operations.ops import OpCode, Operation
from ..pearl import DeadlockError, Simulator, TallyMonitor
from ..topology import build_topology
from .message import Message
from .nic import NIC, RecvAnyEvent
from .routing import make_routing
from .switching import make_switching

__all__ = ["MultiNodeModel", "CommResult", "NodeActivity"]


class NodeActivity:
    """Time breakdown for one node's abstract processor."""

    __slots__ = ("node", "compute_cycles", "send_wait_cycles",
                 "recv_wait_cycles", "overhead_cycles", "ops_processed",
                 "finish_time")

    def __init__(self, node: int) -> None:
        self.node = node
        self.compute_cycles = 0.0
        self.send_wait_cycles = 0.0
        self.recv_wait_cycles = 0.0
        self.overhead_cycles = 0.0
        self.ops_processed = 0
        self.finish_time = 0.0

    @property
    def comm_cycles(self) -> float:
        return (self.send_wait_cycles + self.recv_wait_cycles
                + self.overhead_cycles)

    def busy_fraction(self, horizon: float) -> float:
        return self.compute_cycles / horizon if horizon > 0 else 0.0

    def summary(self) -> dict:
        return {
            "node": self.node,
            "compute_cycles": self.compute_cycles,
            "send_wait_cycles": self.send_wait_cycles,
            "recv_wait_cycles": self.recv_wait_cycles,
            "overhead_cycles": self.overhead_cycles,
            "ops_processed": self.ops_processed,
            "finish_time": self.finish_time,
        }


class CommResult:
    """Outcome of one communication-model simulation."""

    def __init__(self, machine: MachineConfig, total_cycles: float,
                 activity: list[NodeActivity], message_latency: TallyMonitor,
                 engine_summary: dict, link_utilization: dict,
                 events_executed: int = 0,
                 fault_summary: Optional[dict] = None) -> None:
        self.machine = machine
        self.total_cycles = total_cycles
        self.activity = activity
        self.message_latency = message_latency
        self.engine_summary = engine_summary
        self.link_utilization = link_utilization
        self.events_executed = events_executed
        #: fault-injection counters (``None`` for fault-free runs): the
        #: injector's summary plus, under ``"transport"``, the reliable
        #: transport's retry/delivery counters.
        self.fault_summary = fault_summary

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.machine.node.cpu.clock_hz

    @property
    def messages_delivered(self) -> int:
        return self.engine_summary["messages_delivered"]

    @property
    def retransmissions(self) -> int:
        """Reliable-transport retransmissions (0 for fault-free runs)."""
        if self.fault_summary is None:
            return 0
        return self.fault_summary.get("transport", {}).get(
            "retransmissions", 0)

    @property
    def delivery_failures(self) -> int:
        """Messages abandoned by the transport (0 for fault-free runs)."""
        if self.fault_summary is None:
            return 0
        return self.fault_summary.get("transport", {}).get(
            "delivery_failed", 0)

    def parallel_efficiency(self) -> float:
        """Mean node busy (compute) fraction — the load-balance view."""
        if self.total_cycles <= 0 or not self.activity:
            return 0.0
        return (sum(a.compute_cycles for a in self.activity)
                / (self.total_cycles * len(self.activity)))

    def summary(self) -> dict:
        out = {
            "machine": self.machine.name,
            "total_cycles": self.total_cycles,
            "seconds": self.seconds,
            "parallel_efficiency": self.parallel_efficiency(),
            "message_latency": self.message_latency.summary(),
            "engine": self.engine_summary,
            "nodes": [a.summary() for a in self.activity],
        }
        # Only faulted runs carry the key, keeping fault-free summaries
        # (and their golden snapshots) byte-identical to seed.
        if self.fault_summary is not None:
            out["faults"] = self.fault_summary
        return out

    def __repr__(self) -> str:
        return (f"<CommResult cycles={self.total_cycles:.0f} "
                f"msgs={self.messages_delivered} "
                f"eff={self.parallel_efficiency():.2f}>")


class MultiNodeModel:
    """The communication model: topology + routers + links + NICs.

    Feed it one task-level operation stream per node via :meth:`run`.
    In hybrid mode (:mod:`repro.hybrid`) the streams come from the
    single-node computational models; in fast-prototyping mode they come
    straight from a trace generator.
    """

    def __init__(self, machine: MachineConfig,
                 sim: Optional[Simulator] = None,
                 registry: Optional[MetricRegistry] = None,
                 faults=None) -> None:
        machine.validate()
        self.machine = machine
        self.sim = sim if sim is not None else Simulator()
        self.topology = build_topology(machine.network.topology)
        self.routing = make_routing(machine.network.routing, self.topology)
        # Fault injection (repro.faults): an empty/absent plan builds
        # nothing at all, so the fault-free path is the seed path.
        # Imported lazily to keep the commmodel <-> faults import DAG
        # acyclic and the fault-free import graph unchanged.
        self.fault_plan = None
        self.injector = None
        self.transport = None
        if faults is not None:
            from ..faults import FaultInjector, as_fault_plan
            self.fault_plan = as_fault_plan(faults)
            if self.fault_plan is not None:
                self.injector = FaultInjector(self.fault_plan,
                                              self.topology, self.sim)
        self.engine = make_switching(self.sim, machine.network,
                                     self.topology, self.routing,
                                     self._on_delivery,
                                     injector=self.injector)
        if self.injector is not None and self.fault_plan.transport.enabled:
            from ..faults import ReliableTransport
            self.transport = ReliableTransport(
                self.sim, self.engine, self.injector, self.fault_plan,
                self.topology, self._deliver_app, self._fail_delivery)
        inject = (self.transport.inject if self.transport is not None
                  else self.engine.inject)
        # Only endpoints (compute nodes) get NICs and drivers; switch
        # nodes of multistage interconnects are routing-only.
        self.nics = [NIC(self.sim, i, machine.network, inject,
                         injector=self.injector)
                     for i in range(self.topology.n_endpoints)]
        self.message_latency = TallyMonitor("message_latency")
        self.activity = [NodeActivity(i)
                         for i in range(self.topology.n_endpoints)]
        self.registry = registry if registry is not None else MetricRegistry()
        self.registry.register("network.message_latency",
                               self.message_latency)
        self.engine.register_metrics(self.registry)
        if self.injector is not None:
            self.registry.register("faults", self.injector.summary)
            if self.transport is not None:
                self.registry.register("faults.transport",
                                       self.transport.summary)
        for nic in self.nics:
            self.registry.register(f"node{nic.node_id}.nic",
                                   nic.stats.summary)
        for act in self.activity:
            self.registry.register(f"node{act.node}.activity", act.summary)

    @property
    def n_nodes(self) -> int:
        return self.topology.n_endpoints

    # -- delivery plumbing ---------------------------------------------------

    def _on_delivery(self, msg: Message) -> None:
        """Switching-engine callback: one *physical* message arrived."""
        if msg.internal:
            # A reliable-transport attempt copy: the transport's sender
            # process owns completion (ack) via the on_deliver hook;
            # attempt copies stay out of application-level metrics.
            msg.on_deliver(msg)
            return
        self.message_latency.record(msg.latency)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("message", "deliver", self.sim.now,
                           f"node{msg.dst}",
                           {"src": msg.src, "dst": msg.dst,
                            "bytes": msg.size, "latency": msg.latency})
        if msg.on_deliver is not None:
            # Protocol-internal traffic (VSM pages, invalidations, ...):
            # handled by its own layer, never enters the application NIC.
            msg.on_deliver(msg)
            return
        self.nics[msg.dst].arrival(msg)
        if msg.synchronous:
            self.nics[msg.src].sender_completion(msg)

    def _deliver_app(self, msg: Message) -> None:
        """Deliver one acknowledged *logical* message (reliable-transport
        path); mirrors the application-facing half of
        :meth:`_on_delivery` so both paths record the same metrics."""
        self.message_latency.record(msg.latency)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("message", "deliver", self.sim.now,
                           f"node{msg.dst}",
                           {"src": msg.src, "dst": msg.dst,
                            "bytes": msg.size, "latency": msg.latency})
        if msg.on_deliver is not None:
            msg.on_deliver(msg)
            return
        self.nics[msg.dst].arrival(msg)
        if msg.synchronous:
            self.nics[msg.src].sender_completion(msg)

    def _fail_delivery(self, msg: Message, err: Exception) -> None:
        """Reliable-transport failure path: surface ``err`` to a blocked
        synchronous sender; asynchronous failures are counter-only."""
        if msg.synchronous:
            self.nics[msg.src].sender_failure(msg, err)

    # -- node driver -------------------------------------------------------------

    def node_driver(self, node_id: int, ops: Iterator[Operation],
                    payload_source=None, result_sink=None):
        """Process body: execute one node's task-level operation stream.

        ``payload_source()`` supplies the host payload of the send being
        processed (execution-driven mode); ``result_sink(value)`` is
        called after each communication operation with the received
        payload (or None), so an interleaved node thread can be resumed
        with it.
        """
        for op in ops:
            yield from self.handle_op(node_id, op, payload_source,
                                      result_sink)
        self.activity[node_id].finish_time = self.sim.now

    def handle_op(self, node_id: int, op: Operation,
                  payload_source=None, result_sink=None):
        """Process one task-level operation (generator; shared by the
        plain driver and the VSM driver)."""
        nic = self.nics[node_id]
        act = self.activity[node_id]
        cfg = self.machine.network
        sim = self.sim
        if self.injector is not None:
            # Node pauses gate the whole operation stream; hooking here
            # covers the plain, hybrid, and VSM drivers alike.
            yield from self.injector.pause(node_id)
        act.ops_processed += 1
        if isinstance(op, RecvAnyEvent):
            t0 = sim.now
            msg = yield from nic.recv_any(op.sources)
            waited = sim.now - t0
            act.overhead_cycles += min(cfg.recv_overhead, waited)
            act.recv_wait_cycles += max(waited - cfg.recv_overhead, 0.0)
            if result_sink:
                result_sink((msg.src, msg.payload))
            return
        code = op.code
        if code == OpCode.COMPUTE:
            act.compute_cycles += op.arg2
            yield op.arg2
        elif code == OpCode.SEND:
            t0 = sim.now
            payload = payload_source() if payload_source else None
            yield from nic.send(op.peer, op.size, payload)
            waited = sim.now - t0
            act.overhead_cycles += min(cfg.send_overhead, waited)
            act.send_wait_cycles += max(waited - cfg.send_overhead, 0.0)
            if result_sink:
                result_sink(None)
        elif code == OpCode.ASEND:
            t0 = sim.now
            payload = payload_source() if payload_source else None
            yield from nic.asend(op.peer, op.size, payload)
            act.overhead_cycles += sim.now - t0
            if result_sink:
                result_sink(None)
        elif code == OpCode.RECV:
            t0 = sim.now
            msg = yield from nic.recv(op.peer)
            waited = sim.now - t0
            act.overhead_cycles += min(cfg.recv_overhead, waited)
            act.recv_wait_cycles += max(waited - cfg.recv_overhead, 0.0)
            if result_sink:
                result_sink(msg.payload)
        elif code == OpCode.ARECV:
            t0 = sim.now
            msg = yield from nic.arecv(op.peer)
            act.overhead_cycles += sim.now - t0
            if result_sink:
                result_sink(msg.payload if msg is not None else None)
        else:
            raise ValueError(
                f"node {node_id}: computational operation {op!r} in a "
                "task-level trace; run it through the hybrid model "
                "(repro.hybrid) or extract tasks first")

    # -- top-level run --------------------------------------------------------------

    def run(self, per_node_ops: Sequence[Iterable[Operation]],
            until: Optional[float] = None) -> CommResult:
        """Simulate the machine driven by one op stream per node."""
        if len(per_node_ops) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} op streams (one per node), got "
                f"{len(per_node_ops)}")
        for node_id, ops in enumerate(per_node_ops):
            self.sim.process(self.node_driver(node_id, iter(ops)),
                             name=f"node{node_id}")
        if self.transport is not None:
            from ..faults.transport import DeliveryFailed
        else:
            DeliveryFailed = ()      # matches nothing in the except below
        try:
            self.sim.run(until=until, check_deadlock=True)
        except DeadlockError as err:
            raise DeadlockError(
                err.blocked,
                diagnostics=self._deadlock_diagnostics(err.blocked),
            ) from None
        except DeliveryFailed as err:
            # Surface the partial result so callers can inspect how far
            # the machine got before the message was abandoned.
            err.result = self.result()
            raise
        return self.result()

    def _deadlock_diagnostics(self, blocked: Sequence[str]) -> list:
        """RT001 diagnostics naming what each blocked process waits on.

        Inspects NIC state: posted-but-unmatched receives (with their
        source filters), synchronous sends still awaiting delivery, and
        messages that arrived but were never consumed — the difference
        between "recv with no send" and "send stuck in the network".
        """
        from ..check.diagnostics import Diagnostic, Severity
        nic_by_name = {f"node{nic.node_id}": nic for nic in self.nics}
        out = []
        for name in blocked:
            nic = nic_by_name.get(name)
            if nic is None:
                detail = "internal process (router/link) blocked"
            else:
                waits = [sorted(sources) for _, sources in nic._waiting]
                pending_sends = len(nic._sync_events)
                if waits:
                    detail = "; ".join(
                        f"receive posted for source(s) {w}, no message"
                        for w in waits)
                elif pending_sends:
                    detail = (f"{pending_sends} synchronous send(s) still "
                              f"awaiting delivery")
                else:
                    detail = "blocked outside the NIC"
                buffered = nic.buffered_messages
                if buffered:
                    detail += (f" ({buffered} buffered message(s) never "
                               f"consumed)")
            out.append(Diagnostic(
                rule="RT001", severity=Severity.ERROR,
                message=f"process {name!r}: {detail}",
                subject=f"run:{self.machine.name}", location=name,
                hint="run `repro check` on the trace set for a static "
                     "wait-for-graph analysis"))
        return out

    def result(self) -> CommResult:
        fault_summary = None
        if self.injector is not None:
            fault_summary = self.injector.summary()
            if self.transport is not None:
                fault_summary["transport"] = self.transport.summary()
        return CommResult(
            self.machine, self.sim.now, self.activity, self.message_latency,
            self.engine.summary(), self.engine.link_utilizations(),
            events_executed=self.sim.events_executed,
            fault_summary=fault_summary)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MultiNodeModel {self.machine.name!r} "
                f"n={self.n_nodes} {self.machine.network.switching}>")
