"""The abstract processor — a node's interface to the network (Fig 3b).

"Each abstract processor component within the multi-node model reads an
incoming operation trace, processes the compute operations and
dispatches the communication requests to a router component."

The NIC implements the four message-passing operations of Table 1:

* ``send``  — synchronous: the sender blocks until the message has been
  delivered at the destination node (the acknowledgement path is
  modelled as instantaneous; a documented simplification).
* ``asend`` — asynchronous: the sender pays only the software send
  overhead and continues; the message travels independently.
* ``recv``  — synchronous: blocks until a message *from the named
  source* has arrived, then pays the receive overhead.
* ``arecv`` — asynchronous: consumes an already-arrived message, or
  pre-posts a receive that will absorb the message on arrival, without
  blocking either way.

Arrived messages are buffered per source in FIFO order, so messages
between a given pair are matched in order.

As an extension (modelling the transputer's occam ``ALT``), ``recv_any``
blocks until a message from *any* of a set of sources arrives — the
primitive self-scheduling runtimes (task farms) are built on.
:class:`RecvAnyEvent` is its task-level trace representation (a global
event outside Table 1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional

from ..core.config import NetworkConfig
from ..pearl import Event, Simulator, TallyMonitor
from .message import Message

__all__ = ["NIC", "NICStats", "RecvAnyEvent"]


class RecvAnyEvent:
    """Task-level 'receive from any of ``sources``' global event.

    Not a Table-1 operation: an extension the drivers accept alongside
    the standard five communication operations.
    """

    __slots__ = ("sources",)

    is_global_event = True
    code = None

    def __init__(self, sources: Iterable[int]) -> None:
        self.sources = frozenset(int(s) for s in sources)
        if not self.sources:
            raise ValueError("recv_any needs at least one source")

    def __repr__(self) -> str:
        return f"recv_any(sources={sorted(self.sources)})"


class NICStats:
    """Per-node communication statistics."""

    __slots__ = ("messages_sent", "messages_received", "bytes_sent",
                 "bytes_received", "send_wait", "recv_wait", "pre_posted")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.send_wait = TallyMonitor("send_wait")
        self.recv_wait = TallyMonitor("recv_wait")
        self.pre_posted = 0

    def summary(self) -> dict:
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "send_wait": self.send_wait.summary(),
            "recv_wait": self.recv_wait.summary(),
            "pre_posted_receives": self.pre_posted,
        }


class NIC:
    """Network interface of one node.

    ``inject`` is supplied by the network model and hands a message to
    the switching engine; ``on_delivery(msg, event)`` registers the
    sender-side completion event for synchronous sends.
    """

    __slots__ = ("sim", "node_id", "cfg", "inject", "stats", "_arrivals",
                 "_waiting", "_preposted", "_sync_events", "_injector")

    def __init__(self, sim: Simulator, node_id: int, cfg: NetworkConfig,
                 inject: Callable[[Message], None],
                 injector=None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.cfg = cfg
        self.inject = inject
        # Optional repro.faults.FaultInjector: the send path waits out
        # this node's NIC-stall windows before injecting.
        self._injector = injector
        self.stats = NICStats()
        self._arrivals: dict[int, deque[Message]] = {}
        # FIFO of (event, source-filter) — a filter is a frozenset of
        # acceptable sources, so recv(s) and recv_any({...}) share one
        # ordered queue (first matching waiter wins).
        self._waiting: deque[tuple[Event, frozenset]] = deque()
        self._preposted: dict[int, int] = {}
        self._sync_events: dict[int, Event] = {}

    # -- network-side interface -------------------------------------------

    def arrival(self, msg: Message) -> None:
        """Called by the network model when ``msg`` is fully delivered."""
        self.stats.messages_received += 1
        self.stats.bytes_received += msg.size
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("nic", "arrival", self.sim.now,
                           f"nic{self.node_id}",
                           {"src": msg.src, "bytes": msg.size})
        src = msg.src
        for i, (ev, sources) in enumerate(self._waiting):
            if src in sources:
                del self._waiting[i]
                ev.trigger(msg)
                return
        if self._preposted.get(src, 0) > 0:
            # An arecv already posted for this source absorbs the message.
            self._preposted[src] -= 1
            return
        self._arrivals.setdefault(src, deque()).append(msg)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(self.sim.now, f"nic{self.node_id}.buffered",
                           self.buffered_messages, cat="nic")

    def sender_completion(self, msg: Message) -> None:
        """Called at delivery time to unblock a synchronous sender."""
        ev = self._sync_events.pop(msg.id, None)
        if ev is not None:
            ev.trigger(msg)

    def sender_failure(self, msg: Message, err: Exception) -> None:
        """Unblock a synchronous sender with a delivery failure.

        The reliable transport calls this when ``msg`` exhausted its
        retry budget; the blocked :meth:`send` re-raises ``err`` in the
        sending process.
        """
        ev = self._sync_events.pop(msg.id, None)
        if ev is not None:
            ev.trigger(err)

    # -- Table-1 operations (generators; ``yield from`` in a process) ------

    def send(self, dest: int, size: int, payload: object = None):
        """Synchronous send: returns (via StopIteration) the Message."""
        msg = Message(self.node_id, dest, size, synchronous=True,
                      payload=payload)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        if self.cfg.send_overhead:
            yield self.cfg.send_overhead
        if self._injector is not None:
            yield from self._injector.stall(self.node_id)
        done = Event(self.sim, f"send{msg.id}.done")
        self._sync_events[msg.id] = done
        t0 = self.sim.now
        self.inject(msg)
        completed = yield done
        if isinstance(completed, Exception):
            raise completed
        self.stats.send_wait.record(self.sim.now - t0)
        return msg

    def asend(self, dest: int, size: int, payload: object = None):
        """Asynchronous send: overhead only, message travels on its own."""
        msg = Message(self.node_id, dest, size, synchronous=False,
                      payload=payload)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        if self.cfg.send_overhead:
            yield self.cfg.send_overhead
        if self._injector is not None:
            yield from self._injector.stall(self.node_id)
        self.inject(msg)
        return msg

    def recv(self, source: int):
        """Synchronous receive from ``source``; returns the Message."""
        return (yield from self.recv_any((source,)))

    def recv_any(self, sources):
        """Synchronous receive from any of ``sources`` (occam-ALT style).

        Buffered messages win in arrival order across the sources;
        otherwise blocks until the first matching arrival.
        """
        t0 = self.sim.now
        sources = frozenset(sources)
        best: Optional[deque] = None
        best_key = None
        for src in sources:
            queue = self._arrivals.get(src)
            if queue:
                key = (queue[0].t_deliver, queue[0].id)
                if best_key is None or key < best_key:
                    best, best_key = queue, key
        if best is not None:
            msg = best.popleft()
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.counter(self.sim.now, f"nic{self.node_id}.buffered",
                               self.buffered_messages, cat="nic")
        else:
            ev = Event(self.sim,
                       f"nic{self.node_id}.recv_any({sorted(sources)})")
            self._waiting.append((ev, sources))
            msg = yield ev
        self.stats.recv_wait.record(self.sim.now - t0)
        if self.cfg.recv_overhead:
            yield self.cfg.recv_overhead
        return msg

    def arecv(self, source: int):
        """Asynchronous receive: never blocks on the network.

        Consumes an already-buffered message if present, otherwise
        pre-posts so the next arrival from ``source`` is absorbed on
        delivery.  Returns the Message or None.
        """
        buffered = self._arrivals.get(source)
        msg: Optional[Message] = None
        if buffered:
            msg = buffered.popleft()
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.counter(self.sim.now, f"nic{self.node_id}.buffered",
                               self.buffered_messages, cat="nic")
        else:
            self._preposted[source] = self._preposted.get(source, 0) + 1
            self.stats.pre_posted += 1
        if self.cfg.recv_overhead:
            yield self.cfg.recv_overhead
        return msg

    # -- introspection ------------------------------------------------------

    @property
    def buffered_messages(self) -> int:
        return sum(len(q) for q in self._arrivals.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<NIC node={self.node_id} sent={self.stats.messages_sent} "
                f"recv={self.stats.messages_received}>")
