"""Routing strategies — "a configurable routing ... strategy" (Sec 4.2).

A routing function maps (source, destination) to the full node path the
packet will take.  Both strategies here are deterministic and minimal:

* **dimension-order** — the classic multicomputer scheme: correct one
  coordinate axis at a time (X then Y then ...), taking the shorter way
  around on tori; on hypercubes, fix differing address bits from LSB to
  MSB.  Deadlock-free on meshes and hypercubes; on rings/tori the
  wormhole engine adds dateline virtual channels to break the cycle.
* **shortest-path** — BFS next-hop tables over the arbitrary topology
  graph (lowest-numbered next hop breaks ties, so paths are
  deterministic and consistent hop by hop).
* **random-minimal** (adaptive, an extension the template's
  "configurable routing strategy" invites) — every packet samples a
  uniformly random *minimal* path, spreading load across the minimal
  DAG.  Seeded, hence reproducible.  Note: non-dimension-ordered paths
  can create cyclic channel dependencies, so pair it with buffered
  switching (store-and-forward / virtual cut-through), not wormhole.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ConfigError
from ..topology import Topology

__all__ = ["RoutingFunction", "DimensionOrderRouting", "ShortestPathRouting",
           "RandomMinimalRouting", "make_routing"]


class RoutingFunction:
    """Base: computes complete (deterministic, minimal) node paths."""

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self._cache: dict[tuple[int, int], list[int]] = {}

    def path(self, src: int, dst: int) -> list[int]:
        """Node sequence ``[src, ..., dst]`` (length 1 when src == dst)."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute(src, dst)
            self._cache[key] = cached
        return cached

    def hops(self, src: int, dst: int) -> int:
        return len(self.path(src, dst)) - 1

    def _compute(self, src: int, dst: int) -> list[int]:
        raise NotImplementedError


class DimensionOrderRouting(RoutingFunction):
    """Dimension-order (e-cube / XY) routing on mesh, torus or hypercube."""

    def __init__(self, topo: Topology) -> None:
        if topo.kind not in ("mesh", "torus", "hypercube", "ring"):
            raise ConfigError(
                f"dimension-order routing needs a mesh/torus/hypercube/ring "
                f"topology, not {topo.kind!r}")
        super().__init__(topo)
        if topo.kind != "hypercube":
            self._index = {c: i for i, c in enumerate(topo.coords or [])}

    def _compute(self, src: int, dst: int) -> list[int]:
        topo = self.topo
        if topo.kind == "hypercube":
            return self._hypercube_path(src, dst)
        if topo.kind == "ring":
            return self._ring_path(src, dst)
        return self._grid_path(src, dst)

    def _hypercube_path(self, src: int, dst: int) -> list[int]:
        path = [src]
        cur = src
        diff = src ^ dst
        bit = 0
        while diff:
            if diff & 1:
                cur ^= (1 << bit)
                path.append(cur)
            diff >>= 1
            bit += 1
        return path

    def _ring_path(self, src: int, dst: int) -> list[int]:
        n = self.topo.n
        path = [src]
        if src == dst:
            return path
        fwd = (dst - src) % n
        step = 1 if fwd <= n - fwd else -1
        cur = src
        while cur != dst:
            cur = (cur + step) % n
            path.append(cur)
        return path

    def _grid_path(self, src: int, dst: int) -> list[int]:
        topo = self.topo
        dims = topo.dims
        wrap = topo.kind == "torus"
        cur = list(topo.coords[src])
        goal = topo.coords[dst]
        path = [src]
        for axis, extent in enumerate(dims):
            while cur[axis] != goal[axis]:
                fwd = (goal[axis] - cur[axis]) % extent
                if wrap and extent > 2:
                    step = 1 if fwd <= extent - fwd else -1
                    cur[axis] = (cur[axis] + step) % extent
                else:
                    cur[axis] += 1 if goal[axis] > cur[axis] else -1
                path.append(self._index[tuple(cur)])
        return path


class ShortestPathRouting(RoutingFunction):
    """BFS next-hop tables for arbitrary topologies.

    The table is built lazily per destination; paths are hop-by-hop
    consistent (each node's next hop toward ``dst`` is fixed), which is
    what a table-driven hardware router would do.
    """

    def __init__(self, topo: Topology) -> None:
        super().__init__(topo)
        # _next_hop[dst][node] = neighbour of node one hop closer to dst.
        self._next_hop: dict[int, list[int]] = {}

    def _table_for(self, dst: int) -> list[int]:
        table = self._next_hop.get(dst)
        if table is not None:
            return table
        topo = self.topo
        dist = topo.shortest_path_lengths(dst)
        if min(dist) < 0:
            raise ConfigError("topology is disconnected; no routes exist")
        table = [-1] * topo.n
        for node in range(topo.n):
            if node == dst:
                continue
            # Lowest-numbered neighbour strictly closer to dst.
            table[node] = min(v for v in topo.neighbors(node)
                              if dist[v] == dist[node] - 1)
        self._next_hop[dst] = table
        return table

    def _compute(self, src: int, dst: int) -> list[int]:
        if src == dst:
            return [src]
        table = self._table_for(dst)
        path = [src]
        cur = src
        while cur != dst:
            cur = table[cur]
            path.append(cur)
        return path


class RandomMinimalRouting(RoutingFunction):
    """Adaptive: a fresh uniformly-random minimal path per packet.

    The minimal-path DAG toward each destination is derived from BFS
    distances (cached per destination); :meth:`path` samples a walk
    through it.  Determinism comes from the seeded generator: the same
    seed and call sequence produce the same paths.
    """

    def __init__(self, topo: Topology, seed: int = 0) -> None:
        super().__init__(topo)
        self._rng = np.random.default_rng(seed)
        self._dist: dict[int, list[int]] = {}

    def _dist_to(self, dst: int) -> list[int]:
        dist = self._dist.get(dst)
        if dist is None:
            dist = self.topo.shortest_path_lengths(dst)
            if min(dist) < 0:
                raise ConfigError("topology is disconnected; no routes exist")
            self._dist[dst] = dist
        return dist

    def path(self, src: int, dst: int) -> list[int]:
        # No caching: each call is a fresh sample.
        if src == dst:
            return [src]
        dist = self._dist_to(dst)
        topo = self.topo
        rng = self._rng
        path = [src]
        cur = src
        while cur != dst:
            options = [v for v in topo.neighbors(cur)
                       if dist[v] == dist[cur] - 1]
            cur = options[int(rng.integers(len(options)))] \
                if len(options) > 1 else options[0]
            path.append(cur)
        return path

    def _compute(self, src: int, dst: int) -> list[int]:  # pragma: no cover
        return self.path(src, dst)


def make_routing(kind: str, topo: Topology,
                 seed: int = 0) -> RoutingFunction:
    """Build the routing function named by ``NetworkConfig.routing``."""
    if kind == "dimension_order":
        if topo.kind in ("mesh", "torus", "hypercube", "ring"):
            return DimensionOrderRouting(topo)
        # Dimension order is undefined on irregular graphs; fall back to
        # deterministic shortest-path, as a real workbench user would.
        return ShortestPathRouting(topo)
    if kind == "shortest_path":
        return ShortestPathRouting(topo)
    if kind == "random_minimal":
        return RandomMinimalRouting(topo, seed)
    raise ConfigError(f"unknown routing strategy {kind!r}")
