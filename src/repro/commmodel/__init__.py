"""``repro.commmodel`` — the multi-node communication model (Fig 3b).

Abstract processors (NICs), routers with configurable routing and
switching strategies, communication links with virtual channels, and
the network model that drives task-level operation traces through them.
"""

from .link import Link
from .message import Message, Packet
from .network import CommResult, MultiNodeModel, NodeActivity
from .nic import NIC, NICStats, RecvAnyEvent
from .routing import (
    DimensionOrderRouting,
    RandomMinimalRouting,
    RoutingFunction,
    ShortestPathRouting,
    make_routing,
)
from .switching import (
    StoreAndForward,
    SwitchingEngine,
    VirtualCutThrough,
    Wormhole,
    make_switching,
)

__all__ = [
    "CommResult", "DimensionOrderRouting", "Link", "Message",
    "MultiNodeModel", "NIC", "NICStats", "NodeActivity", "Packet",
    "RandomMinimalRouting", "RecvAnyEvent",
    "RoutingFunction", "ShortestPathRouting", "StoreAndForward",
    "SwitchingEngine", "VirtualCutThrough", "Wormhole", "make_routing",
    "make_switching",
]
