"""Communication links — the physical channels between routers.

Each unidirectional link has a bandwidth (bytes per cycle), a wire
latency (cycles per hop), and one kernel resource per virtual channel
for contention.  Utilization and traffic statistics feed the analysis
tools and the F3b network-sweep benchmark.
"""

from __future__ import annotations

from ..core.config import NetworkConfig
from ..pearl import Resource, Simulator

__all__ = ["Link"]


class Link:
    """One unidirectional link with ``n_vcs`` virtual channels."""

    __slots__ = ("sim", "src", "dst", "bandwidth", "latency", "vcs",
                 "packets", "bytes_moved", "busy_cycles")

    def __init__(self, sim: Simulator, src: int, dst: int,
                 cfg: NetworkConfig, n_vcs: int = 1,
                 bandwidth_scale: float = 1.0) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        # Fat links (fat-tree upper levels) carry a capacity multiplier.
        self.bandwidth = cfg.link_bandwidth * bandwidth_scale
        self.latency = cfg.link_latency
        self.vcs = [Resource(sim, 1, f"link{src}->{dst}/vc{i}")
                    for i in range(n_vcs)]
        self.packets = 0
        self.bytes_moved = 0
        self.busy_cycles = 0.0

    def transfer_cycles(self, nbytes: int) -> float:
        """Serialization time for ``nbytes`` at this link's bandwidth."""
        return nbytes / self.bandwidth

    def account(self, nbytes: int, busy: float) -> None:
        """Record one packet's traffic (called by the switching engine)."""
        self.packets += 1
        self.bytes_moved += nbytes
        self.busy_cycles += busy

    def cross_faults(self, injector, pkt):
        """Consult the fault injector for one packet crossing this link.

        Generator (``yield from`` inside a switching-engine transfer
        process): waits out any down window first — the wire is dead,
        the packet is not — then draws the drop/corrupt verdict for
        this crossing.  Returns ``"ok"``, ``"drop"``, or ``"corrupt"``.
        """
        sim = self.sim
        while True:
            delay = injector.down_delay(self.src, self.dst, sim.now)
            if delay <= 0.0:
                break
            injector.record_down_wait(self.src, self.dst, delay, pkt)
            yield delay
        return injector.crossing(self.src, self.dst, pkt)

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``horizon`` cycles."""
        return self.busy_cycles / horizon if horizon > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Link {self.src}->{self.dst} pkts={self.packets} "
                f"bytes={self.bytes_moved}>")
