"""Mermaid reproduction — an architecture workbench for multicomputers.

A from-scratch Python reproduction of the Mermaid simulation environment
(Pimentel & Hertzberger, "An Architecture Workbench for Multicomputers",
IPPS 1997): execution-driven multicomputer simulation at the level of
abstract machine instructions, with a fast task-level prototyping mode,
parameterized single-node (CPU/cache/bus/memory) and multi-node
(router/link/topology) architecture templates, stochastic and
annotation-based trace generators, and shared-memory / hybrid
architecture support.

Quick start::

    from repro import Workbench, t805_grid
    from repro.apps import make_pingpong

    wb = Workbench(t805_grid(2, 2))
    result = wb.run_hybrid(make_pingpong(size=4096))
    print(result.total_cycles, result.comm.message_latency.mean)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.pearl`      — discrete-event simulation kernel
* :mod:`repro.operations` — abstract machine instructions (Table 1)
* :mod:`repro.tracegen`   — stochastic generator, annotation translator
* :mod:`repro.compmodel`  — single-node computational model
* :mod:`repro.commmodel`  — multi-node communication model
* :mod:`repro.topology`   — interconnect topologies
* :mod:`repro.hybrid`     — the hybrid (accurate-mode) co-simulation
* :mod:`repro.sharedmem`  — SMP nodes and SMP clusters
* :mod:`repro.machines`   — presets (T805 grid, PowerPC 601) + calibration
* :mod:`repro.apps`       — instrumentation API + reference workloads
* :mod:`repro.analysis`   — slowdown, timelines, statistics, reports
* :mod:`repro.core`       — configuration, Workbench facade, experiments
* :mod:`repro.parallel`   — parallel sweep execution, result caching,
  backend-agnostic job executors
* :mod:`repro.service`    — async HTTP job server (simulation as a
  service: ``repro serve`` / ``submit`` / ``status`` / ``fetch``)
* :mod:`repro.faults`     — deterministic fault injection + reliable transport
* :mod:`repro.chaos`      — fault-sweep campaigns with SLO verdicts
* :mod:`repro.check`      — static analyzer (``repro check``) + sanitizer
* :mod:`repro.observe`    — event tracing (Chrome export) + metric registry
"""

from .core.config import (
    BusConfig,
    CPUConfig,
    CacheConfig,
    CacheLevelConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from .check import (
    CheckError,
    DeterminismSanitizer,
    Diagnostic,
    Report,
    Severity,
    check_description,
    check_machine,
    check_traces,
)
from .chaos import CampaignSpec, ChaosResult, run_campaign
from .core.experiment import Sweep, vary_machine
from .faults import DeliveryFailed, FaultPlan
from .core.workbench import Workbench
from .observe import MetricRegistry, Tracer
from .parallel import (
    Executor,
    InProcessExecutor,
    JobSpec,
    LocalAsyncExecutor,
    ParallelSweepRunner,
    ResultCache,
)
from .machines.presets import (
    generic_multicomputer,
    powerpc601_node,
    smp_node,
    t805_grid,
)

__version__ = "1.0.0"

__all__ = [
    "BusConfig", "CPUConfig", "CacheConfig", "CacheLevelConfig",
    "CampaignSpec", "ChaosResult",
    "CheckError", "DeliveryFailed", "DeterminismSanitizer", "Diagnostic",
    "Executor", "FaultPlan", "InProcessExecutor", "JobSpec",
    "LocalAsyncExecutor", "MachineConfig",
    "MemoryConfig", "MetricRegistry", "NetworkConfig", "NodeConfig",
    "ParallelSweepRunner", "Report", "ResultCache", "Severity", "Sweep",
    "TopologyConfig", "Tracer",
    "Workbench", "__version__", "check_description", "check_machine",
    "check_traces", "generic_multicomputer", "powerpc601_node",
    "run_campaign", "smp_node", "t805_grid", "vary_machine",
]
