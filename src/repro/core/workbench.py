"""The workbench facade — Fig 1's layering as one entry point.

"Mermaid effectively offers a workbench for computer architects
designing multicomputer systems, supporting the performance evaluation
of a wide range of architectural design options by means of
parameterization."

A :class:`Workbench` binds one :class:`~repro.core.config.MachineConfig`
and exposes every simulation mode:

=====================  ======================================  ============
mode                   input (application level)               accuracy/cost
=====================  ======================================  ============
``run_hybrid``         instrumented program (live threads)     highest
``run_mixed_traces``   recorded instruction-level traces       high
``run_comm_only``      task-level traces                       fast
``run_stochastic``     probabilistic description               fastest
``run_single_node``    computational trace, one node           node studies
``run_smp``            per-CPU traces, one shared-memory node  SMP studies
=====================  ======================================  ============
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .experiment import Sweep

from ..commmodel.network import CommResult, MultiNodeModel
from ..compmodel.node import NodeResult, SingleNodeModel
from ..hybrid.model import HybridModel, HybridResult
from ..operations.ops import Operation
from ..operations.trace import TraceSet
from ..operations.validate import validate_trace_set
from ..sharedmem.hybridarch import HybridArchitectureModel, HybridArchResult
from ..sharedmem.smp import SMPNodeModel, SMPResult
from ..tracegen.descriptions import StochasticAppDescription
from ..tracegen.stochastic import StochasticGenerator
from .config import MachineConfig

__all__ = ["Workbench"]


class Workbench:
    """One machine configuration, every simulation mode.

    Each ``run_*`` call builds a fresh model (simulations are
    independent); the config object itself is never mutated.
    """

    def __init__(self, machine: MachineConfig, faults=None) -> None:
        machine.validate()
        self.machine = machine
        # Optional fault-injection plan (repro.faults): a FaultPlan,
        # plan dict, or path to a plan JSON file.  Applied to every
        # network-driven run_* mode; empty plans are normalized away by
        # the model, so ``faults=FaultPlan()`` is identical to None.
        self.faults = faults

    @property
    def n_nodes(self) -> int:
        return self.machine.n_nodes

    # -- accurate mode (Fig 2 hybrid) -------------------------------------

    def run_hybrid(self, application) -> HybridResult:
        """Execution-driven hybrid simulation of an instrumented program.

        ``application`` is a :class:`~repro.apps.api.ThreadedApplication`
        or a plain ``program(ctx)`` callable (run SPMD on every node).
        """
        from ..apps.api import ThreadedApplication
        if callable(application) and not isinstance(application,
                                                    ThreadedApplication):
            application = ThreadedApplication(application, self.n_nodes)
        model = HybridModel(self.machine, faults=self.faults)
        return model.run_application(application)

    def run_mixed_traces(self, traces: Union[TraceSet, Sequence[Iterable[Operation]]],
                         validate: bool = False) -> HybridResult:
        """Hybrid simulation from pre-recorded mixed traces."""
        if validate and isinstance(traces, TraceSet):
            validate_trace_set(traces)
        model = HybridModel(self.machine, faults=self.faults)
        return model.run_traces(traces)

    # -- fast prototyping (communication model only) ---------------------------

    def run_comm_only(self, task_traces: Union[TraceSet,
                                               Sequence[Iterable[Operation]]]
                      ) -> CommResult:
        """Task-level simulation: "the communication model ... directly"."""
        model = MultiNodeModel(self.machine, faults=self.faults)
        return model.run(list(task_traces))

    def run_stochastic(self, desc: StochasticAppDescription,
                       level: str = "task", *, rounds: int = 50,
                       ops_per_node: int = 20000, seed: int = 0
                       ) -> Union[CommResult, HybridResult]:
        """Stochastic workload through either abstraction level (Fig 4)."""
        gen = StochasticGenerator(desc, self.n_nodes, seed=seed)
        if level == "task":
            return self.run_comm_only(gen.generate_task_level(rounds))
        if level == "instruction":
            return self.run_mixed_traces(
                gen.generate_instruction_level(ops_per_node))
        raise ValueError(f"unknown level {level!r}; use 'task' or "
                         "'instruction'")

    # -- node-level studies -------------------------------------------------------

    def run_single_node(self, ops: Iterable[Operation]) -> NodeResult:
        """Computational trace on one instance of the node template."""
        node = SingleNodeModel(self.machine.node)
        return node.run_trace(ops)

    def run_smp(self, per_cpu_ops: Sequence[Iterable[Operation]]
                ) -> SMPResult:
        """Shared-memory simulation of one multi-CPU node (Sec 4.3)."""
        smp = SMPNodeModel(self.machine.node)
        return smp.run_traces(per_cpu_ops)

    def run_smp_cluster(self,
                        per_node_per_cpu_ops: Sequence[Sequence[Iterable[Operation]]]
                        ) -> HybridArchResult:
        """Hybrid architecture: SMP nodes over the message network."""
        model = HybridArchitectureModel(self.machine)
        return model.run_traces(per_node_per_cpu_ops)

    # -- virtual shared memory (Sec 5.1 future work) ------------------------

    def run_vsm(self, application, vsm_config=None):
        """Hybrid simulation with the virtual-shared-memory layer.

        ``application`` programs use :class:`repro.vsm.SharedRegion`
        instead of explicit message passing.
        """
        from ..apps.api import ThreadedApplication
        from ..vsm import VSMModel
        if callable(application) and not isinstance(application,
                                                    ThreadedApplication):
            application = ThreadedApplication(application, self.n_nodes)
        model = VSMModel(self.machine, vsm_config)
        return model.run_application(application)

    # -- static analysis ----------------------------------------------------

    def check(self, *, traces: Optional[TraceSet] = None,
              description: Optional[StochasticAppDescription] = None):
        """Statically analyze this machine (and optionally a workload).

        Runs :func:`repro.check.check_machine` on the bound config,
        plus :func:`~repro.check.check_traces` /
        :func:`~repro.check.check_description` when the corresponding
        workload artifact is given.  Returns the merged
        :class:`~repro.check.Report`.
        """
        from ..check import check_description, check_machine, check_traces
        report = check_machine(self.machine)
        if traces is not None:
            report.merge(check_traces(traces, n_nodes=self.n_nodes))
        if description is not None:
            report.merge(check_description(description,
                                           n_nodes=self.n_nodes))
        return report

    def bound(self, traces: Union[TraceSet, Sequence[Iterable[Operation]],
                                  None] = None, *,
              application: Optional[str] = None, subject: str = ""):
        """Static performance bounds of one workload — no simulation.

        Computes the task-graph critical path, per-directed-link traffic
        demand over the configured routing, and LogP-style per-class
        latency/bandwidth floors for task-level ``traces`` (or a bundled
        ``application`` name: ``"pingpong"``, ``"alltoall"``,
        ``"pipeline"``).  Returns a
        :class:`repro.bounds.BoundReport`; every quantity is a certified
        lower bound on what a correct simulation can report, which is
        what the PB0xx cross-check rules lean on.
        """
        from ..bounds import compute_bounds
        if (traces is None) == (application is None):
            raise ValueError("pass exactly one of traces= or application=")
        if traces is None:
            from ..apps import (alltoall_task_traces, pingpong_task_traces,
                                pipeline_task_traces)
            apps = {"pingpong": pingpong_task_traces,
                    "alltoall": alltoall_task_traces,
                    "pipeline": pipeline_task_traces}
            if application not in apps:
                raise ValueError(f"unknown application {application!r}; "
                                 f"choose from: {', '.join(sorted(apps))}")
            traces = apps[application](self.n_nodes)
            subject = subject or f"bounds:{application}:{self.machine.name}"
        return compute_bounds(self.machine, traces,
                              subject=subject or f"bounds:{self.machine.name}")

    def verify(self, traces: Union[TraceSet, Sequence[Iterable[Operation]],
                                   None] = None, *,
               application: Optional[str] = None, budget: int = 64,
               workers: int = 1, mode: str = "dpor"):
        """Explore same-time schedule orderings of one workload.

        Runs the workload under the controllable tie-break scheduler
        and reduces every contention cluster the sanitizer flags to a
        verdict — confirmed race, reachable deadlock, proven benign, or
        budget-truncated.  Pass task-level ``traces`` (communication
        model) or a bundled ``application`` name (``"masterworker"``
        runs execution-driven hybrid).  Returns a
        :class:`repro.verify.VerifyResult`; ``workers > 1`` shards
        independent schedules over the :mod:`repro.parallel` pool.
        """
        from ..verify import (ScheduleExplorer, TraceVerifyTarget,
                              app_verify_target)
        if (traces is None) == (application is None):
            raise ValueError("pass exactly one of traces= or application=")
        if traces is not None:
            target = TraceVerifyTarget(self.machine, traces)
        else:
            target = app_verify_target(self.machine, application)
        explorer = ScheduleExplorer(budget=budget, mode=mode)
        return explorer.explore(target, workers=workers)

    def chaos(self, campaign, runner=None, *,
              application: Optional[str] = None, workers: int = 1,
              cache=None, workload_id: Optional[str] = None,
              progress=None, timing: bool = False, tracer=None,
              registry=None):
        """Run a chaos campaign against this machine.

        ``campaign`` is a :class:`repro.chaos.CampaignSpec`, a spec
        dict, or a path to a spec JSON file; its generators expand into
        a fault-plan family (severity ladders, single-link-down packs,
        ...) that is swept as rungs over the parallel-sweep machinery
        and folded into SLO verdicts.  Pass a picklable ``runner``
        accepting ``(machine, faults=plan)``, or a bundled
        ``application`` name to use
        :class:`repro.chaos.AppCampaignRunner`.  Returns a
        :class:`repro.chaos.ChaosResult`.
        """
        from ..chaos import AppCampaignRunner, run_campaign
        if (runner is None) == (application is None):
            raise ValueError("pass exactly one of runner= or application=")
        if runner is None:
            runner = AppCampaignRunner(application)
        return run_campaign(campaign, self.machine, runner,
                            workload_id=workload_id, workers=workers,
                            cache=cache, progress=progress, timing=timing,
                            tracer=tracer, registry=registry)

    # -- design-space sweeps -------------------------------------------------

    def sweep(self, label: str = "") -> "Sweep":
        """A :class:`~repro.core.experiment.Sweep` rooted at this machine.

        ::

            rows = (wb.sweep("l1 study")
                      .axis("l1_kib", set_l1, [8, 16, 32])
                      .run(run_node, workers=4, cache="~/.cache/repro"))

        ``Sweep.run`` accepts ``workers=`` (process-pool fan-out),
        ``cache=`` (content-addressed result reuse), and ``executor=``
        (a backend-agnostic :class:`repro.parallel.Executor` job
        backend); see :mod:`repro.parallel`.  The same sweeps can be
        served over HTTP by :mod:`repro.service` (``repro serve``).
        """
        from .experiment import Sweep
        return Sweep(self.machine, label)

    # -- trace recording -----------------------------------------------------------

    def record_traces(self, application) -> TraceSet:
        """Execute an instrumented program logically; return its traces."""
        from ..apps.api import ThreadedApplication
        if callable(application) and not isinstance(application,
                                                    ThreadedApplication):
            application = ThreadedApplication(application, self.n_nodes)
        return application.record()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Workbench {self.machine.name!r} nodes={self.n_nodes}>"
