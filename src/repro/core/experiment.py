"""Design-space experiments: parameter sweeps over machine configs.

The workbench's purpose is "the evaluation of a wide range of
architectural design tradeoffs"; a :class:`Sweep` varies one or more
machine parameters across values, runs the same workload on each
variant, and collects metric rows for the report/benchmark layer.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Iterable, Sequence

from .config import MachineConfig

__all__ = ["Sweep", "vary_machine"]

Mutator = Callable[[MachineConfig, Any], None]
Runner = Callable[[MachineConfig], dict]


def vary_machine(base: MachineConfig, mutator: Mutator,
                 values: Iterable[Any]) -> list[MachineConfig]:
    """One machine variant per value; the base config is never mutated.

    ``mutator(machine, value)`` edits the deep-copied variant in place;
    each variant is re-validated.
    """
    variants = []
    for value in values:
        machine = copy.deepcopy(base)
        mutator(machine, value)
        machine.validate()
        variants.append(machine)
    return variants


class Sweep:
    """A one-or-more-axis parameter sweep.

    ::

        sweep = Sweep(base_machine)
        sweep.axis("l1_kib", set_l1_size, [8, 16, 32, 64])
        rows = sweep.run(lambda m: {"cycles": wb(m).run_...})
    """

    def __init__(self, base: MachineConfig, label: str = "") -> None:
        base.validate()
        self.base = base
        self.label = label or base.name
        self._axes: list[tuple[str, Mutator, Sequence[Any]]] = []

    def axis(self, name: str, mutator: Mutator,
             values: Sequence[Any]) -> "Sweep":
        """Add a sweep axis (axes combine as a cross product)."""
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        self._axes.append((name, mutator, list(values)))
        return self

    def points(self, validate: bool = True) -> list[tuple[dict,
                                                          MachineConfig]]:
        """All (coordinates, machine-variant) pairs of the cross product.

        ``validate=True`` (the default) raises on the first invalid
        variant; :meth:`run` passes ``False`` and instead pre-flights
        every variant through the static analyzer so one sick config
        becomes an error row, not an aborted sweep.
        """
        points: list[tuple[dict, MachineConfig]] = [({},
                                                     copy.deepcopy(self.base))]
        for name, mutator, values in self._axes:
            nxt = []
            for coords, machine in points:
                for value in values:
                    variant = copy.deepcopy(machine)
                    mutator(variant, value)
                    nxt.append(({**coords, name: value}, variant))
            points = nxt
        if validate:
            for _, machine in points:
                machine.validate()
        return points

    def run(self, runner: Runner, *, workers: int | None = None,
            cache: Any = None, workload_id: str | None = None,
            on_error: str = "capture", preflight: bool = True,
            progress: Any = None, timing: bool = False,
            faults: Any = None, executor: Any = None) -> list[dict]:
        """Run ``runner(machine) -> metrics`` at every point.

        Returns one row per point: sweep coordinates merged with the
        runner's metric dict.  Rows always come back in point order.

        ``workers``
            fan the points out over a process pool of that size
            (``None``/1 = serial, in-process).  The Pearl kernel is
            deterministic, so parallel rows are identical to serial
            ones (``tests/test_parallel_sweep.py`` asserts this).
        ``cache``
            a :class:`repro.parallel.ResultCache` (or a directory
            path) keyed by ``(machine, workload id, code version)``;
            variants with a cached row are not simulated again.
        ``workload_id``
            cache-key component naming the workload; defaults to the
            runner's qualified name.
        ``on_error``
            ``"capture"`` (default) turns a variant failure into a
            ``{**coords, "error": "Type: msg"}`` row so one sick
            config cannot lose the rest of an overnight sweep;
            ``"raise"`` aborts with
            :class:`repro.parallel.SweepVariantError`.
        ``preflight``
            statically analyze every variant with
            :func:`repro.check.check_machine` before it reaches the
            pool; failing variants become ``CheckError: ...`` rows (or
            raise, per ``on_error``) in milliseconds instead of
            crashing mid-simulation.  ``preflight=False`` restores the
            pre-analyzer behaviour: :meth:`points` validates eagerly
            and the first invalid variant raises ``ConfigError``.
        ``progress``
            ``progress(done, total, row)`` callback fired as each row
            resolves (cache hits included).  Variants that fail
            preflight are reported before the pool starts.
        ``timing``
            add a nondeterministic ``wall_time_s`` column to executed
            rows (opt-in; see
            :meth:`repro.parallel.ParallelSweepRunner.run`).
        ``faults``
            a :class:`repro.faults.FaultPlan` (or plan dict / path to a
            plan JSON file) applied to every variant, **or a sequence
            of plans** — fault severity then becomes the outermost
            sweep axis: each plan runs the whole cross product and rows
            gain a ``faults`` coordinate (the plan's name, or
            ``planN``).  The runner must accept a ``faults=`` keyword
            (forward it to ``Workbench``/``MultiNodeModel``); cache
            keys incorporate the plan digest, so faulty rows never
            collide with fault-free ones.  Empty plans are normalized
            away and behave exactly like ``faults=None``.
        ``executor``
            a :class:`repro.parallel.Executor` to run the (post-
            preflight) points as a job on — e.g. a shared
            :class:`repro.parallel.LocalAsyncExecutor` with crash
            recovery and job timeouts.  Mutually exclusive with
            ``workers`` (the executor owns its worker pool); ``cache``
            falls back to the executor's own cache when ``None``.
            Rows are byte-identical to the pool path — every backend
            funnels through the same
            :func:`repro.parallel.run_cached_sweep` core.
        """
        from ..parallel import (FaultedRunner, ParallelSweepRunner,
                                ResultCache, SweepVariantError)
        if executor is not None and workers is not None:
            raise ValueError("pass either workers= or executor=, not both")
        if faults is not None and isinstance(faults, (list, tuple)):
            from ..faults import as_fault_plan
            rows_all: list[dict] = []
            for i, item in enumerate(faults):
                plan = as_fault_plan(item)
                label = plan.name if (plan is not None and plan.name) \
                    else f"plan{i}"
                sub = self.run(runner, workers=workers, cache=cache,
                               workload_id=workload_id, on_error=on_error,
                               preflight=preflight, progress=progress,
                               timing=timing, faults=plan,
                               executor=executor)
                rows_all.extend({"faults": label, **row} for row in sub)
            return rows_all
        fault_plan = None
        if faults is not None:
            from ..faults import as_fault_plan
            fault_plan = as_fault_plan(faults)
            if fault_plan is not None:
                runner = FaultedRunner(runner, fault_plan)
        if on_error not in ("capture", "raise"):
            raise ValueError(f"on_error must be 'capture' or 'raise', "
                             f"got {on_error!r}")
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        points = self.points(validate=not preflight)
        total = len(points)
        rows: list[dict | None] = [None] * len(points)
        good: list[tuple[int, tuple[dict, MachineConfig]]] = []
        failed = 0
        if preflight:
            from ..check import check_machine
            for idx, (coords, machine) in enumerate(points):
                report = check_machine(machine)
                if report.ok:
                    good.append((idx, (coords, machine)))
                    continue
                message = f"CheckError: {report.summary_message()}"
                if on_error == "raise":
                    raise SweepVariantError(coords, message)
                rows[idx] = {**coords, "error": message}
                failed += 1
                if progress is not None:
                    progress(failed, total, rows[idx])
        else:
            good = list(enumerate(points))
        pool_progress = None
        if progress is not None:
            # The pool counts only its own rows; shift past the
            # preflight failures already reported.
            offset = failed

            def pool_progress(done: int, _pool_total: int, row: dict,
                              ) -> None:
                progress(done + offset, total, row)
        if executor is not None:
            ran = self._run_on_executor(executor, runner,
                                        [pt for _, pt in good],
                                        cache=cache, workload_id=workload_id,
                                        on_error=on_error,
                                        progress=pool_progress,
                                        timing=timing, faults=fault_plan)
        else:
            pool = ParallelSweepRunner(workers=workers or 1, cache=cache)
            ran = pool.run(runner, [pt for _, pt in good],
                           workload_id=workload_id, on_error=on_error,
                           progress=pool_progress, timing=timing,
                           faults=fault_plan)
        for (idx, _), row in zip(good, ran):
            rows[idx] = row
        return rows  # type: ignore[return-value]

    @staticmethod
    def _run_on_executor(executor: Any, runner: Runner,
                         points: Sequence[tuple[dict, MachineConfig]], *,
                         cache: Any, workload_id: str | None,
                         on_error: str, progress: Any, timing: bool,
                         faults: Any) -> list[dict]:
        """Run the surviving points as one executor job, blocking."""
        from ..parallel.executor import JobSpec

        on_event = None
        if progress is not None:
            def on_event(event: dict) -> None:
                if event.get("event") == "progress":
                    progress(event["done"], event["total"], event["row"])
        job_id = executor.submit(
            JobSpec(runner=runner, points=points, workload_id=workload_id,
                    on_error=on_error, timing=timing, faults=faults,
                    cache=cache),
            on_event=on_event)
        status = executor.wait(job_id)
        if status.state != "done":
            raise RuntimeError(
                f"sweep job {job_id!r} {status.state}: {status.error}")
        return executor.result(job_id)
