"""Machine parameterization — the workbench's design-space knobs.

"Every model has a set of machine parameters that is calibrated with
published information or by benchmarking" (Section 3).  All tunable
aspects of the single-node computational template (Fig 3a) and the
multi-node communication template (Fig 3b) are collected here as plain
dataclasses, so an architecture variant is *data*, never code.

All latencies are expressed in CPU **cycles**; ``CPUConfig.clock_hz``
converts simulated cycles to seconds for reporting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from ..operations.optypes import ArithType

__all__ = [
    "CPUConfig", "CacheConfig", "CacheLevelConfig", "BusConfig",
    "MemoryConfig", "NodeConfig", "TopologyConfig", "NetworkConfig",
    "MachineConfig", "ConfigError",
]


class ConfigError(ValueError):
    """An inconsistent or out-of-range machine parameter."""


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass
class CPUConfig:
    """Microprocessor parameters: per-operation costs in cycles.

    The CPU "supports the operation set described in section 3.3"; its
    parameters are simply the cycle cost of each abstract instruction
    class.  Memory operations additionally pay the cache/bus/memory
    latency determined by the rest of the node model.
    """

    name: str = "generic-cpu"
    clock_hz: float = 100e6
    #: cycles per arithmetic op, keyed by :class:`ArithType`.
    add_cycles: dict[ArithType, float] = field(default_factory=lambda: {
        ArithType.INT: 1.0, ArithType.FLOAT: 2.0, ArithType.DOUBLE: 2.0})
    sub_cycles: dict[ArithType, float] = field(default_factory=lambda: {
        ArithType.INT: 1.0, ArithType.FLOAT: 2.0, ArithType.DOUBLE: 2.0})
    mul_cycles: dict[ArithType, float] = field(default_factory=lambda: {
        ArithType.INT: 4.0, ArithType.FLOAT: 4.0, ArithType.DOUBLE: 5.0})
    div_cycles: dict[ArithType, float] = field(default_factory=lambda: {
        ArithType.INT: 20.0, ArithType.FLOAT: 18.0, ArithType.DOUBLE: 32.0})
    loadc_cycles: float = 1.0
    branch_cycles: float = 2.0
    call_cycles: float = 3.0
    ret_cycles: float = 3.0
    #: issue cost of a load/store before any memory-hierarchy latency.
    load_issue_cycles: float = 1.0
    store_issue_cycles: float = 1.0

    def validate(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError(f"clock_hz must be positive, got {self.clock_hz}")
        for table_name in ("add_cycles", "sub_cycles", "mul_cycles",
                           "div_cycles"):
            table = getattr(self, table_name)
            for at in ArithType:
                if at not in table:
                    raise ConfigError(f"{self.name}: {table_name} missing {at.name}")
                if table[at] < 0:
                    raise ConfigError(f"{self.name}: negative {table_name}[{at.name}]")
        for attr in ("loadc_cycles", "branch_cycles", "call_cycles",
                     "ret_cycles", "load_issue_cycles", "store_issue_cycles"):
            if getattr(self, attr) < 0:
                raise ConfigError(f"{self.name}: negative {attr}")


@dataclass
class CacheConfig:
    """One cache in the hierarchy (tags only are simulated; never data)."""

    name: str = "L1"
    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    associativity: int = 4          # 0 = fully associative
    hit_cycles: float = 1.0
    write_policy: str = "write-back"       # or "write-through"
    write_allocate: bool = True
    replacement: str = "lru"               # "lru" | "fifo" | "random"

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        assoc = self.associativity if self.associativity else self.n_lines
        return self.n_lines // assoc

    def validate(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ConfigError(f"{self.name}: line_bytes must be a power of two")
        if self.size_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ConfigError(
                f"{self.name}: size_bytes must be a positive multiple of "
                f"line_bytes")
        assoc = self.associativity if self.associativity else self.n_lines
        if assoc <= 0 or self.n_lines % assoc:
            raise ConfigError(
                f"{self.name}: associativity {self.associativity} does not "
                f"divide {self.n_lines} lines")
        if not _is_pow2(self.n_sets):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")
        if self.write_policy not in ("write-back", "write-through"):
            raise ConfigError(f"{self.name}: unknown write policy "
                              f"{self.write_policy!r}")
        if self.replacement not in ("lru", "fifo", "random"):
            raise ConfigError(f"{self.name}: unknown replacement "
                              f"{self.replacement!r}")
        if self.hit_cycles < 0:
            raise ConfigError(f"{self.name}: negative hit_cycles")


@dataclass
class CacheLevelConfig:
    """One level of the hierarchy: unified, or split I/D at level 1.

    ``instr is None`` means the level is unified (the ``data`` cache
    serves instruction fetches too).
    """

    data: CacheConfig = field(default_factory=CacheConfig)
    instr: Optional[CacheConfig] = None

    @property
    def split(self) -> bool:
        return self.instr is not None

    def validate(self) -> None:
        self.data.validate()
        if self.instr is not None:
            self.instr.validate()


@dataclass
class BusConfig:
    """The node bus: "a simple forwarding mechanism, carrying out
    arbitration upon multiple accesses"."""

    width_bytes: int = 8
    cycles_per_beat: float = 1.0      # cycles to move width_bytes once granted
    arbitration_cycles: float = 1.0   # per grant
    snoop_cycles: float = 1.0         # snoop-response time (coherent nodes)

    def transfer_cycles(self, nbytes: int) -> float:
        """Bus occupancy to move ``nbytes`` (excluding arbitration)."""
        beats = -(-max(nbytes, 1) // self.width_bytes)   # ceil
        return beats * self.cycles_per_beat

    def validate(self) -> None:
        if self.width_bytes <= 0:
            raise ConfigError("bus width_bytes must be positive")
        if self.cycles_per_beat <= 0:
            raise ConfigError("bus cycles_per_beat must be positive")
        if self.arbitration_cycles < 0:
            raise ConfigError("bus arbitration_cycles must be >= 0")


@dataclass
class MemoryConfig:
    """A simple DRAM model: fixed access latency plus per-line streaming."""

    access_cycles: float = 20.0       # first-word latency
    cycles_per_word: float = 2.0      # subsequent words of a line fill
    word_bytes: int = 8

    def line_fill_cycles(self, line_bytes: int) -> float:
        """Latency to read one cache line from DRAM."""
        words = -(-line_bytes // self.word_bytes)
        return self.access_cycles + max(words - 1, 0) * self.cycles_per_word

    def validate(self) -> None:
        if self.access_cycles < 0 or self.cycles_per_word < 0:
            raise ConfigError("memory latencies must be >= 0")
        if self.word_bytes <= 0:
            raise ConfigError("memory word_bytes must be positive")


@dataclass
class NodeConfig:
    """The single-node computational template (Fig 3a).

    ``n_cpus > 1`` models a shared-memory node: the CPUs share the cache
    hierarchy's lower levels and the bus, with private split/unified L1s
    kept coherent by a snoopy protocol (Section 4.1 / 4.3).
    """

    cpu: CPUConfig = field(default_factory=CPUConfig)
    cache_levels: list[CacheLevelConfig] = field(default_factory=list)
    bus: BusConfig = field(default_factory=BusConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    n_cpus: int = 1
    coherence: str = "mesi"                # "msi" | "mesi" (multi-CPU only)
    #: "snoopy" broadcasts on the shared bus; "directory" (Section 4.1's
    #: "other strategies, like directory schemes") tracks sharers at the
    #: memory side and sends targeted invalidations.
    coherence_style: str = "snoopy"
    #: directory lookup latency per request (directory style only).
    directory_lookup_cycles: float = 2.0
    #: interconnect between CPUs and memory: "bus" (one transaction at a
    #: time) or "crossbar" (Section 4.1's "more complex structure, such
    #: as a multistage network": one port per CPU plus a memory port).
    fabric: str = "bus"

    def validate(self) -> None:
        self.cpu.validate()
        for lvl in self.cache_levels:
            lvl.validate()
        self.bus.validate()
        self.memory.validate()
        if self.n_cpus < 1:
            raise ConfigError(f"n_cpus must be >= 1, got {self.n_cpus}")
        if self.coherence not in ("msi", "mesi"):
            raise ConfigError(f"unknown coherence protocol {self.coherence!r}")
        if self.coherence_style not in ("snoopy", "directory"):
            raise ConfigError(
                f"unknown coherence style {self.coherence_style!r}")
        if self.fabric not in ("bus", "crossbar"):
            raise ConfigError(f"unknown node fabric {self.fabric!r}")
        if self.coherence_style == "snoopy" and self.fabric != "bus":
            raise ConfigError(
                "snoopy coherence needs a broadcast medium: use the bus "
                "fabric, or switch to the directory style")
        if self.directory_lookup_cycles < 0:
            raise ConfigError("directory_lookup_cycles must be >= 0")
        if self.n_cpus > 1 and not self.cache_levels:
            raise ConfigError(
                "a multi-CPU node needs at least one cache level (private "
                "L1s) for the coherence protocol to act on")


@dataclass
class TopologyConfig:
    """Physical interconnect shape (Section 4.2: "the nodes are
    connected in a topology reflecting the physical interconnect")."""

    kind: str = "mesh"           # mesh|torus|hypercube|ring|star|tree|full
    dims: tuple[int, ...] = (2, 2)   # mesh/torus extents; (n,) for ring etc.

    def validate(self) -> None:
        known = ("mesh", "torus", "hypercube", "ring", "star", "tree",
                 "fat_tree", "full")
        if self.kind not in known:
            raise ConfigError(f"unknown topology kind {self.kind!r}")
        if not self.dims or any(d < 1 for d in self.dims):
            raise ConfigError(f"bad topology dims {self.dims}")


@dataclass
class NetworkConfig:
    """The multi-node communication template (Fig 3b)."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    routing: str = "dimension_order"       # or "shortest_path"
    switching: str = "wormhole"            # store_and_forward |
    #                                        virtual_cut_through | wormhole
    link_bandwidth: float = 4.0            # bytes per cycle per link
    link_latency: float = 1.0              # wire cycles per hop
    packet_bytes: int = 256                # max payload per packet
    header_bytes: int = 8
    flit_bytes: int = 8                    # wormhole flit size
    routing_cycles: float = 2.0            # routing decision per router
    send_overhead: float = 100.0           # NIC software cycles per message
    recv_overhead: float = 100.0
    channel_buffers: int = 4               # input buffer (packets) per channel

    def validate(self) -> None:
        self.topology.validate()
        if self.routing not in ("dimension_order", "shortest_path",
                                "random_minimal"):
            raise ConfigError(f"unknown routing {self.routing!r}")
        if self.routing == "random_minimal" and self.switching == "wormhole":
            raise ConfigError(
                "random_minimal (adaptive) routing can deadlock wormhole "
                "switching (non-ordered channel dependencies); use "
                "store_and_forward or virtual_cut_through")
        if self.switching not in ("store_and_forward", "virtual_cut_through",
                                  "wormhole"):
            raise ConfigError(f"unknown switching {self.switching!r}")
        if self.link_bandwidth <= 0:
            raise ConfigError("link_bandwidth must be positive")
        if self.link_latency < 0:
            raise ConfigError("link_latency must be >= 0")
        if self.packet_bytes <= 0 or self.header_bytes < 0:
            raise ConfigError("bad packet/header size")
        if self.flit_bytes <= 0:
            raise ConfigError("flit_bytes must be positive")
        if self.routing_cycles < 0 or self.send_overhead < 0 \
                or self.recv_overhead < 0:
            raise ConfigError("overheads must be >= 0")
        if self.channel_buffers < 1:
            raise ConfigError("channel_buffers must be >= 1")


@dataclass
class MachineConfig:
    """A complete multicomputer: replicated nodes plus the interconnect."""

    name: str = "machine"
    node: NodeConfig = field(default_factory=NodeConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)

    def validate(self) -> "MachineConfig":
        self.node.validate()
        self.network.validate()
        return self

    @property
    def n_nodes(self) -> int:
        from ..topology import node_count
        return node_count(self.network.topology)

    # -- serialization (experiment records) ------------------------------

    def to_dict(self) -> dict[str, Any]:
        def encode(obj: Any) -> Any:
            if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
                return {f.name: encode(getattr(obj, f.name))
                        for f in dataclasses.fields(obj)}
            if isinstance(obj, dict):
                return {(k.name if isinstance(k, ArithType) else k): encode(v)
                        for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [encode(v) for v in obj]
            return obj
        return encode(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MachineConfig":
        def arith_table(d: dict) -> dict[ArithType, float]:
            return {ArithType[k] if isinstance(k, str) else ArithType(k): v
                    for k, v in d.items()}

        cpu_d = dict(data["node"]["cpu"])
        for key in ("add_cycles", "sub_cycles", "mul_cycles", "div_cycles"):
            cpu_d[key] = arith_table(cpu_d[key])
        cpu = CPUConfig(**cpu_d)
        levels = []
        for lvl in data["node"]["cache_levels"]:
            instr = CacheConfig(**lvl["instr"]) if lvl["instr"] else None
            levels.append(CacheLevelConfig(data=CacheConfig(**lvl["data"]),
                                           instr=instr))
        node_extra = {k: v for k, v in data["node"].items()
                      if k not in ("cpu", "cache_levels", "bus", "memory")}
        node = NodeConfig(
            cpu=cpu, cache_levels=levels,
            bus=BusConfig(**data["node"]["bus"]),
            memory=MemoryConfig(**data["node"]["memory"]),
            **node_extra)
        net_d = dict(data["network"])
        topo_d = dict(net_d.pop("topology"))
        topo_d["dims"] = tuple(topo_d["dims"])
        network = NetworkConfig(topology=TopologyConfig(**topo_d), **net_d)
        return cls(name=data["name"], node=node, network=network).validate()
