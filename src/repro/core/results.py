"""Experiment records: persistable (machine, workload, metrics) tuples.

Every benchmark in :file:`benchmarks/` produces rows that can be wrapped
in an :class:`ExperimentRecord` and written to JSON, so paper-vs-measured
comparisons (EXPERIMENTS.md) are regenerable artifacts rather than
hand-copied numbers.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Sequence

from .config import MachineConfig

__all__ = ["ExperimentRecord"]


class ExperimentRecord:
    """One experiment: id, machine, parameters, and result rows."""

    def __init__(self, experiment_id: str, description: str,
                 machine: Optional[MachineConfig] = None,
                 parameters: Optional[dict] = None) -> None:
        self.experiment_id = experiment_id
        self.description = description
        self.machine = machine
        self.parameters = dict(parameters or {})
        self.rows: list[dict] = []

    def add_row(self, **row: Any) -> None:
        self.rows.append(row)

    def add_rows(self, rows: Sequence[dict]) -> None:
        self.rows.extend(rows)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "machine": self.machine.to_dict() if self.machine else None,
            "parameters": self.parameters,
            "rows": self.rows,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fp:
            json.dump(self.to_dict(), fp, indent=2, default=str)

    @classmethod
    def load(cls, path: str) -> "ExperimentRecord":
        with open(path) as fp:
            data = json.load(fp)
        machine = (MachineConfig.from_dict(data["machine"])
                   if data.get("machine") else None)
        record = cls(data["experiment_id"], data["description"], machine,
                     data.get("parameters"))
        record.rows = list(data.get("rows", []))
        return record

    def __repr__(self) -> str:
        return (f"<ExperimentRecord {self.experiment_id!r} "
                f"rows={len(self.rows)}>")
