"""``repro.core`` — configuration, the workbench facade, and experiments.

The paper's primary contribution packaged for use: machine
parameterization (:mod:`~repro.core.config`), the top-level
:class:`Workbench` covering every simulation mode, parameter sweeps
(:class:`Sweep`), and persistable experiment records.
"""

from .config import (
    BusConfig,
    CPUConfig,
    CacheConfig,
    CacheLevelConfig,
    ConfigError,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from .experiment import Sweep, vary_machine
from .results import ExperimentRecord
from .workbench import Workbench

__all__ = [
    "BusConfig", "CPUConfig", "CacheConfig", "CacheLevelConfig",
    "ConfigError", "ExperimentRecord", "MachineConfig", "MemoryConfig",
    "NetworkConfig", "NodeConfig", "Sweep", "TopologyConfig", "Workbench",
    "vary_machine",
]
