"""Trace validation — thin wrapper over :mod:`repro.check` (deprecated).

.. deprecated::
    This module predates the ``repro check`` static analyzer and now
    delegates to its trace passes so there is a single diagnostic
    vocabulary.  New code should call
    :func:`repro.check.check_traces` and inspect the returned
    :class:`~repro.check.Report` (structured diagnostics, rule ids,
    severities) instead of catching :class:`ValidationError` strings.

The exception-based API is kept for backward compatibility — and it
got *stronger*: :func:`validate_trace_set` now also rejects trace sets
whose communication counts match but whose operation *order* provably
deadlocks the synchronous model (rule ``TR005``), upgrading the old
count-only check.

:func:`communication_matrix` (the send/recv count matrices) still lives
here; the analyzer's matched-counts pass imports it, not the other way
around, so the dependency stays one-directional.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .ops import OpCode
from .trace import Trace, TraceSet

__all__ = ["ValidationError", "validate_trace", "validate_trace_set",
           "communication_matrix"]


class ValidationError(ValueError):
    """A trace violates the operation contract."""


def validate_trace(trace: Trace, n_nodes: Optional[int] = None) -> None:
    """Check a single node's trace (structure only).

    * sizes and durations non-negative;
    * peers within ``[0, n_nodes)`` when ``n_nodes`` is given;
    * no self-communication (a node never sends to / receives from itself);
    * addresses non-negative.

    Raises :class:`ValidationError` with the first finding's message
    (identical strings to the analyzer's ``TR001``–``TR003`` rules).
    """
    from ..check.trace_passes import structural_diagnostics
    diags = structural_diagnostics(trace, n_nodes)
    if diags:
        raise ValidationError(diags[0].message)


def validate_trace_set(traces: TraceSet, check_matched: bool = True) -> None:
    """Validate every trace and, optionally, communication consistency.

    With ``check_matched`` the full analyzer trace pipeline runs:
    per-pair send/recv count matching (``TR004``) plus static deadlock
    prediction over the operation order (``TR005``/``TR006``).  The
    first error's message becomes the :class:`ValidationError`.
    """
    n = len(traces)
    for t in traces:
        validate_trace(t, n_nodes=n)
    if not check_matched:
        return
    from ..check import check_traces
    report = check_traces(traces, n_nodes=n)
    errors = report.errors
    if errors:
        raise ValidationError(errors[0].message)


def communication_matrix(traces: Iterable[Trace]) -> tuple[list, list]:
    """Return ``(sends, recvs)`` matrices.

    ``sends[src][dst]`` counts messages src sends to dst;
    ``recvs[src][dst]`` counts receives posted at dst naming src.
    """
    ts = list(traces)
    n = len(ts)
    sends = [[0] * n for _ in range(n)]
    recvs = [[0] * n for _ in range(n)]
    for t in ts:
        for op in t:
            if op.code in (OpCode.SEND, OpCode.ASEND):
                if 0 <= op.peer < n:
                    sends[t.node][op.peer] += 1
            elif op.code in (OpCode.RECV, OpCode.ARECV):
                if 0 <= op.peer < n:
                    recvs[op.peer][t.node] += 1
    return sends, recvs
