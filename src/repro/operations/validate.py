"""Trace validation — structural well-formedness checks.

The architecture simulators assume traces obey the Table-1 contract
(non-negative sizes, valid peers, matched synchronous communication).
These checks run in tests and optionally before a simulation; they catch
generator bugs early instead of deep inside a model.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .ops import OpCode, Operation
from .trace import Trace, TraceSet

__all__ = ["ValidationError", "validate_trace", "validate_trace_set",
           "communication_matrix"]


class ValidationError(ValueError):
    """A trace violates the operation contract."""


def validate_trace(trace: Trace, n_nodes: Optional[int] = None) -> None:
    """Check a single node's trace.

    * sizes and durations non-negative;
    * peers within ``[0, n_nodes)`` when ``n_nodes`` is given;
    * no self-communication (a node never sends to / receives from itself);
    * addresses non-negative.
    """
    node = trace.node
    for i, op in enumerate(trace):
        code = op.code
        if code in (OpCode.SEND, OpCode.ASEND):
            if op.size < 0:
                raise ValidationError(f"node {node} op {i}: negative size")
            _check_peer(node, op.peer, n_nodes, i)
        elif code in (OpCode.RECV, OpCode.ARECV):
            _check_peer(node, op.peer, n_nodes, i)
        elif code is OpCode.COMPUTE:
            if op.duration < 0:
                raise ValidationError(
                    f"node {node} op {i}: negative compute duration")
        elif code in (OpCode.LOAD, OpCode.STORE, OpCode.IFETCH,
                      OpCode.BRANCH, OpCode.CALL, OpCode.RET):
            if op.address < 0:
                raise ValidationError(
                    f"node {node} op {i}: negative address {op.address}")


def _check_peer(node: int, peer: int, n_nodes: Optional[int], i: int) -> None:
    if peer == node:
        raise ValidationError(f"node {node} op {i}: self-communication")
    if peer < 0 or (n_nodes is not None and peer >= n_nodes):
        raise ValidationError(
            f"node {node} op {i}: peer {peer} out of range")


def validate_trace_set(traces: TraceSet, check_matched: bool = True) -> None:
    """Validate every trace and, optionally, communication matching.

    Matching check: for every ordered pair (src, dst), the number of
    messages sent from src to dst equals the number of receives posted
    at dst naming src.  (Unmatched synchronous communication deadlocks
    the simulation; this is the static version of that check, valid
    because Mermaid receives name their source explicitly.)
    """
    n = len(traces)
    for t in traces:
        validate_trace(t, n_nodes=n)
    if not check_matched:
        return
    sends, recvs = communication_matrix(traces)
    for src in range(n):
        for dst in range(n):
            if sends[src][dst] != recvs[src][dst]:
                raise ValidationError(
                    f"unmatched communication {src}->{dst}: "
                    f"{sends[src][dst]} send(s) vs {recvs[src][dst]} recv(s)")


def communication_matrix(traces: Iterable[Trace]) -> tuple[list, list]:
    """Return ``(sends, recvs)`` matrices.

    ``sends[src][dst]`` counts messages src sends to dst;
    ``recvs[src][dst]`` counts receives posted at dst naming src.
    """
    ts = list(traces)
    n = len(ts)
    sends = [[0] * n for _ in range(n)]
    recvs = [[0] * n for _ in range(n)]
    for t in ts:
        for op in t:
            if op.code in (OpCode.SEND, OpCode.ASEND):
                if 0 <= op.peer < n:
                    sends[t.node][op.peer] += 1
            elif op.code in (OpCode.RECV, OpCode.ARECV):
                if 0 <= op.peer < n:
                    recvs[op.peer][t.node] += 1
    return sends, recvs
