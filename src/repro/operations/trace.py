"""Trace containers and file round-trip.

An *operation trace* is the interface between Mermaid's application
level and architecture level: "traces of events, called operations, are
generated from the workload descriptions at the application level".
Each trace accounts for one processor (node); a multicomputer workload
is a :class:`TraceSet`, one trace per node.

Traces can live in memory (:class:`Trace`), stream lazily from a
generator (:class:`TraceStream` — the execution-driven case), or round-
trip through a compact columnar ``.npz`` file for post-mortem reuse.
"""

from __future__ import annotations

import collections
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from .ops import (
    COMMUNICATION_OPS,
    COMPUTATIONAL_OPS,
    OpCode,
    Operation,
)

__all__ = ["Trace", "TraceSet", "TraceStream", "trace_mix"]


class Trace:
    """An in-memory operation trace for a single node.

    Behaves like a sequence of :class:`Operation`; also exposes summary
    statistics used by the analysis tools and the benchmarks.
    """

    __slots__ = ("node", "_ops",)

    def __init__(self, node: int = 0,
                 ops: Optional[Iterable[Operation]] = None) -> None:
        self.node = node
        self._ops: list[Operation] = list(ops) if ops is not None else []

    # -- sequence protocol -------------------------------------------------

    def append(self, op: Operation) -> None:
        self._ops.append(op)

    def extend(self, ops: Iterable[Operation]) -> None:
        self._ops.extend(ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return Trace(self.node, self._ops[i])
        return self._ops[i]

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Trace) and self.node == other.node
                and self._ops == other._ops)

    # -- statistics -----------------------------------------------------------

    def op_histogram(self) -> dict[OpCode, int]:
        """Count of each op code present in the trace."""
        counts = collections.Counter(op.code for op in self._ops)
        return {OpCode(c): n for c, n in counts.items()}

    @property
    def computational_count(self) -> int:
        return sum(1 for op in self._ops if op.code in COMPUTATIONAL_OPS)

    @property
    def communication_count(self) -> int:
        return sum(1 for op in self._ops if op.code in COMMUNICATION_OPS)

    @property
    def bytes_sent(self) -> int:
        return sum(op.size for op in self._ops
                   if op.code in (OpCode.SEND, OpCode.ASEND))

    def __repr__(self) -> str:
        return f"<Trace node={self.node} ops={len(self._ops)}>"

    # -- columnar file round-trip ------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Encode as four parallel columns (code, dtype, arg, arg2)."""
        n = len(self._ops)
        code = np.empty(n, dtype=np.uint8)
        dtyp = np.empty(n, dtype=np.uint8)
        arg = np.empty(n, dtype=np.int64)
        arg2 = np.empty(n, dtype=np.float64)
        for i, op in enumerate(self._ops):
            code[i] = op.code
            dtyp[i] = op.dtype
            arg[i] = op.arg
            arg2[i] = op.arg2
        return {"code": code, "dtype": dtyp, "arg": arg, "arg2": arg2}

    @classmethod
    def from_arrays(cls, node: int, cols: dict[str, np.ndarray]) -> "Trace":
        code = cols["code"]
        dtyp = cols["dtype"]
        arg = cols["arg"]
        arg2 = cols["arg2"]
        ops = [Operation(OpCode(int(code[i])), int(dtyp[i]),
                         int(arg[i]), float(arg2[i]))
               for i in range(len(code))]
        return cls(node, ops)

    def save(self, path: str) -> None:
        """Write the trace to a compressed columnar ``.npz`` file."""
        cols = self.to_arrays()
        np.savez_compressed(path, node=np.int64(self.node), **cols)

    @classmethod
    def load(cls, path: str) -> "Trace":
        with np.load(path) as data:
            return cls.from_arrays(int(data["node"]),
                                   {k: data[k] for k in
                                    ("code", "dtype", "arg", "arg2")})


class TraceStream:
    """A lazily-generated trace: wraps an operation *generator*.

    This is the execution-driven form: operations are produced on the
    fly by a trace generator under simulator control, so the stream can
    only be consumed once and its contents may depend on simulated time
    (physical-time interleaving, Section 3.1).
    """

    __slots__ = ("node", "_gen", "consumed")

    def __init__(self, node: int, gen: Iterator[Operation]) -> None:
        self.node = node
        self._gen = iter(gen)
        self.consumed = 0

    def __iter__(self) -> "TraceStream":
        return self

    def __next__(self) -> Operation:
        op = next(self._gen)
        self.consumed += 1
        return op

    def materialize(self) -> Trace:
        """Drain the stream into an in-memory :class:`Trace`."""
        t = Trace(self.node, list(self._gen))
        self.consumed += len(t)
        return t

    def __repr__(self) -> str:
        return f"<TraceStream node={self.node} consumed={self.consumed}>"


class TraceSet:
    """One trace per node of the multicomputer (Section 2: "multiple
    traces are simulated.  Each trace accounts for the execution
    behaviour of a single processor").
    """

    __slots__ = ("_traces",)

    def __init__(self, traces: Sequence[Trace]) -> None:
        self._traces = list(traces)
        for i, t in enumerate(self._traces):
            if t.node != i:
                raise ValueError(
                    f"trace at index {i} claims node {t.node}; traces must "
                    "be ordered by node id")

    @classmethod
    def from_lists(cls, per_node_ops: Sequence[Iterable[Operation]]) -> "TraceSet":
        return cls([Trace(i, ops) for i, ops in enumerate(per_node_ops)])

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __getitem__(self, node: int) -> Trace:
        return self._traces[node]

    @property
    def total_ops(self) -> int:
        return sum(len(t) for t in self._traces)

    def op_histogram(self) -> dict[OpCode, int]:
        total: collections.Counter = collections.Counter()
        for t in self._traces:
            total.update(t.op_histogram())
        return dict(total)

    def save(self, path: str) -> None:
        """All node traces in a single ``.npz`` (columns per node)."""
        payload: dict[str, np.ndarray] = {"n_nodes": np.int64(len(self._traces))}
        for t in self._traces:
            for k, v in t.to_arrays().items():
                payload[f"n{t.node}_{k}"] = v
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "TraceSet":
        with np.load(path) as data:
            n = int(data["n_nodes"])
            traces = []
            for i in range(n):
                cols = {k: data[f"n{i}_{k}"]
                        for k in ("code", "dtype", "arg", "arg2")}
                traces.append(Trace.from_arrays(i, cols))
        return cls(traces)

    def __repr__(self) -> str:
        return f"<TraceSet nodes={len(self._traces)} ops={self.total_ops}>"


def trace_mix(trace: Trace) -> dict[str, float]:
    """Fractional instruction mix of a trace (for reports and tuning)."""
    n = len(trace)
    if n == 0:
        return {}
    hist = trace.op_histogram()
    return {code.name.lower(): count / n for code, count in sorted(hist.items())}
