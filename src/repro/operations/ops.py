"""Operations — the abstract machine instructions of Table 1.

Traces driving the Mermaid simulators are sequences of *operations*
representing "processor activity, memory I/O, or message-passing".
The set below reproduces Table 1 of the paper exactly:

========================  =====================================
Computational             load(mem-type, address),
                          store(mem-type, address)      — memory
                          load([f]constant)             — immediates
                          add/sub/mul/div(type)         — arithmetic
                          ifetch(address), branch(address),
                          call(address), ret(address)   — instr. fetch
Communication             send(size, dest), recv(source)  — synchronous
                          asend(size, dest), arecv(source)— asynchronous
                          compute(duration)               — task level
========================  =====================================

Operations are deliberately register-less: the trace generator has
already evaluated all control flow and addressing, so the simulator
only needs what affects *time* (Section 3.3 of the paper).
"""

from __future__ import annotations

from enum import IntEnum

from .optypes import ArithType, MemType

__all__ = [
    "OpCode", "Operation",
    "load", "store", "load_const", "add", "sub", "mul", "div",
    "ifetch", "branch", "call", "ret",
    "send", "recv", "asend", "arecv", "compute",
    "COMPUTATIONAL_OPS", "COMMUNICATION_OPS", "MEMORY_OPS",
    "ARITHMETIC_OPS", "CONTROL_OPS", "GLOBAL_EVENT_OPS",
]


class OpCode(IntEnum):
    """Discriminator for the sixteen Table-1 operations."""

    # -- computational (single-node model) --
    LOAD = 0
    STORE = 1
    LOADC = 2          # load([f]constant)
    ADD = 3
    SUB = 4
    MUL = 5
    DIV = 6
    IFETCH = 7
    BRANCH = 8
    CALL = 9
    RET = 10
    # -- communication (multi-node model) --
    SEND = 11          # synchronous (blocking)
    RECV = 12
    ASEND = 13         # asynchronous (non-blocking)
    ARECV = 14
    COMPUTE = 15       # task-level computation


#: Op codes consumed by the single-node computational model.
COMPUTATIONAL_OPS = frozenset({
    OpCode.LOAD, OpCode.STORE, OpCode.LOADC, OpCode.ADD, OpCode.SUB,
    OpCode.MUL, OpCode.DIV, OpCode.IFETCH, OpCode.BRANCH, OpCode.CALL,
    OpCode.RET,
})

#: Op codes consumed by the multi-node communication model.
COMMUNICATION_OPS = frozenset({
    OpCode.SEND, OpCode.RECV, OpCode.ASEND, OpCode.ARECV, OpCode.COMPUTE,
})

#: Ops that reference the data-memory hierarchy.
MEMORY_OPS = frozenset({OpCode.LOAD, OpCode.STORE})

#: Register-to-register arithmetic.
ARITHMETIC_OPS = frozenset({OpCode.ADD, OpCode.SUB, OpCode.MUL, OpCode.DIV})

#: Instruction-fetch related ops (the third Table-1 category).
CONTROL_OPS = frozenset({OpCode.IFETCH, OpCode.BRANCH, OpCode.CALL, OpCode.RET})

#: Global events: operations that may affect other processors and at which
#: a trace-generating thread must suspend (physical-time interleaving).
GLOBAL_EVENT_OPS = frozenset({OpCode.SEND, OpCode.RECV, OpCode.ASEND,
                              OpCode.ARECV})


class Operation:
    """One trace event.  Compact (4 slots) because traces hold millions.

    The meaning of ``dtype``/``arg``/``arg2`` depends on :attr:`code`;
    use the factory functions (:func:`load`, :func:`send`, ...) to build
    operations and the named properties (:attr:`address`, :attr:`size`,
    :attr:`peer`, :attr:`duration`, ...) to read them.
    """

    __slots__ = ("code", "dtype", "arg", "arg2")

    def __init__(self, code: OpCode, dtype: int = 0,
                 arg: int = 0, arg2: float = 0.0) -> None:
        self.code = code
        self.dtype = dtype
        self.arg = arg
        self.arg2 = arg2

    # -- typed accessors -------------------------------------------------

    @property
    def mem_type(self) -> MemType:
        """Datum type of a LOAD/STORE/LOADC."""
        return MemType(self.dtype)

    @property
    def arith_type(self) -> ArithType:
        """Operand class of an ADD/SUB/MUL/DIV."""
        return ArithType(self.dtype)

    @property
    def address(self) -> int:
        """Byte address of a memory access or instruction fetch."""
        return self.arg

    @property
    def peer(self) -> int:
        """Destination (sends) or source (receives) node id."""
        return self.arg

    @property
    def size(self) -> int:
        """Message size in bytes (SEND/ASEND)."""
        return int(self.arg2)

    @property
    def duration(self) -> float:
        """Task duration in cycles (COMPUTE)."""
        return self.arg2

    @property
    def is_global_event(self) -> bool:
        return self.code in GLOBAL_EVENT_OPS

    @property
    def is_communication(self) -> bool:
        return self.code in COMMUNICATION_OPS

    # -- value semantics ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Operation)
                and self.code == other.code
                and self.dtype == other.dtype
                and self.arg == other.arg
                and self.arg2 == other.arg2)

    def __hash__(self) -> int:
        return hash((self.code, self.dtype, self.arg, self.arg2))

    def to_tuple(self) -> tuple:
        """Lossless plain-tuple encoding (see :mod:`repro.operations.trace`)."""
        return (int(self.code), self.dtype, self.arg, self.arg2)

    @classmethod
    def from_tuple(cls, t: tuple) -> "Operation":
        return cls(OpCode(t[0]), t[1], t[2], t[3])

    def __repr__(self) -> str:
        code = self.code
        if code in MEMORY_OPS:
            return f"{code.name.lower()}({self.mem_type.name}, {self.arg:#x})"
        if code is OpCode.LOADC:
            return f"loadc({self.mem_type.name})"
        if code in ARITHMETIC_OPS:
            return f"{code.name.lower()}({self.arith_type.name})"
        if code in CONTROL_OPS:
            return f"{code.name.lower()}({self.arg:#x})"
        if code in (OpCode.SEND, OpCode.ASEND):
            return f"{code.name.lower()}(size={self.size}, dest={self.arg})"
        if code in (OpCode.RECV, OpCode.ARECV):
            return f"{code.name.lower()}(source={self.arg})"
        return f"compute(duration={self.arg2:g})"


# ---------------------------------------------------------------------------
# Factory functions (the public way to build operations)
# ---------------------------------------------------------------------------

def load(mem_type: MemType, address: int) -> Operation:
    """``load(mem-type, address)`` — read a datum from the memory hierarchy."""
    return Operation(OpCode.LOAD, int(mem_type), address)


def store(mem_type: MemType, address: int) -> Operation:
    """``store(mem-type, address)`` — write a datum to the memory hierarchy."""
    return Operation(OpCode.STORE, int(mem_type), address)


def load_const(mem_type: MemType = MemType.INT32) -> Operation:
    """``load([f]constant)`` — load an immediate into a register."""
    return Operation(OpCode.LOADC, int(mem_type))


def add(arith_type: ArithType = ArithType.INT) -> Operation:
    """``add(type)`` — register-to-register addition."""
    return Operation(OpCode.ADD, int(arith_type))


def sub(arith_type: ArithType = ArithType.INT) -> Operation:
    """``sub(type)`` — register-to-register subtraction."""
    return Operation(OpCode.SUB, int(arith_type))


def mul(arith_type: ArithType = ArithType.INT) -> Operation:
    """``mul(type)`` — register-to-register multiplication."""
    return Operation(OpCode.MUL, int(arith_type))


def div(arith_type: ArithType = ArithType.INT) -> Operation:
    """``div(type)`` — register-to-register division."""
    return Operation(OpCode.DIV, int(arith_type))


def ifetch(address: int) -> Operation:
    """``ifetch(address)`` — fetch the instruction at ``address``.

    The trace generator evaluates loops and branches, so each executed
    instruction produces its own ifetch and loop bodies recur at the
    same addresses (Section 3.3).
    """
    return Operation(OpCode.IFETCH, 0, address)


def branch(address: int) -> Operation:
    """``branch(address)`` — taken control transfer to ``address``."""
    return Operation(OpCode.BRANCH, 0, address)


def call(address: int) -> Operation:
    """``call(address)`` — procedure call to ``address``."""
    return Operation(OpCode.CALL, 0, address)


def ret(address: int) -> Operation:
    """``ret(address)`` — return to ``address``."""
    return Operation(OpCode.RET, 0, address)


def send(size: int, dest: int) -> Operation:
    """``send(message-size, destination)`` — synchronous (blocking) send."""
    if size < 0:
        raise ValueError(f"negative message size {size}")
    return Operation(OpCode.SEND, 0, dest, float(size))


def recv(source: int) -> Operation:
    """``recv(source)`` — synchronous (blocking) receive."""
    return Operation(OpCode.RECV, 0, source)


def asend(size: int, dest: int) -> Operation:
    """``asend(message-size, destination)`` — asynchronous send."""
    if size < 0:
        raise ValueError(f"negative message size {size}")
    return Operation(OpCode.ASEND, 0, dest, float(size))


def arecv(source: int) -> Operation:
    """``arecv(source)`` — asynchronous receive."""
    return Operation(OpCode.ARECV, 0, source)


def compute(duration: float) -> Operation:
    """``compute(duration)`` — a task-level computational delay in cycles."""
    if duration < 0:
        raise ValueError(f"negative compute duration {duration}")
    return Operation(OpCode.COMPUTE, 0, 0, float(duration))
