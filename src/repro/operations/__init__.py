"""``repro.operations`` — abstract machine instructions (Table 1).

The traces that drive Mermaid's architecture models are sequences of
*operations*: abstract, register-less machine instructions covering
memory access, arithmetic, instruction fetching and message passing.
This package defines the operation vocabulary, trace containers, and
structural validation.
"""

from .ops import (
    ARITHMETIC_OPS,
    COMMUNICATION_OPS,
    COMPUTATIONAL_OPS,
    CONTROL_OPS,
    GLOBAL_EVENT_OPS,
    MEMORY_OPS,
    OpCode,
    Operation,
    add,
    arecv,
    asend,
    branch,
    call,
    compute,
    div,
    ifetch,
    load,
    load_const,
    mul,
    recv,
    ret,
    send,
    store,
    sub,
)
from .optypes import MEM_TYPE_BYTES, ArithType, MemType
from .trace import Trace, TraceSet, TraceStream, trace_mix
from .validate import (
    ValidationError,
    communication_matrix,
    validate_trace,
    validate_trace_set,
)

__all__ = [
    "ARITHMETIC_OPS", "ArithType", "COMMUNICATION_OPS", "COMPUTATIONAL_OPS",
    "CONTROL_OPS", "GLOBAL_EVENT_OPS", "MEMORY_OPS", "MEM_TYPE_BYTES",
    "MemType", "OpCode", "Operation", "Trace", "TraceSet", "TraceStream",
    "ValidationError", "add", "arecv", "asend", "branch", "call",
    "communication_matrix", "compute", "div", "ifetch", "load",
    "load_const", "mul", "recv", "ret", "send", "store", "sub",
    "trace_mix", "validate_trace", "validate_trace_set",
]
