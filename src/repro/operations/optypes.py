"""Type vocabulary for Mermaid operations.

The computational operations of Table 1 are "abstract machine
instructions ... based on a load-store architecture".  Memory accesses
carry a *mem-type* (the width/kind of the datum) and arithmetic
operations carry an arithmetic *type*; both abstract over the concrete
ISA so one simulator serves many processors.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["MemType", "ArithType", "MEM_TYPE_BYTES"]


class MemType(IntEnum):
    """Width/kind of a datum moved between registers and memory."""

    INT8 = 0
    INT16 = 1
    INT32 = 2
    INT64 = 3
    FLOAT32 = 4
    FLOAT64 = 5

    @property
    def nbytes(self) -> int:
        return MEM_TYPE_BYTES[self]

    @property
    def is_float(self) -> bool:
        return self in (MemType.FLOAT32, MemType.FLOAT64)


#: Datum size in bytes, indexed by :class:`MemType` value.
MEM_TYPE_BYTES: dict["MemType", int] = {
    MemType.INT8: 1,
    MemType.INT16: 2,
    MemType.INT32: 4,
    MemType.INT64: 8,
    MemType.FLOAT32: 4,
    MemType.FLOAT64: 8,
}


class ArithType(IntEnum):
    """Operand class of a register-to-register arithmetic operation."""

    INT = 0
    FLOAT = 1     # single precision
    DOUBLE = 2    # double precision

    @property
    def is_float(self) -> bool:
        return self is not ArithType.INT
