"""The memory hierarchy of a single-CPU node (Fig 3a, analytic path).

The hierarchy composes per-access latency from the caches, the bus and
the DRAM.  On a single-CPU node the bus can never be contended, so the
whole access path is *analytic* — a plain function call per operation,
no kernel interaction — which is exactly why Mermaid's detailed mode
stays orders of magnitude faster than instruction-level simulation.
(The multi-CPU, contention-accurate path lives in
:mod:`repro.compmodel.coherence`.)

Modelling choices (documented simplifications):

* caches are non-inclusive: an eviction at level *i+1* does not recall
  copies at level *i*;
* a dirty victim is written to the next level if the line is resident
  there, otherwise it goes to memory over the bus;
* write-through writes propagate one level down with their traffic
  counted but add no stall latency (an implicit write buffer);
* an access spanning two cache lines is modelled as two accesses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import CacheLevelConfig, MemoryConfig, BusConfig
from .bus import Bus
from .cache import Cache, LineState
from .memory import DRAM

__all__ = ["CacheHierarchy", "AccessKind"]


class AccessKind:
    """Access discriminators used throughout the computational model."""

    READ = 0
    WRITE = 1
    IFETCH = 2


class CacheHierarchy:
    """Multi-level cache hierarchy + bus + DRAM for one CPU.

    Parameters
    ----------
    levels:
        Cache level configurations, nearest (L1) first.  May be empty:
        every access then goes straight to memory over the bus.
    bus_cfg / mem_cfg:
        Bus and DRAM parameters.
    rng:
        Source of randomness for ``replacement="random"`` caches.
    """

    def __init__(self, levels: list[CacheLevelConfig], bus_cfg: BusConfig,
                 mem_cfg: MemoryConfig,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "node") -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name
        self.data_path: list[Cache] = []
        self.instr_path: list[Cache] = []
        self.caches: list[Cache] = []      # all distinct caches, for stats
        for i, lvl in enumerate(levels):
            dcache = Cache(lvl.data, f"{name}.L{i + 1}d" if lvl.split
                           else f"{name}.L{i + 1}", rng)
            self.caches.append(dcache)
            self.data_path.append(dcache)
            if lvl.split:
                icache = Cache(lvl.instr, f"{name}.L{i + 1}i", rng)
                self.caches.append(icache)
                self.instr_path.append(icache)
            else:
                self.instr_path.append(dcache)
        self.bus = Bus(bus_cfg)
        self.memory = DRAM(mem_cfg)

    # -- public access path --------------------------------------------------

    def access_cycles(self, kind: int, address: int, nbytes: int = 4) -> float:
        """Latency (cycles) of one memory access, updating all state.

        ``kind`` is one of :class:`AccessKind`; instruction fetches walk
        the instruction path (split L1s) and are never writes.
        """
        path = self.instr_path if kind == AccessKind.IFETCH else self.data_path
        if not path:
            # Cacheless node: every access is a bus+memory transaction.
            return self._memory_access(kind == AccessKind.WRITE, nbytes)
        is_write = kind == AccessKind.WRITE
        line = path[0].cfg.line_bytes
        first = address - (address % line)
        last = (address + max(nbytes, 1) - 1)
        last_line = last - (last % line)
        total = self._access_line(path, is_write, address)
        if last_line != first:
            total += self._access_line(path, is_write, last_line)
        return total

    # -- internals ----------------------------------------------------------------

    def _access_line(self, path: list[Cache], is_write: bool,
                     address: int) -> float:
        latency = 0.0
        # Walk down until a hit (or memory).
        hit_level = -1
        for i, cache in enumerate(path):
            latency += cache.cfg.hit_cycles
            if cache.lookup(address, is_write):
                hit_level = i
                break
        if hit_level < 0:
            # Missed everywhere.
            if is_write and not path[-1].cfg.write_allocate:
                # No-allocate write miss: write goes to memory, caches
                # untouched (traffic counted; latency is the bus+mem write).
                return latency + self._memory_access(True,
                                                     path[-1].cfg.line_bytes)
            line_bytes = path[-1].cfg.line_bytes
            latency += self._memory_access(False, line_bytes)
            fill_from = len(path)
        else:
            if is_write and path[hit_level].cfg.write_policy == "write-through":
                self._write_through(path, hit_level, address)
            fill_from = hit_level
        # Fill every level above the hit (or all levels on a full miss).
        for i in range(fill_from - 1, -1, -1):
            cache = path[i]
            if is_write and cache.cfg.write_policy == "write-back":
                state = LineState.MODIFIED
            else:
                state = LineState.SHARED
            victim = cache.insert(address, state)
            if victim is not None and victim[1].is_dirty:
                latency += self._writeback(path, i, victim[0])
            if is_write and cache.cfg.write_policy == "write-through":
                self._write_through(path, i, address)
        return latency

    def _write_through(self, path: list[Cache], level: int,
                       address: int) -> None:
        """Propagate a write one level down (buffered: traffic, no stall)."""
        nxt = level + 1
        if nxt < len(path):
            cache = path[nxt]
            if cache.probe(address).is_valid:
                if cache.cfg.write_policy == "write-back":
                    cache.set_state(address, LineState.MODIFIED)
                else:
                    self._write_through(path, nxt, address)
            # Not resident below: the write continues toward memory.
            elif not any(path[j].probe(address).is_valid
                         for j in range(nxt, len(path))):
                self.bus.transactions += 1
                self.memory.writes += 1
        else:
            self.bus.transactions += 1
            self.memory.writes += 1

    def _writeback(self, path: list[Cache], level: int,
                   victim_line: int) -> float:
        """Write a dirty victim from ``level`` to the next level / memory."""
        nxt = level + 1
        line_bytes = path[level].cfg.line_bytes
        if nxt < len(path) and path[nxt].probe(victim_line).is_valid:
            path[nxt].set_state(victim_line, LineState.MODIFIED)
            return path[nxt].cfg.hit_cycles
        return self._memory_access(True, line_bytes)

    def _memory_access(self, is_write: bool, nbytes: int) -> float:
        mem_cycles = (self.memory.write_cycles(nbytes) if is_write
                      else self.memory.read_cycles(nbytes))
        return self.bus.transaction_cycles(nbytes, extra_cycles=mem_cycles)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> dict:
        return {
            "caches": {c.name: c.stats.summary() for c in self.caches},
            "bus": self.bus.summary(),
            "memory": self.memory.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CacheHierarchy {self.name!r} levels={len(self.data_path)}"
                f" split_l1={self.instr_path[:1] != self.data_path[:1]}>")
