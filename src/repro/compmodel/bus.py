"""The node bus — arbitration between CPUs/caches and the memory.

"To connect the processors and the cache hierarchy to the memory, the
template defines a bus component.  It is a simple forwarding mechanism,
carrying out arbitration upon multiple accesses" (Section 4.1).

The bus offers two usage styles:

* **analytic** (:meth:`Bus.transaction_cycles`) — latency of an
  uncontended transaction; exact for a single-CPU node where only one
  agent can ever use the bus;
* **simulated** (:meth:`Bus.transaction`) — a generator acquiring the
  underlying kernel :class:`~repro.pearl.resource.Resource` so multiple
  CPUs contend in simulated time (the SMP / snoopy case).
"""

from __future__ import annotations

from typing import Optional

from ..core.config import BusConfig
from ..pearl import Resource, Simulator

__all__ = ["Bus"]


class Bus:
    """The shared node bus with FIFO arbitration and traffic counters."""

    __slots__ = ("cfg", "name", "resource", "transactions", "bytes_moved",
                 "busy_cycles")

    def __init__(self, cfg: BusConfig, sim: Optional[Simulator] = None,
                 name: str = "bus", capacity: int = 1) -> None:
        cfg.validate()
        self.cfg = cfg
        self.name = name
        # The kernel resource only exists when the bus is simulated
        # (multi-CPU); analytic use never touches the kernel.  A
        # capacity above 1 models a crossbar-like fabric (one port per
        # agent) instead of a single shared bus.
        self.resource = (Resource(sim, capacity, name)
                         if sim is not None else None)
        self.transactions = 0
        self.bytes_moved = 0
        self.busy_cycles = 0.0

    def transaction_cycles(self, nbytes: int,
                           extra_cycles: float = 0.0) -> float:
        """Latency of one uncontended transaction moving ``nbytes``.

        ``extra_cycles`` is occupancy added while the bus is held (e.g.
        the DRAM access at the far side of a line fill).
        """
        cost = (self.cfg.arbitration_cycles
                + self.cfg.transfer_cycles(nbytes)
                + extra_cycles)
        self.transactions += 1
        self.bytes_moved += nbytes
        self.busy_cycles += cost
        return cost

    def transaction(self, nbytes: int, extra_cycles: float = 0.0):
        """Simulated transaction: generator to ``yield from`` in a process.

        Occupies the bus resource for the transfer (plus ``extra_cycles``)
        after FIFO arbitration; competing CPUs queue.
        """
        if self.resource is None:
            raise RuntimeError(
                f"bus {self.name!r} built without a simulator; use "
                "transaction_cycles() for analytic mode")
        occupancy = self.cfg.transfer_cycles(nbytes) + extra_cycles
        self.transactions += 1
        self.bytes_moved += nbytes
        self.busy_cycles += self.cfg.arbitration_cycles + occupancy
        yield self.resource.acquire()
        try:
            yield self.cfg.arbitration_cycles + occupancy
        finally:
            self.resource.release()

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``horizon`` cycles (analytic counterpart of
        the resource utilization in simulated mode)."""
        return self.busy_cycles / horizon if horizon > 0 else 0.0

    def summary(self) -> dict:
        return {
            "transactions": self.transactions,
            "bytes_moved": self.bytes_moved,
            "busy_cycles": self.busy_cycles,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Bus txns={self.transactions} bytes={self.bytes_moved}>"
