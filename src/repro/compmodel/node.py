"""The single-node computational model template (Fig 3a).

Wires a CPU, the cache hierarchy, the bus and the DRAM into one node
model that executes computational-operation traces at the level of
abstract machine instructions.  "It can be parameterized to represent a
wide range of node architectures" — every knob lives in
:class:`~repro.core.config.NodeConfig`.

Multi-CPU (shared-memory) nodes are modelled in
:mod:`repro.sharedmem.smp`, which replaces the analytic hierarchy with
the bus-contended snoopy version.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..core.config import NodeConfig
from ..operations.ops import COMPUTATIONAL_OPS, Operation
from ..pearl.kernel import kernel_mode
from .cpu import CPU
from .hierarchy import CacheHierarchy

__all__ = ["SingleNodeModel", "NodeResult"]


class NodeResult:
    """Outcome of executing a trace on a single-node model."""

    __slots__ = ("cycles", "instructions", "cpu_summary", "memory_summary",
                 "clock_hz")

    def __init__(self, cycles: float, instructions: int, cpu_summary: dict,
                 memory_summary: dict, clock_hz: float) -> None:
        self.cycles = cycles
        self.instructions = instructions
        self.cpu_summary = cpu_summary
        self.memory_summary = memory_summary
        self.clock_hz = clock_hz

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def cpi(self) -> float:
        """Cycles per (abstract) instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def __repr__(self) -> str:
        return (f"<NodeResult cycles={self.cycles:.0f} "
                f"instr={self.instructions} cpi={self.cpi:.2f}>")


class SingleNodeModel:
    """One MIMD node: CPU + cache hierarchy + bus + memory.

    The model is analytic and stateful: caches warm up across calls.
    Use a fresh instance (or :meth:`reset`) per experiment.
    """

    def __init__(self, cfg: NodeConfig, node_id: int = 0,
                 rng: Optional[np.random.Generator] = None) -> None:
        cfg.validate()
        if cfg.n_cpus != 1:
            raise ValueError(
                "SingleNodeModel is the single-CPU template; use "
                "repro.sharedmem.SMPNodeModel for multi-CPU nodes")
        self.cfg = cfg
        self.node_id = node_id
        self._rng = rng if rng is not None else np.random.default_rng(node_id)
        self.hierarchy = CacheHierarchy(
            cfg.cache_levels, cfg.bus, cfg.memory, self._rng,
            name=f"node{node_id}")
        self.cpu = CPU(cfg.cpu, self.hierarchy, cpu_id=0)

    def reset(self) -> None:
        """Cold caches and zeroed statistics."""
        self.hierarchy = CacheHierarchy(
            self.cfg.cache_levels, self.cfg.bus, self.cfg.memory, self._rng,
            name=f"node{self.node_id}")
        self.cpu = CPU(self.cfg.cpu, self.hierarchy, cpu_id=0)

    # -- execution -------------------------------------------------------

    def run_trace(self, ops: Iterable[Operation]) -> NodeResult:
        """Execute a purely computational trace; returns timing + stats.

        Communication operations are rejected — split them out with
        :func:`repro.compmodel.tasks.extract_tasks` first (that *is* the
        hybrid model of Fig 2).

        Under ``REPRO_KERNEL=fast`` (the default) the plain node
        template runs the batched cost loop of
        :mod:`repro.compmodel.batch`; results and statistics are
        identical to the seed per-op loop.
        """
        if kernel_mode() == "fast":
            from .batch import fast_eligible, run_trace_fast
            if fast_eligible(self):
                return run_trace_fast(self, ops)
        cpu = self.cpu
        start_cycles = cpu.stats.cycles
        start_instr = cpu.stats.instructions
        for op in ops:
            if op.code not in COMPUTATIONAL_OPS:
                raise ValueError(
                    f"node {self.node_id}: communication operation {op!r} in "
                    "a computational trace; use extract_tasks() for mixed "
                    "traces")
            cpu.op_cycles(op)
        return NodeResult(
            cycles=cpu.stats.cycles - start_cycles,
            instructions=cpu.stats.instructions - start_instr,
            cpu_summary=cpu.stats.summary(),
            memory_summary=self.hierarchy.summary(),
            clock_hz=self.cfg.cpu.clock_hz,
        )

    def op_cycles(self, op: Operation) -> float:
        """Cost of a single computational operation (hybrid-mode hook)."""
        return self.cpu.op_cycles(op)

    def summary(self) -> dict:
        return {
            "node": self.node_id,
            "cpu": self.cpu.stats.summary(),
            "memory_system": self.hierarchy.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SingleNodeModel node={self.node_id} cpu={self.cfg.cpu.name!r}>"
