"""The DRAM component — "a simple DRAM memory" (Section 4.1).

Latency-only: a fixed first-word access cost plus a per-word streaming
cost for the remainder of a cache-line fill.  Contents are never
modelled (Section 6), so the component is a latency calculator with
traffic counters.
"""

from __future__ import annotations

from ..core.config import MemoryConfig

__all__ = ["DRAM"]


class DRAM:
    """DRAM latency model plus read/write traffic statistics."""

    __slots__ = ("cfg", "name", "reads", "writes", "bytes_read",
                 "bytes_written")

    def __init__(self, cfg: MemoryConfig, name: str = "memory") -> None:
        cfg.validate()
        self.cfg = cfg
        self.name = name
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def read_cycles(self, nbytes: int) -> float:
        """Latency to read ``nbytes`` (e.g. a line fill)."""
        self.reads += 1
        self.bytes_read += nbytes
        return self.cfg.line_fill_cycles(nbytes)

    def write_cycles(self, nbytes: int) -> float:
        """Latency to write ``nbytes`` (e.g. a dirty-line writeback)."""
        self.writes += 1
        self.bytes_written += nbytes
        return self.cfg.line_fill_cycles(nbytes)

    def summary(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DRAM reads={self.reads} writes={self.writes}>"
