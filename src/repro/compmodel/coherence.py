"""Snoopy bus-based cache coherence (MSI / MESI).

"[The cache hierarchy] supports a setup of multiple processors using a
common cache hierarchy.  To guarantee cache coherency in such a
configuration, the caches provide a snoopy bus protocol.  However, other
strategies, like directory schemes, can be added with relative ease"
(Section 4.1).

The protocol operates on the CPUs' *private L1* caches; everything below
(shared cache levels, DRAM) is reached over the arbitrated bus.  Three
bus transactions are modelled:

* **BusRd**   — read miss: another cache in MODIFIED supplies the line
  (flush; both end SHARED) or the shared levels / memory do.  Under
  MESI, a line loaded with no other copies enters EXCLUSIVE.
* **BusRdX**  — write miss: like BusRd, but all other copies are
  invalidated and the line is loaded MODIFIED.
* **BusUpgr** — write hit on a SHARED line: invalidate other copies, no
  data transfer.

All transaction methods are generators run inside a CPU process, so bus
contention between CPUs is simulated, not estimated.
"""

from __future__ import annotations

from ..core.config import ConfigError
from .bus import Bus
from .cache import Cache, LineState
from .memory import DRAM

__all__ = ["SnoopyCoherence", "CoherenceStats"]


class CoherenceStats:
    """Protocol-level event counters."""

    __slots__ = ("bus_rd", "bus_rdx", "bus_upgr", "cache_to_cache",
                 "invalidations", "memory_fills", "writebacks")

    def __init__(self) -> None:
        self.bus_rd = 0
        self.bus_rdx = 0
        self.bus_upgr = 0
        self.cache_to_cache = 0
        self.invalidations = 0
        self.memory_fills = 0
        self.writebacks = 0

    @property
    def transactions(self) -> int:
        return self.bus_rd + self.bus_rdx + self.bus_upgr

    def summary(self) -> dict:
        return {
            "bus_rd": self.bus_rd,
            "bus_rdx": self.bus_rdx,
            "bus_upgr": self.bus_upgr,
            "transactions": self.transactions,
            "cache_to_cache": self.cache_to_cache,
            "invalidations": self.invalidations,
            "memory_fills": self.memory_fills,
            "writebacks": self.writebacks,
        }


class SnoopyCoherence:
    """MSI/MESI over private caches + shared levels + memory.

    Parameters
    ----------
    private_caches:
        One L1 (data, or unified) per CPU; write-back only.
    shared_caches:
        The shared lower levels (possibly empty), nearest first.
    bus / memory:
        The arbitrated bus (simulated) and the DRAM behind it.
    protocol:
        ``"msi"`` or ``"mesi"``.
    """

    def __init__(self, private_caches: list[Cache], shared_caches: list[Cache],
                 bus: Bus, memory: DRAM, protocol: str = "mesi") -> None:
        if protocol not in ("msi", "mesi"):
            raise ConfigError(f"unknown coherence protocol {protocol!r}")
        for c in private_caches:
            if c.cfg.write_policy != "write-back":
                raise ConfigError(
                    f"snoopy protocol requires write-back private caches "
                    f"({c.name} is {c.cfg.write_policy})")
        if bus.resource is None:
            raise ConfigError("coherent bus must be built with a simulator")
        self.private = private_caches
        self.shared = shared_caches
        self.bus = bus
        self.memory = memory
        self.protocol = protocol
        self.stats = CoherenceStats()
        self.line_bytes = private_caches[0].cfg.line_bytes

    # -- local (bus-free) hit classification --------------------------------

    def local_hit(self, cpu: int, address: int, is_write: bool) -> bool:
        """Can this access complete without a bus transaction?

        Reads hit on any valid state; writes hit on MODIFIED or (MESI)
        EXCLUSIVE — an E write upgrades to M silently.  A hit updates
        replacement state and the cache's hit counters.
        """
        cache = self.private[cpu]
        state = cache.probe(address)
        if not state.is_valid:
            return False
        if not is_write:
            cache.lookup(address, is_write=False)
            return True
        if state is LineState.MODIFIED:
            cache.lookup(address, is_write=True)
            return True
        if state is LineState.EXCLUSIVE and self.protocol == "mesi":
            cache.lookup(address, is_write=True)   # marks MODIFIED
            return True
        return False   # SHARED write (or MSI EXCLUSIVE, unreachable)

    # -- bus transactions (generators) ----------------------------------------

    def read_miss(self, cpu: int, address: int):
        """BusRd: load the line for reading."""
        self.stats.bus_rd += 1
        cache = self.private[cpu]
        cache.lookup(address, is_write=False)      # records the miss
        yield self.bus.resource.acquire()
        try:
            cycles = self.bus.cfg.arbitration_cycles + self.bus.cfg.snoop_cycles
            others_have_copy = False
            dirty_supplied = False
            for other_cpu, other in enumerate(self.private):
                if other_cpu == cpu:
                    continue
                state = other.probe(address)
                if not state.is_valid:
                    continue
                others_have_copy = True
                if state is LineState.MODIFIED:
                    # Owner flushes: cache-to-cache transfer + memory update.
                    self.stats.cache_to_cache += 1
                    other.stats.snoop_flushes += 1
                    other.set_state(address, LineState.SHARED)
                    cycles += self.bus.cfg.transfer_cycles(self.line_bytes)
                    cycles += self.memory.write_cycles(self.line_bytes)
                    dirty_supplied = True
                elif state is LineState.EXCLUSIVE:
                    other.set_state(address, LineState.SHARED)
            if not dirty_supplied:
                # Clean copies do not supply; the shared levels/memory do.
                cycles += self._fill_from_below(address, is_write=False)
            new_state = (LineState.EXCLUSIVE
                         if self.protocol == "mesi" and not others_have_copy
                         else LineState.SHARED)
            cycles += self._install(cpu, address, new_state)
            self.bus.transactions += 1
            self.bus.busy_cycles += cycles
            yield cycles
        finally:
            self.bus.resource.release()

    def write_miss(self, cpu: int, address: int):
        """BusRdX: load the line for writing, invalidating other copies."""
        self.stats.bus_rdx += 1
        cache = self.private[cpu]
        cache.lookup(address, is_write=True)       # records the miss
        yield self.bus.resource.acquire()
        try:
            cycles = self.bus.cfg.arbitration_cycles + self.bus.cfg.snoop_cycles
            supplied = False
            for other_cpu, other in enumerate(self.private):
                if other_cpu == cpu:
                    continue
                state = other.invalidate(address)
                if state is LineState.MODIFIED:
                    # Dirty owner supplies the line directly.
                    self.stats.cache_to_cache += 1
                    other.stats.snoop_flushes += 1
                    cycles += self.bus.cfg.transfer_cycles(self.line_bytes)
                    supplied = True
                if state.is_valid:
                    self.stats.invalidations += 1
            if not supplied:
                cycles += self._fill_from_below(address, is_write=False)
            cycles += self._install(cpu, address, LineState.MODIFIED)
            self.bus.transactions += 1
            self.bus.busy_cycles += cycles
            yield cycles
        finally:
            self.bus.resource.release()

    def write_upgrade(self, cpu: int, address: int):
        """BusUpgr: SHARED → MODIFIED without a data transfer."""
        self.stats.bus_upgr += 1
        cache = self.private[cpu]
        yield self.bus.resource.acquire()
        try:
            cycles = self.bus.cfg.arbitration_cycles + self.bus.cfg.snoop_cycles
            if not cache.probe(address).is_valid:
                # Our copy was invalidated while we waited for the bus:
                # the upgrade becomes a full BusRdX fill.
                for other_cpu, other in enumerate(self.private):
                    if other_cpu == cpu:
                        continue
                    state = other.invalidate(address)
                    if state is LineState.MODIFIED:
                        self.stats.cache_to_cache += 1
                        other.stats.snoop_flushes += 1
                        cycles += self.bus.cfg.transfer_cycles(self.line_bytes)
                    if state.is_valid:
                        self.stats.invalidations += 1
                cycles += self._fill_from_below(address, is_write=False)
                cycles += self._install(cpu, address, LineState.MODIFIED)
            else:
                for other_cpu, other in enumerate(self.private):
                    if other_cpu == cpu:
                        continue
                    if other.invalidate(address).is_valid:
                        self.stats.invalidations += 1
                cache.lookup(address, is_write=True)   # hit; marks MODIFIED
            self.bus.transactions += 1
            self.bus.busy_cycles += cycles
            yield cycles
        finally:
            self.bus.resource.release()

    # -- below-the-bus helpers (analytic, inside the bus hold) --------------

    def _fill_from_below(self, address: int, is_write: bool) -> float:
        """Latency to obtain the line from shared levels or memory."""
        cycles = 0.0
        for cache in self.shared:
            cycles += cache.cfg.hit_cycles
            if cache.lookup(address, is_write=False):
                return cycles
        self.stats.memory_fills += 1
        cycles += self.memory.read_cycles(self.line_bytes)
        cycles += self.bus.cfg.transfer_cycles(self.line_bytes)
        # Install in the shared levels on the way up (non-inclusive walk).
        for cache in self.shared:
            victim = cache.insert(address, LineState.SHARED)
            if victim is not None and victim[1].is_dirty:
                self.stats.writebacks += 1
                cycles += self.memory.write_cycles(cache.cfg.line_bytes)
        return cycles

    def _install(self, cpu: int, address: int, state: LineState) -> float:
        """Install the line in the requesting L1; handle a dirty victim."""
        cycles = 0.0
        victim = self.private[cpu].insert(address, state)
        if victim is not None and victim[1].is_dirty:
            self.stats.writebacks += 1
            cycles += self.bus.cfg.transfer_cycles(self.line_bytes)
            cycles += self.memory.write_cycles(self.line_bytes)
        return cycles
