"""``repro.compmodel`` — the single-node computational model (Fig 3a).

Simulates a MIMD node's processors and memory hierarchy at the level of
abstract machine instructions: CPU (per-operation cycle costs), multi-
level cache hierarchy (tags only), bus with arbitration, and a simple
DRAM.  Also hosts the hybrid model's task extractor (Fig 2).
"""

from .bus import Bus
from .cache import Cache, CacheStats, LineState
from .coherence import CoherenceStats, SnoopyCoherence
from .cpu import CPU, CPUStats
from .directory import DirectoryCoherence, DirectoryStats
from .hierarchy import AccessKind, CacheHierarchy
from .memory import DRAM
from .node import NodeResult, SingleNodeModel
from .tasks import TaskExtractionStats, extract_tasks

__all__ = [
    "AccessKind", "Bus", "CPU", "CPUStats", "Cache", "CacheHierarchy",
    "CacheStats", "CoherenceStats", "DRAM", "DirectoryCoherence",
    "DirectoryStats", "SnoopyCoherence",
    "LineState", "NodeResult", "SingleNodeModel",
    "TaskExtractionStats", "extract_tasks",
]
