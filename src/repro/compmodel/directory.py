"""Directory-based cache coherence — the paper's "other strategies".

Section 4.1: "To guarantee cache coherency ... the caches provide a
snoopy bus protocol.  However, other strategies, like directory
schemes, can be added with relative ease."  This module adds one: a
full-map directory at the memory side.

Differences from the snoopy protocol that the timing model captures:

* requests are point-to-point (requester → directory), so they can use
  a non-broadcast fabric (crossbar) with one port per CPU;
* every request pays a *directory lookup* latency;
* invalidations are *targeted*: only actual sharers receive one, each
  costing a fabric transfer — cheap for private data, increasingly
  expensive as sharer counts grow (the classic directory trade-off
  against the snoop's fixed broadcast cost);
* a dirty line is fetched from its owner via the directory (two fabric
  transfers: owner → directory/memory → requester), not flushed on a
  shared bus.

The class implements the same interface as
:class:`~repro.compmodel.coherence.SnoopyCoherence` (``local_hit``,
``read_miss``, ``write_miss``, ``write_upgrade``), so
:class:`~repro.sharedmem.smp.SMPNodeModel` can host either protocol
unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import ConfigError
from ..pearl import Resource, Simulator
from .bus import Bus
from .cache import Cache, LineState
from .memory import DRAM

__all__ = ["DirectoryCoherence", "DirectoryStats"]


class DirectoryStats:
    """Directory-protocol event counters."""

    __slots__ = ("reads", "read_exclusives", "upgrades", "lookups",
                 "invalidations_sent", "owner_fetches", "memory_fills",
                 "writebacks", "eviction_notices")

    def __init__(self) -> None:
        self.reads = 0
        self.read_exclusives = 0
        self.upgrades = 0
        self.lookups = 0
        self.invalidations_sent = 0
        self.owner_fetches = 0
        self.memory_fills = 0
        self.writebacks = 0
        self.eviction_notices = 0

    @property
    def transactions(self) -> int:
        return self.reads + self.read_exclusives + self.upgrades

    def summary(self) -> dict:
        return {
            "reads": self.reads,
            "read_exclusives": self.read_exclusives,
            "upgrades": self.upgrades,
            "transactions": self.transactions,
            "lookups": self.lookups,
            "invalidations_sent": self.invalidations_sent,
            "owner_fetches": self.owner_fetches,
            "memory_fills": self.memory_fills,
            "writebacks": self.writebacks,
            "eviction_notices": self.eviction_notices,
        }


class _DirEntry:
    """Full-map directory entry for one line."""

    __slots__ = ("sharers", "dirty_owner")

    def __init__(self) -> None:
        self.sharers: set[int] = set()
        self.dirty_owner: Optional[int] = None


class DirectoryCoherence:
    """Full-map directory protocol over private caches + shared levels.

    Parameters mirror :class:`SnoopyCoherence`; additionally
    ``lookup_cycles`` is the directory access latency and ``fabric``
    ("bus" or "crossbar") selects the request interconnect: the bus
    serializes every transaction end-to-end, the crossbar only
    serializes at the directory/memory port so independent transfers
    overlap.
    """

    def __init__(self, private_caches: list[Cache],
                 shared_caches: list[Cache], bus: Bus, memory: DRAM,
                 protocol: str = "mesi", lookup_cycles: float = 2.0,
                 fabric: str = "bus",
                 sim: Optional[Simulator] = None) -> None:
        if protocol not in ("msi", "mesi"):
            raise ConfigError(f"unknown coherence protocol {protocol!r}")
        for c in private_caches:
            if c.cfg.write_policy != "write-back":
                raise ConfigError(
                    "directory protocol requires write-back private caches")
        if fabric not in ("bus", "crossbar"):
            raise ConfigError(f"unknown fabric {fabric!r}")
        if bus.resource is None:
            raise ConfigError("directory fabric must be built with a "
                              "simulator")
        self.private = private_caches
        self.shared = shared_caches
        self.bus = bus
        self.memory = memory
        self.protocol = protocol
        self.lookup_cycles = lookup_cycles
        self.fabric = fabric
        self.stats = DirectoryStats()
        self.line_bytes = private_caches[0].cfg.line_bytes
        self._dir: dict[int, _DirEntry] = {}
        # Crossbar: the directory port is the serialization point; the
        # bus fabric reuses the (single) bus resource for everything.
        if fabric == "crossbar":
            owner_sim = sim if sim is not None else bus.resource.sim
            self._port = Resource(owner_sim, 1, "directory-port")
        else:
            self._port = bus.resource

    # -- helpers -----------------------------------------------------------

    def _entry(self, line: int) -> _DirEntry:
        entry = self._dir.get(line)
        if entry is None:
            entry = _DirEntry()
            self._dir[line] = entry
        return entry

    def _line(self, address: int) -> int:
        return self.private[0].line_address(address)

    def sharers_of(self, address: int) -> set[int]:
        """Current sharer set (tests/analysis)."""
        return set(self._dir.get(self._line(address), _DirEntry()).sharers)

    def _transfer(self) -> float:
        return self.bus.cfg.transfer_cycles(self.line_bytes)

    # -- local (fabric-free) hit classification ----------------------------

    def local_hit(self, cpu: int, address: int, is_write: bool) -> bool:
        """Same contract as the snoopy protocol's local_hit."""
        cache = self.private[cpu]
        state = cache.probe(address)
        if not state.is_valid:
            return False
        if not is_write:
            cache.lookup(address, is_write=False)
            return True
        if state is LineState.MODIFIED:
            cache.lookup(address, is_write=True)
            return True
        if state is LineState.EXCLUSIVE and self.protocol == "mesi":
            cache.lookup(address, is_write=True)
            # Silent E->M: the directory already records us as the sole
            # sharer; mark dirty ownership.
            self._entry(self._line(address)).dirty_owner = cpu
            return True
        return False

    # -- transactions (generators) --------------------------------------------

    def read_miss(self, cpu: int, address: int):
        """Directory read: join the sharer set, fetching from the owner
        if the line is dirty elsewhere."""
        self.stats.reads += 1
        cache = self.private[cpu]
        cache.lookup(address, is_write=False)      # records the miss
        line = self._line(address)
        yield self._port.acquire()
        try:
            self.stats.lookups += 1
            cycles = self.bus.cfg.arbitration_cycles + self.lookup_cycles
            entry = self._entry(line)
            if entry.dirty_owner is not None and entry.dirty_owner != cpu:
                owner = entry.dirty_owner
                self.stats.owner_fetches += 1
                owner_cache = self.private[owner]
                if owner_cache.probe(line).is_valid:
                    owner_cache.set_state(line, LineState.SHARED)
                    owner_cache.stats.snoop_flushes += 1
                # owner -> memory -> requester: two line transfers plus
                # the memory update.
                cycles += 2 * self._transfer()
                cycles += self.memory.write_cycles(self.line_bytes)
                entry.dirty_owner = None
            else:
                # A clean EXCLUSIVE holder must be demoted to SHARED
                # before a second copy exists.
                for sharer in entry.sharers:
                    if sharer == cpu:
                        continue
                    sharer_cache = self.private[sharer]
                    if sharer_cache.probe(line) is LineState.EXCLUSIVE:
                        sharer_cache.set_state(line, LineState.SHARED)
                cycles += self._fill_from_below(line)
                cycles += self._transfer()
            grant_exclusive = (self.protocol == "mesi"
                               and not entry.sharers)
            entry.sharers.add(cpu)
            state = (LineState.EXCLUSIVE if grant_exclusive
                     else LineState.SHARED)
            cycles += self._install(cpu, line, state)
            self.bus.transactions += 1
            self.bus.busy_cycles += cycles
            held, tail = self._split_tail(cycles)
            yield held
        finally:
            self._port.release()
        if tail:
            yield tail

    def write_miss(self, cpu: int, address: int):
        """Directory read-exclusive: invalidate all sharers, own the line."""
        self.stats.read_exclusives += 1
        cache = self.private[cpu]
        cache.lookup(address, is_write=True)       # records the miss
        line = self._line(address)
        yield self._port.acquire()
        try:
            self.stats.lookups += 1
            cycles = self.bus.cfg.arbitration_cycles + self.lookup_cycles
            entry = self._entry(line)
            cycles += self._claim_exclusive(cpu, line, entry,
                                            need_data=True)
            cycles += self._install(cpu, line, LineState.MODIFIED)
            entry.sharers = {cpu}
            entry.dirty_owner = cpu
            self.bus.transactions += 1
            self.bus.busy_cycles += cycles
            held, tail = self._split_tail(cycles)
            yield held
        finally:
            self._port.release()
        if tail:
            yield tail

    def write_upgrade(self, cpu: int, address: int):
        """SHARED -> MODIFIED: targeted invalidations, no data unless our
        copy was invalidated while we waited for the directory."""
        self.stats.upgrades += 1
        cache = self.private[cpu]
        line = self._line(address)
        yield self._port.acquire()
        try:
            self.stats.lookups += 1
            cycles = self.bus.cfg.arbitration_cycles + self.lookup_cycles
            entry = self._entry(line)
            if not cache.probe(line).is_valid:
                # Lost the race: a competing write invalidated us.
                cycles += self._claim_exclusive(cpu, line, entry,
                                                need_data=True)
                cycles += self._install(cpu, line, LineState.MODIFIED)
            else:
                cycles += self._claim_exclusive(cpu, line, entry,
                                                need_data=False)
                cache.lookup(line, is_write=True)   # hit; marks MODIFIED
            entry.sharers = {cpu}
            entry.dirty_owner = cpu
            self.bus.transactions += 1
            self.bus.busy_cycles += cycles
            held, tail = self._split_tail(cycles)
            yield held
        finally:
            self._port.release()
        if tail:
            yield tail

    # -- protocol internals ----------------------------------------------------

    def _split_tail(self, cycles: float) -> tuple[float, float]:
        """Crossbar fabric: the final line delivery to the requester
        rides the requester's private port, so it does not hold the
        directory; the bus fabric holds everything end to end."""
        if self.fabric != "crossbar":
            return cycles, 0.0
        tail = min(self._transfer(), cycles)
        return cycles - tail, tail


    def _claim_exclusive(self, cpu: int, line: int, entry: _DirEntry,
                         need_data: bool) -> float:
        """Invalidate all other sharers; fetch data if requested."""
        cycles = 0.0
        dirty_supplied = False
        for sharer in sorted(entry.sharers):
            if sharer == cpu:
                continue
            self.stats.invalidations_sent += 1
            # One fabric hop per targeted invalidation (+ its ack,
            # folded into the same transfer cost).
            cycles += self.bus.cfg.transfer_cycles(8)
            sharer_cache = self.private[sharer]
            prior = sharer_cache.invalidate(line)
            if prior is LineState.MODIFIED:
                self.stats.owner_fetches += 1
                sharer_cache.stats.snoop_flushes += 1
                cycles += self._transfer()
                dirty_supplied = True
        entry.dirty_owner = None
        if need_data and not dirty_supplied:
            cycles += self._fill_from_below(line)
            cycles += self._transfer()
        return cycles

    def _fill_from_below(self, line: int, is_write: bool = False) -> float:
        # ``is_write`` is accepted for interface parity with the snoopy
        # protocol (the SMP ifetch path calls both); fills are reads.
        cycles = 0.0
        for cache in self.shared:
            cycles += cache.cfg.hit_cycles
            if cache.lookup(line, is_write=False):
                return cycles
        self.stats.memory_fills += 1
        cycles += self.memory.read_cycles(self.line_bytes)
        for cache in self.shared:
            victim = cache.insert(line, LineState.SHARED)
            if victim is not None and victim[1].is_dirty:
                self.stats.writebacks += 1
                cycles += self.memory.write_cycles(cache.cfg.line_bytes)
        return cycles

    def _install(self, cpu: int, line: int, state: LineState) -> float:
        cycles = 0.0
        victim = self.private[cpu].insert(line, state)
        if victim is not None:
            vaddr, vstate = victim
            self._evict_notice(cpu, vaddr, vstate)
            if vstate.is_dirty:
                self.stats.writebacks += 1
                cycles += self._transfer()
                cycles += self.memory.write_cycles(self.line_bytes)
        return cycles

    def _evict_notice(self, cpu: int, line: int, state: LineState) -> None:
        """Keep the sharer map exact (replacement hints on eviction)."""
        self.stats.eviction_notices += 1
        entry = self._dir.get(line)
        if entry is None:
            return
        entry.sharers.discard(cpu)
        if entry.dirty_owner == cpu:
            entry.dirty_owner = None
        if not entry.sharers:
            del self._dir[line]
