"""Computational-task extraction — the bridge of the hybrid model (Fig 2).

"The computational tasks are derived from the computational model,
which constructs them by measuring the simulated time between two
consecutive communication operations" (Section 3.2).

:func:`extract_tasks` turns a *mixed* operation stream (computational +
communication) into a *task-level* stream: runs of computational
operations collapse into single ``compute(duration)`` operations, with
the communication operations passed through unchanged.  The resulting
stream is exactly what the multi-node communication model consumes.

Because the extractor is a generator over a generator, it composes with
execution-driven (lazily generated) traces: extraction never runs ahead
of a global event, preserving trace validity.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..operations.ops import COMPUTATIONAL_OPS, Operation, compute
from ..pearl.kernel import kernel_mode
from .node import SingleNodeModel

__all__ = ["extract_tasks", "TaskExtractionStats"]


class TaskExtractionStats:
    """Bookkeeping from one extraction pass."""

    __slots__ = ("computational_ops", "communication_ops", "tasks_emitted",
                 "total_task_cycles")

    def __init__(self) -> None:
        self.computational_ops = 0
        self.communication_ops = 0
        self.tasks_emitted = 0
        self.total_task_cycles = 0.0

    def summary(self) -> dict:
        return {
            "computational_ops": self.computational_ops,
            "communication_ops": self.communication_ops,
            "tasks_emitted": self.tasks_emitted,
            "total_task_cycles": self.total_task_cycles,
            "mean_task_cycles": (self.total_task_cycles / self.tasks_emitted
                                 if self.tasks_emitted else 0.0),
        }


def extract_tasks(node_model: SingleNodeModel, ops: Iterable[Operation],
                  stats: TaskExtractionStats | None = None,
                  ) -> Iterator[Operation]:
    """Collapse computational runs into tasks using ``node_model`` timing.

    Yields a task-level operation stream: ``compute(c)`` for each run of
    computational operations (``c`` = simulated cycles the node model
    charges for the run) interleaved with the original communication
    operations.  Zero-length runs emit nothing.

    Under ``REPRO_KERNEL=fast`` (the default), plain analytic node
    models are charged by the batched cost loop of
    :mod:`repro.compmodel.batch` — same yielded stream, statistics and
    exceptions, less host time per operation.
    """
    if stats is None:
        stats = TaskExtractionStats()
    if kernel_mode() == "fast":
        from .batch import extract_tasks_fast, fast_eligible
        if fast_eligible(node_model):
            return extract_tasks_fast(node_model, ops, stats)
    return _extract_tasks_scalar(node_model, ops, stats)


def _extract_tasks_scalar(node_model: SingleNodeModel,
                          ops: Iterable[Operation],
                          stats: TaskExtractionStats) -> Iterator[Operation]:
    """The seed per-op extraction loop (also the non-template fallback)."""
    acc = 0.0
    op_cycles = node_model.op_cycles
    for op in ops:
        if op.code in COMPUTATIONAL_OPS:
            acc += op_cycles(op)
            stats.computational_ops += 1
        else:
            if acc > 0.0:
                stats.tasks_emitted += 1
                stats.total_task_cycles += acc
                yield compute(acc)
                acc = 0.0
            stats.communication_ops += 1
            yield op
    if acc > 0.0:
        stats.tasks_emitted += 1
        stats.total_task_cycles += acc
        yield compute(acc)
