"""The CPU component — abstract-instruction execution timing.

"The CPU component simulates a microprocessor within the node
architecture.  It supports the operation set described in section 3.3."
Costs come from :class:`~repro.core.config.CPUConfig`; memory operations
additionally pay whatever the attached memory system charges.

Because operations are register-less abstract instructions, the CPU is
a cycle-cost composer, not an interpreter — the paper's core trade-off
(higher simulation speed for a small accuracy loss, no pipeline
modelling).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.config import CPUConfig
from ..operations.ops import OpCode, Operation
from ..operations.optypes import MEM_TYPE_BYTES, MemType
from .hierarchy import AccessKind, CacheHierarchy

__all__ = ["CPU", "CPUStats"]


class CPUStats:
    """Executed-operation counters for one CPU."""

    __slots__ = ("cycles", "op_counts", "memory_accesses", "ifetches",
                 "instructions")

    def __init__(self) -> None:
        self.cycles = 0.0
        self.op_counts = [0] * 16       # indexed by OpCode
        self.memory_accesses = 0
        self.ifetches = 0
        self.instructions = 0

    def count(self, code: int) -> int:
        return self.op_counts[code]

    def summary(self) -> dict:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "memory_accesses": self.memory_accesses,
            "ifetches": self.ifetches,
            "op_counts": {OpCode(i).name.lower(): n
                          for i, n in enumerate(self.op_counts) if n},
        }


class CPU:
    """Executes computational operations against a memory hierarchy.

    The CPU is analytic: :meth:`op_cycles` returns the cost of one
    operation and updates all cache/bus/memory state as a side effect.
    Communication operations are *not* accepted here — they belong to
    the communication model ("communication operations are not simulated
    by this model, but are directly forwarded", Section 3.2).
    """

    __slots__ = ("cfg", "memsys", "cpu_id", "stats", "_arith")

    def __init__(self, cfg: CPUConfig, memsys: Optional[CacheHierarchy],
                 cpu_id: int = 0) -> None:
        cfg.validate()
        self.cfg = cfg
        self.memsys = memsys
        self.cpu_id = cpu_id
        self.stats = CPUStats()
        # Arithmetic cost tables indexed [opcode][arith_type].
        self._arith = {
            int(OpCode.ADD): cfg.add_cycles,
            int(OpCode.SUB): cfg.sub_cycles,
            int(OpCode.MUL): cfg.mul_cycles,
            int(OpCode.DIV): cfg.div_cycles,
        }

    def op_cycles(self, op: Operation) -> float:
        """Cycle cost of one computational operation (updates stats)."""
        code = int(op.code)
        stats = self.stats
        stats.op_counts[code] += 1
        stats.instructions += 1
        cfg = self.cfg
        if code == OpCode.LOAD:
            stats.memory_accesses += 1
            cost = cfg.load_issue_cycles + self._mem(AccessKind.READ, op)
        elif code == OpCode.STORE:
            stats.memory_accesses += 1
            cost = cfg.store_issue_cycles + self._mem(AccessKind.WRITE, op)
        elif code == OpCode.IFETCH:
            stats.ifetches += 1
            if self.memsys is not None:
                cost = self.memsys.access_cycles(AccessKind.IFETCH,
                                                 op.arg, 4)
            else:
                cost = 1.0
        elif code in self._arith:
            cost = self._arith[code][op.dtype]
        elif code == OpCode.LOADC:
            cost = cfg.loadc_cycles
        elif code == OpCode.BRANCH:
            cost = cfg.branch_cycles
        elif code == OpCode.CALL:
            cost = cfg.call_cycles
        elif code == OpCode.RET:
            cost = cfg.ret_cycles
        else:
            raise ValueError(
                f"CPU cannot execute communication operation {op!r}; "
                "forward it to the communication model")
        stats.cycles += cost
        return cost

    def _mem(self, kind: int, op: Operation) -> float:
        if self.memsys is None:
            return 0.0
        nbytes = MEM_TYPE_BYTES[MemType(op.dtype)]
        return self.memsys.access_cycles(kind, op.arg, nbytes)

    def execute(self, ops: Iterable[Operation]) -> float:
        """Execute a whole computational trace; returns total cycles."""
        total = 0.0
        op_cycles = self.op_cycles
        for op in ops:
            total += op_cycles(op)
        return total

    @property
    def seconds(self) -> float:
        """Simulated wall-clock time of everything executed so far."""
        return self.stats.cycles / self.cfg.clock_hz

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CPU {self.cfg.name!r} id={self.cpu_id} "
                f"cycles={self.stats.cycles:.0f}>")
