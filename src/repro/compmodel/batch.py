"""Batched operation-cost evaluation — the computational model's fast lane.

The hybrid model spends almost all of its host time charging
computational operations between two communication operations (the
paper's "computational task" boundary).  The seed path walks
``CPU.op_cycles`` per operation: a dispatch chain, two enum
constructions and five statistics updates per op.  This module charges
whole inter-communication stretches at once:

* **chunked trace pulls** — materialized traces and
  :class:`~repro.tracegen.threads.InterleavedStream` sources are
  consumed a whole buffered stretch at a time (the stream's thread is
  suspended, so the operations already exist; bulk draining cannot run
  generation ahead of a global event), replacing one Python iterator
  call per operation with a plain list walk;
* **table-driven fixed costs** — every operation whose cost does not
  touch the memory hierarchy (``loadc``/``add``/``sub``/``mul``/
  ``div``/``branch``/``call``/``ret``) is priced from one numpy
  ``(code, dtype)`` cost table built per CPU config
  (:func:`fixed_cost_table`); the streaming loop indexes the same
  table row-wise, and :func:`batched_fixed_cycles` evaluates a whole
  stretch as a vectorized gather + ``cumsum``;
* **an inlined L1 lane** — the overwhelmingly common L1 hit
  (read, or write on a write-back cache, within one line) is served
  with the line state dict alone: same probe, same LRU touch, same
  state upgrade, same counters as ``Cache.lookup``, without the
  call chain.  Consecutive instruction fetches from one line skip even
  the probe (the line is resident and already most-recently-used, so
  the seed path's LRU touch would be a no-op).  Everything else
  (misses, write-through stores, line-spanning accesses) falls back to
  the untouched
  :meth:`~repro.compmodel.hierarchy.CacheHierarchy.access_cycles`;
* **batch-flushed statistics** — per-op counters accumulate in locals
  and flush at every task boundary (the only points where control can
  leave the loop), so every kernel-visible snapshot is identical to
  the seed path's.

Exactness, not approximation: cost values are the *same* Python floats
the seed tables hold, accumulated in the *same* order (``numpy.cumsum``
is sequential, so even the vectorized total is bit-identical to the
scalar chain — pinned by the batch property tests), and cache state
transitions happen in the same relative order.  The PR-1 determinism
goldens therefore hold byte for byte under this path.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..core.config import CPUConfig
from ..operations.ops import OpCode, Operation, compute
from ..operations.optypes import MEM_TYPE_BYTES, MemType
from ..operations.trace import Trace
from .cache import Cache, LineState
from .cpu import CPU
from .hierarchy import CacheHierarchy
from .node import NodeResult, SingleNodeModel

__all__ = [
    "batched_fixed_cycles",
    "extract_tasks_fast",
    "fast_eligible",
    "fixed_cost_table",
    "run_trace_fast",
]

_LOAD = int(OpCode.LOAD)
_STORE = int(OpCode.STORE)
_IFETCH = int(OpCode.IFETCH)
_N_CODES = 16
_N_DTYPES = 8          # dtype is a small raw int; valid MemTypes are < 6

#: datum size per raw ``dtype`` int (None = invalid, seed path raises).
_BYTES_BY_DTYPE = [
    MEM_TYPE_BYTES[MemType(d)] if d < len(MemType) else None
    for d in range(_N_DTYPES)
]

#: fixed-cost op codes (no memory-hierarchy interaction).
_FIXED_CODES = (OpCode.LOADC, OpCode.ADD, OpCode.SUB, OpCode.MUL,
                OpCode.DIV, OpCode.BRANCH, OpCode.CALL, OpCode.RET)


def fixed_cost_table(cfg: CPUConfig) -> np.ndarray:
    """The ``(16, 8)`` float64 cost table of one CPU config.

    ``table[code, dtype]`` is the cycle cost of a fixed-cost operation;
    cells that the seed path would reject (memory/communication codes,
    arithmetic dtypes outside the config table) hold NaN so a batched
    evaluation can detect them and divert to the seed path for the
    identical exception.
    """
    cfg.validate()
    table = np.full((_N_CODES, _N_DTYPES), np.nan, dtype=np.float64)
    table[int(OpCode.LOADC), :] = cfg.loadc_cycles
    table[int(OpCode.BRANCH), :] = cfg.branch_cycles
    table[int(OpCode.CALL), :] = cfg.call_cycles
    table[int(OpCode.RET), :] = cfg.ret_cycles
    for code, costs in ((OpCode.ADD, cfg.add_cycles),
                        (OpCode.SUB, cfg.sub_cycles),
                        (OpCode.MUL, cfg.mul_cycles),
                        (OpCode.DIV, cfg.div_cycles)):
        for at, v in costs.items():
            table[int(code), int(at)] = v
    return table


def _fixed_rows(cfg: CPUConfig) -> dict:
    """Fixed-cost rows keyed by int op code (row cells: float or None).

    A dict so that ``rows.get(code)`` answers None for any code outside
    the fixed-cost set — including negative or non-OpCode ints, which a
    Python list would silently index-wrap — exactly like the seed
    path's frozenset membership tests.
    """
    table = fixed_cost_table(cfg)
    rows: dict = {}
    for code in _FIXED_CODES:
        row = table[int(code)]
        rows[int(code)] = [None if np.isnan(v) else float(v) for v in row]
    return rows


def batched_fixed_cycles(cfg: CPUConfig, ops: Iterable[Operation],
                         start: float = 0.0) -> float:
    """Vectorized cycle total of a pure fixed-cost stretch.

    Gathers every cost from :func:`fixed_cost_table` at once and chains
    them with ``numpy.cumsum`` starting from ``start`` — *bit-identical*
    to ``acc = start; for op: acc += cost`` because cumsum accumulates
    sequentially.  Raises ``ValueError`` for any op the table cannot
    price (memory, communication, or invalid-dtype operations).
    """
    ops = list(ops)
    if not ops:
        return start
    table = fixed_cost_table(cfg)
    codes = np.fromiter((op.code for op in ops), dtype=np.intp,
                        count=len(ops))
    dtypes = np.fromiter((op.dtype for op in ops), dtype=np.intp,
                         count=len(ops))
    if ((codes < 0).any() or (codes >= _N_CODES).any()
            or (dtypes < 0).any() or (dtypes >= _N_DTYPES).any()):
        raise ValueError("operation outside the fixed-cost table")
    costs = table[codes, dtypes]
    if np.isnan(costs).any():
        bad = ops[int(np.isnan(costs).argmax())]
        raise ValueError(f"operation {bad!r} is not priced by the "
                         f"fixed-cost table of {cfg.name!r}")
    return float(np.concatenate(([start], costs)).cumsum()[-1])


def fast_eligible(node_model) -> bool:
    """True when ``node_model`` is the plain analytic single-node
    template the batched lane mirrors instruction-for-instruction.

    Subclassed CPUs, coherent (contended) hierarchies and subclassed
    caches take the seed path — correctness over speed for anything the
    lane was not proven against.
    """
    return (type(node_model) is SingleNodeModel
            and type(node_model.cpu) is CPU
            and type(node_model.cpu.memsys) is CacheHierarchy
            and all(type(c) is Cache for c in node_model.cpu.memsys.caches))


def _lane(path: list):
    """(sets, mask, shift, hit_cycles, lru, write_back, line_bytes,
    stats) of a path's L1, or None when the path has no caches."""
    if not path:
        return None
    l1 = path[0]
    return (l1._sets, l1._set_mask, l1._line_shift, l1.cfg.hit_cycles,
            l1.cfg.replacement == "lru", l1.cfg.write_policy == "write-back",
            l1.cfg.line_bytes, l1.stats)


def _chunk_iter(ops: Iterable[Operation]):
    """``ops`` as an iterable of sequences to walk with a plain loop.

    Materialized sources become one big chunk; interleaved streams are
    bulk-drained stretch by stretch; anything else stays a single lazy
    "chunk" (the inner per-op loop then pulls exactly like the seed
    path — important for execution-driven sources we cannot detect).
    """
    t = type(ops)
    if t is list or t is tuple:
        return (ops,)
    if t is Trace:
        return (ops._ops,)
    if getattr(t, "__name__", "") == "InterleavedStream" and \
            hasattr(ops, "chunks"):
        return ops.chunks()
    return (ops,)


def extract_tasks_fast(node_model: SingleNodeModel,
                       ops: Iterable[Operation],
                       stats=None) -> Iterator[Operation]:
    """Batched twin of :func:`repro.compmodel.tasks.extract_tasks`.

    Same pull pattern (never beyond what the source already generated —
    safe for execution-driven streams), same yielded stream, same
    statistics at every yield point, same exceptions; only the
    per-operation host cost differs.
    """
    from .tasks import TaskExtractionStats          # circular-safe
    if stats is None:
        stats = TaskExtractionStats()
    cpu = node_model.cpu
    cstats = cpu.stats
    cfg = cpu.cfg
    hier = cpu.memsys
    rows = _fixed_rows(cfg)
    load_issue = cfg.load_issue_cycles
    store_issue = cfg.store_issue_cycles
    access = hier.access_cycles
    op_counts = cstats.op_counts
    modified = LineState.MODIFIED

    dl = _lane(hier.data_path)
    il = _lane(hier.instr_path)
    unified = (dl is not None and il is not None
               and hier.instr_path[0] is hier.data_path[0])
    if il is not None:
        isets, imask, ishift, ihit, ilru, _, iline, istats = il
    else:
        isets = istats = None
        imask = ishift = iline = 0
        ihit = 0.0
        ilru = False
    if dl is not None:
        dsets, dmask, dshift, dhit, dlru, dwb, dline, dstats = dl
        load_hit = load_issue + dhit
        store_hit = store_issue + dhit
    else:
        dsets = dstats = None
        dmask = dshift = dline = 0
        load_hit = store_hit = 0.0
        dlru = dwb = False

    acc = 0.0
    cyc = cstats.cycles
    counts = [0] * _N_CODES
    n_if = 0               # ifetches (op_counts[7] tracked separately)
    i_hits = 0             # L1i lane read hits
    d_rhits = 0            # L1d lane read hits
    d_whits = 0            # L1d lane write hits
    # Address range of the last lane-served ifetch line ([lo, hi] empty
    # when invalid): fetches inside it are resident, already MRU, and
    # cannot span lines.
    memo_lo, memo_hi = 1, 0

    n_mem = 0              # LOAD+STORE count (memory_accesses)

    def flush() -> None:
        nonlocal n_if, n_mem, i_hits, d_rhits, d_whits
        cstats.cycles = cyc
        n = n_if
        if n_if:
            op_counts[7] += n_if
            cstats.ifetches += n_if
            n_if = 0
        for i in range(_N_CODES):
            c = counts[i]
            if c:
                op_counts[i] += c
                counts[i] = 0
                n += c
        if n_mem:
            cstats.memory_accesses += n_mem
            n_mem = 0
        if n:
            cstats.instructions += n
            stats.computational_ops += n
        if i_hits:
            istats.read_hits += i_hits
            i_hits = 0
        if d_rhits:
            dstats.read_hits += d_rhits
            d_rhits = 0
        if d_whits:
            dstats.write_hits += d_whits
            d_whits = 0

    try:
        for chunk in _chunk_iter(ops):
            for op in chunk:
                code = op.code
                if code == _IFETCH:
                    n_if += 1
                    addr = op.arg
                    if memo_lo <= addr <= memo_hi:
                        i_hits += 1
                        cyc += ihit
                        acc += ihit
                        continue
                    if isets is not None:
                        line = (addr >> ishift) << ishift
                        if addr - line + 4 <= iline:
                            cset = isets[(line >> ishift) & imask]
                            state = cset.get(line)
                            if state is not None and state:
                                if ilru:
                                    cset.move_to_end(line)
                                i_hits += 1
                                memo_lo = line
                                memo_hi = line + iline - 4
                                cyc += ihit
                                acc += ihit
                                continue
                    memo_lo, memo_hi = 1, 0
                    cost = access(2, addr, 4)
                    cyc += cost
                    acc += cost
                    continue
                row = rows.get(code)
                if row is not None:
                    d = op.dtype
                    cost = row[d] if 0 <= d < _N_DTYPES else None
                    if cost is None:
                        # Invalid dtype: divert to the seed path for
                        # the identical exception (and identical stats
                        # if it returns — fixed-cost ops ignore dtype).
                        flush()
                        cost = cpu.op_cycles(op)
                        cyc = cstats.cycles
                        stats.computational_ops += 1
                        acc += cost
                        continue
                    counts[code] += 1
                    cyc += cost
                    acc += cost
                    continue
                if code == _LOAD or code == _STORE:
                    d = op.dtype
                    nb = _BYTES_BY_DTYPE[d] if 0 <= d < _N_DTYPES else None
                    if nb is None:
                        flush()
                        cost = cpu.op_cycles(op)  # raises like the seed
                        cyc = cstats.cycles
                        stats.computational_ops += 1
                        acc += cost
                        continue
                    counts[code] += 1
                    n_mem += 1
                    if unified:
                        memo_lo, memo_hi = 1, 0
                    if dsets is not None:
                        addr = op.arg
                        line = (addr >> dshift) << dshift
                        if addr - line + nb <= dline:
                            cset = dsets[(line >> dshift) & dmask]
                            state = cset.get(line)
                            if state is not None and state:
                                if code == _LOAD:
                                    if dlru:
                                        cset.move_to_end(line)
                                    d_rhits += 1
                                    cyc += load_hit
                                    acc += load_hit
                                    continue
                                if dwb:
                                    if dlru:
                                        cset.move_to_end(line)
                                    cset[line] = modified
                                    d_whits += 1
                                    cyc += store_hit
                                    acc += store_hit
                                    continue
                    if code == _LOAD:
                        cost = load_issue + access(0, op.arg, nb)
                    else:
                        cost = store_issue + access(1, op.arg, nb)
                    cyc += cost
                    acc += cost
                    continue
                # Communication operation: task boundary.
                flush()
                if acc > 0.0:
                    stats.tasks_emitted += 1
                    stats.total_task_cycles += acc
                    yield compute(acc)
                    acc = 0.0
                stats.communication_ops += 1
                yield op
    finally:
        # Covers abrupt exits (source exceptions, diverted-op raises):
        # flush is idempotent, so the normal path below is unaffected.
        flush()
    if acc > 0.0:
        stats.tasks_emitted += 1
        stats.total_task_cycles += acc
        yield compute(acc)


def run_trace_fast(model: SingleNodeModel,
                   ops: Iterable[Operation]) -> NodeResult:
    """Batched twin of :meth:`SingleNodeModel.run_trace` (same loop
    structure as :func:`extract_tasks_fast` without task extraction)."""
    cpu = model.cpu
    cstats = cpu.stats
    cfg = cpu.cfg
    hier = cpu.memsys
    rows = _fixed_rows(cfg)
    load_issue = cfg.load_issue_cycles
    store_issue = cfg.store_issue_cycles
    access = hier.access_cycles
    op_counts = cstats.op_counts
    modified = LineState.MODIFIED

    dl = _lane(hier.data_path)
    il = _lane(hier.instr_path)
    unified = (dl is not None and il is not None
               and hier.instr_path[0] is hier.data_path[0])
    if il is not None:
        isets, imask, ishift, ihit, ilru, _, iline, istats = il
    else:
        isets = istats = None
        imask = ishift = iline = 0
        ihit = 0.0
        ilru = False
    if dl is not None:
        dsets, dmask, dshift, dhit, dlru, dwb, dline, dstats = dl
        load_hit = load_issue + dhit
        store_hit = store_issue + dhit
    else:
        dsets = dstats = None
        dmask = dshift = dline = 0
        load_hit = store_hit = 0.0
        dlru = dwb = False

    start_cycles = cstats.cycles
    start_instr = cstats.instructions
    cyc = start_cycles
    counts = [0] * _N_CODES
    n_if = 0
    n_mem = 0
    i_hits = 0
    d_rhits = 0
    d_whits = 0
    memo_lo, memo_hi = 1, 0

    def flush() -> None:
        nonlocal n_if, n_mem, i_hits, d_rhits, d_whits
        cstats.cycles = cyc
        n = n_if
        if n_if:
            op_counts[7] += n_if
            cstats.ifetches += n_if
            n_if = 0
        for i in range(_N_CODES):
            c = counts[i]
            if c:
                op_counts[i] += c
                counts[i] = 0
                n += c
        if n_mem:
            cstats.memory_accesses += n_mem
            n_mem = 0
        if n:
            cstats.instructions += n
        if i_hits:
            istats.read_hits += i_hits
            i_hits = 0
        if d_rhits:
            dstats.read_hits += d_rhits
            d_rhits = 0
        if d_whits:
            dstats.write_hits += d_whits
            d_whits = 0

    try:
        for chunk in _chunk_iter(ops):
            for op in chunk:
                code = op.code
                if code == _IFETCH:
                    n_if += 1
                    addr = op.arg
                    if memo_lo <= addr <= memo_hi:
                        i_hits += 1
                        cyc += ihit
                        continue
                    if isets is not None:
                        line = (addr >> ishift) << ishift
                        if addr - line + 4 <= iline:
                            cset = isets[(line >> ishift) & imask]
                            state = cset.get(line)
                            if state is not None and state:
                                if ilru:
                                    cset.move_to_end(line)
                                i_hits += 1
                                memo_lo = line
                                memo_hi = line + iline - 4
                                cyc += ihit
                                continue
                    memo_lo, memo_hi = 1, 0
                    cyc += access(2, addr, 4)
                    continue
                row = rows.get(code)
                if row is not None:
                    d = op.dtype
                    cost = row[d] if 0 <= d < _N_DTYPES else None
                    if cost is None:
                        flush()
                        cpu.op_cycles(op)         # raises like the seed
                        cyc = cstats.cycles
                        continue
                    counts[code] += 1
                    cyc += cost
                    continue
                if code == _LOAD or code == _STORE:
                    d = op.dtype
                    nb = _BYTES_BY_DTYPE[d] if 0 <= d < _N_DTYPES else None
                    if nb is None:
                        flush()
                        cpu.op_cycles(op)
                        cyc = cstats.cycles
                        continue
                    counts[code] += 1
                    n_mem += 1
                    if unified:
                        memo_lo, memo_hi = 1, 0
                    if dsets is not None:
                        addr = op.arg
                        line = (addr >> dshift) << dshift
                        if addr - line + nb <= dline:
                            cset = dsets[(line >> dshift) & dmask]
                            state = cset.get(line)
                            if state is not None and state:
                                if code == _LOAD:
                                    if dlru:
                                        cset.move_to_end(line)
                                    d_rhits += 1
                                    cyc += load_hit
                                    continue
                                if dwb:
                                    if dlru:
                                        cset.move_to_end(line)
                                    cset[line] = modified
                                    d_whits += 1
                                    cyc += store_hit
                                    continue
                    if code == _LOAD:
                        cyc += load_issue + access(0, op.arg, nb)
                    else:
                        cyc += store_issue + access(1, op.arg, nb)
                    continue
                raise ValueError(
                    f"node {model.node_id}: communication operation "
                    f"{op!r} in a computational trace; use "
                    "extract_tasks() for mixed traces")
    finally:
        flush()
    return NodeResult(
        cycles=cstats.cycles - start_cycles,
        instructions=cstats.instructions - start_instr,
        cpu_summary=cstats.summary(),
        memory_summary=model.hierarchy.summary(),
        clock_hz=model.cfg.cpu.clock_hz,
    )
