"""A single parameterized cache — tags only, never data.

"Simulated caches only need to hold addresses (tags), not data"
(Section 6): because the trace generator already evaluated all control
flow, the simulator tracks *which* lines are resident and in what state,
never their contents.  One :class:`Cache` models one cache of the
hierarchy; set indexing, associativity, replacement and write policy all
come from :class:`~repro.core.config.CacheConfig`.

Line states double as coherence states so the same structure serves the
uniprocessor hierarchy (INVALID/SHARED/MODIFIED ≈ invalid/clean/dirty)
and the snoopy MSI/MESI protocol of multi-CPU nodes.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import IntEnum
from typing import Optional

import numpy as np

from ..core.config import CacheConfig

__all__ = ["Cache", "LineState", "CacheStats"]


class LineState(IntEnum):
    """MESI line states (uniprocessor caches use INVALID/SHARED/MODIFIED)."""

    INVALID = 0
    SHARED = 1      # clean, possibly present in other caches
    EXCLUSIVE = 2   # clean, only copy (MESI only)
    MODIFIED = 3    # dirty, only copy

    @property
    def is_valid(self) -> bool:
        return self is not LineState.INVALID

    @property
    def is_dirty(self) -> bool:
        return self is LineState.MODIFIED


class CacheStats:
    """Hit/miss/traffic counters for one cache."""

    __slots__ = ("read_hits", "read_misses", "write_hits", "write_misses",
                 "evictions", "writebacks", "invalidations_received",
                 "snoop_flushes")

    def __init__(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations_received = 0
        self.snoop_flushes = 0

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        n = self.accesses
        return self.hits / n if n else 0.0

    def summary(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate(),
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations_received": self.invalidations_received,
            "snoop_flushes": self.snoop_flushes,
        }


class Cache:
    """Tag store for one cache.

    The cache is a passive structure: it answers probes and performs
    insertions/evictions; *latency* is composed by the hierarchy or the
    coherence protocol around it.
    """

    __slots__ = ("cfg", "name", "stats", "_sets", "_set_mask", "_line_shift",
                 "_rng")

    def __init__(self, cfg: CacheConfig, name: str = "",
                 rng: Optional[np.random.Generator] = None) -> None:
        cfg.validate()
        self.cfg = cfg
        self.name = name or cfg.name
        self.stats = CacheStats()
        n_sets = cfg.n_sets
        self._sets: list[OrderedDict[int, LineState]] = [
            OrderedDict() for _ in range(n_sets)]
        self._set_mask = n_sets - 1
        self._line_shift = cfg.line_bytes.bit_length() - 1
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # -- address mapping -----------------------------------------------------

    def line_address(self, address: int) -> int:
        """The line-aligned address containing ``address``."""
        return (address >> self._line_shift) << self._line_shift

    def _set_index(self, line_addr: int) -> int:
        return (line_addr >> self._line_shift) & self._set_mask

    @property
    def assoc(self) -> int:
        return self.cfg.associativity or self.cfg.n_lines

    # -- probes ----------------------------------------------------------------

    def probe(self, address: int) -> LineState:
        """State of the line containing ``address`` (no stats, no LRU touch)."""
        line = self.line_address(address)
        return self._sets[self._set_index(line)].get(line, LineState.INVALID)

    def contains(self, address: int) -> bool:
        return self.probe(address).is_valid

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_addresses(self) -> list[int]:
        """All resident line addresses (tests/analysis only)."""
        out = []
        for s in self._sets:
            out.extend(s.keys())
        return out

    # -- access path -------------------------------------------------------------

    def lookup(self, address: int, is_write: bool) -> bool:
        """Hit test with stats and replacement-order update.

        Returns True on hit.  A write hit on a write-back cache upgrades
        the line to MODIFIED; misses do *not* modify the cache — the
        caller decides what to insert (after fetching from below).
        """
        line = self.line_address(address)
        cset = self._sets[self._set_index(line)]
        state = cset.get(line)
        if state is not None and state.is_valid:
            if self.cfg.replacement == "lru":
                cset.move_to_end(line)
            if is_write:
                self.stats.write_hits += 1
                if self.cfg.write_policy == "write-back":
                    cset[line] = LineState.MODIFIED
            else:
                self.stats.read_hits += 1
            return True
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        return False

    def insert(self, address: int,
               state: LineState) -> Optional[tuple[int, LineState]]:
        """Install the line containing ``address`` in ``state``.

        Returns ``(victim_line_address, victim_state)`` if a valid line
        was evicted to make room, else ``None``.  The caller is
        responsible for writing back dirty victims.
        """
        line = self.line_address(address)
        idx = self._set_index(line)
        cset = self._sets[idx]
        victim: Optional[tuple[int, LineState]] = None
        if line in cset:
            # Replacing-in-place (e.g. state upgrade via insert).
            cset[line] = state
            if self.cfg.replacement == "lru":
                cset.move_to_end(line)
            return None
        if len(cset) >= self.assoc:
            if self.cfg.replacement == "random":
                keys = list(cset.keys())
                vaddr = keys[int(self._rng.integers(len(keys)))]
                vstate = cset.pop(vaddr)
            else:
                # lru and fifo both evict from the front; they differ in
                # whether hits refresh the order (see lookup()).
                vaddr, vstate = cset.popitem(last=False)
            self.stats.evictions += 1
            if vstate.is_dirty:
                self.stats.writebacks += 1
            victim = (vaddr, vstate)
        cset[line] = state
        return victim

    def set_state(self, address: int, state: LineState) -> None:
        """Force the state of a resident line (coherence protocol use)."""
        line = self.line_address(address)
        cset = self._sets[self._set_index(line)]
        if line not in cset:
            raise KeyError(f"{self.name}: line {line:#x} not resident")
        if state is LineState.INVALID:
            del cset[line]
        else:
            cset[line] = state

    def invalidate(self, address: int) -> LineState:
        """Snoop-invalidate; returns the prior state (INVALID if absent)."""
        line = self.line_address(address)
        cset = self._sets[self._set_index(line)]
        prior = cset.pop(line, LineState.INVALID)
        if prior.is_valid:
            self.stats.invalidations_received += 1
        return prior

    def flush_all(self) -> int:
        """Drop every line; returns how many dirty lines were discarded."""
        dirty = 0
        for cset in self._sets:
            dirty += sum(1 for st in cset.values() if st.is_dirty)
            cset.clear()
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cache {self.name!r} {self.cfg.size_bytes}B "
                f"{self.assoc}-way lines={self.resident_lines}>")
