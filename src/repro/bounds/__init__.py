"""Static performance bounds — the workbench's analytic floor.

The cheapest abstraction level of all: no simulation, just the
operation traces, the machine description and the topology/routing
geometry, reduced to certified lower bounds (critical path, per-link
traffic demand, LogP-style per-message-class latency/bandwidth).  See
:mod:`repro.bounds.analyzer` for the soundness argument per quantity
and :mod:`repro.bounds.passes` for the PB0xx rule family that turns
the bounds into ``repro check`` diagnostics and a simulation
cross-check oracle.

Entry points: :func:`compute_bounds` / :meth:`Workbench.bound`
(one workload), :func:`audit_cache` (every cached sweep row),
``repro bound`` (CLI for both).
"""

from .analyzer import compute_bounds
from .audit import AuditResult, audit_cache
from .model import BoundReport, LinkLoad, MessageClassBound, NodeBound
from .passes import (
    BOUNDS_PASSES,
    PerformanceBoundPass,
    cross_check,
    static_diagnostics,
)

__all__ = [
    "compute_bounds",
    "BoundReport",
    "LinkLoad",
    "MessageClassBound",
    "NodeBound",
    "BOUNDS_PASSES",
    "PerformanceBoundPass",
    "static_diagnostics",
    "cross_check",
    "audit_cache",
    "AuditResult",
]
