"""Result model for the static performance-bound analyzer.

A :class:`BoundReport` is the static mirror of
:class:`repro.commmodel.network.CommResult`: everything in it is
computed from the operation traces, the machine description, and the
topology/routing function alone — the simulator is never constructed.
Each quantity is a certified *lower bound* on what any simulation of
the same workload on the same machine can report (see
``repro.bounds.analyzer`` for the argument per quantity), which is what
makes the PB0xx cross-check rules sound: a simulated cycle count below
``cycle_lower_bound`` is a kernel/model bug, never a fast machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = [
    "LinkLoad",
    "MessageClassBound",
    "NodeBound",
    "BoundReport",
]

#: Cap on per-entry detail emitted by :meth:`BoundReport.to_dict` for
#: unbounded collections (hot links, message classes).  Totals are
#: always exact; only the itemized listings are truncated.
_TO_DICT_TOP = 10


@dataclass(frozen=True)
class NodeBound:
    """Per-processor static work summary.

    ``serial_cycles`` is the node's own busywork — compute durations
    plus send/receive software overheads — ignoring all waiting.
    ``finish_lower`` is the node's completion-time lower bound from the
    cross-node dependence pass (always ``>= serial_cycles``).
    """

    node: int
    serial_cycles: float
    finish_lower: float
    n_ops: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "serial_cycles": self.serial_cycles,
            "finish_lower": self.finish_lower,
            "n_ops": self.n_ops,
        }


@dataclass(frozen=True)
class LinkLoad:
    """Static traffic demand on one directed link.

    ``bytes`` counts packet *wire* bytes (payload + header), exactly as
    :meth:`repro.commmodel.link.Link.account` does, so for deterministic
    routing functions it equals the simulated ``Link.bytes_moved``
    fault-free.  ``demand_cycles`` is the serialization time the link
    needs just to move those bytes (``bytes / effective_bandwidth``) —
    a lower bound on the link's simulated busy time.
    """

    src: int
    dst: int
    bytes: float
    packets: float
    demand_cycles: float
    bandwidth: float

    @property
    def key(self) -> str:
        return f"{self.src}->{self.dst}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "link": self.key,
            "bytes": self.bytes,
            "packets": self.packets,
            "demand_cycles": self.demand_cycles,
            "bandwidth": self.bandwidth,
        }


@dataclass(frozen=True)
class MessageClassBound:
    """LogP-style bounds for one message class ``(src, dst, size)``.

    ``latency_cycles`` is the contention-free end-to-end lower bound
    for one message of the class: ``o_send + transit + o_recv`` (LogP's
    ``o + L + o`` with ``L`` covering the full pipelined network
    transit for the configured switching discipline).  ``gap_cycles``
    is the bandwidth-side bound: the serialization time of the whole
    message at the slowest link on its route — no source can push
    messages of this class faster than one per ``gap_cycles``.
    """

    src: int
    dst: int
    size: int
    count: int
    hops: int
    transit_cycles: float
    latency_cycles: float
    gap_cycles: float
    o_send: float
    o_recv: float

    @property
    def key(self) -> str:
        return f"{self.src}->{self.dst}:{self.size}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "class": self.key,
            "src": self.src,
            "dst": self.dst,
            "size": self.size,
            "count": self.count,
            "hops": self.hops,
            "transit_cycles": self.transit_cycles,
            "latency_cycles": self.latency_cycles,
            "gap_cycles": self.gap_cycles,
            "o_send": self.o_send,
            "o_recv": self.o_recv,
        }


@dataclass
class BoundReport:
    """Everything the static analyzer can prove about one workload."""

    machine: str
    subject: str
    n_nodes: int
    switching: str
    routing: str
    #: False for adaptive (``random_minimal``) routing: link loads are
    #: *expected* over the routing RNG, not certain, and message
    #: transits assume best-case path choice.  PB002 degrades to a
    #: warning and PB001 to a warning when this is unset.
    routing_exact: bool
    converged: bool
    nodes: List[NodeBound] = field(default_factory=list)
    link_loads: List[LinkLoad] = field(default_factory=list)
    message_classes: List[MessageClassBound] = field(default_factory=list)
    critical_path_cycles: float = 0.0
    cycle_lower_bound: float = 0.0
    stalled_nodes: Tuple[int, ...] = ()
    n_messages: int = 0
    total_bytes: float = 0.0

    @property
    def max_serial_cycles(self) -> float:
        return max((n.serial_cycles for n in self.nodes), default=0.0)

    @property
    def max_link_demand_cycles(self) -> float:
        return max((l.demand_cycles for l in self.link_loads), default=0.0)

    def hot_links(self, top: int = _TO_DICT_TOP) -> List[LinkLoad]:
        """Links ranked by demand, heaviest first (ties by link id)."""
        ranked = sorted(self.link_loads,
                        key=lambda l: (-l.demand_cycles, l.src, l.dst))
        return ranked[:top] if top >= 0 else ranked

    def overloaded_links(self, budget_cycles: float) -> List[LinkLoad]:
        """Links whose serialization demand alone exceeds ``budget_cycles``.

        With the dependence critical path as the budget, such a link is
        statically guaranteed to stretch execution past the task-graph
        bound: the workload is link-limited, not dependence-limited.
        """
        return [l for l in self.hot_links(top=-1)
                if l.demand_cycles > budget_cycles]

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form (entries sorted, listings capped)."""
        return {
            "machine": self.machine,
            "subject": self.subject,
            "n_nodes": self.n_nodes,
            "switching": self.switching,
            "routing": self.routing,
            "routing_exact": self.routing_exact,
            "converged": self.converged,
            "critical_path_cycles": self.critical_path_cycles,
            "cycle_lower_bound": self.cycle_lower_bound,
            "max_serial_cycles": self.max_serial_cycles,
            "max_link_demand_cycles": self.max_link_demand_cycles,
            "n_messages": self.n_messages,
            "total_bytes": self.total_bytes,
            "stalled_nodes": list(self.stalled_nodes),
            "nodes": [n.to_dict() for n in self.nodes],
            "hot_links": [l.to_dict() for l in self.hot_links()],
            "n_links_loaded": len(self.link_loads),
            "message_classes": [
                c.to_dict() for c in sorted(
                    self.message_classes,
                    key=lambda c: (-c.count * c.gap_cycles, c.key),
                )[:_TO_DICT_TOP]
            ],
            "n_message_classes": len(self.message_classes),
        }

    def format(self) -> str:
        """Human-readable multi-line summary (mirrors ``Report.format``)."""
        lines = [
            f"bound report for {self.subject or self.machine}",
            f"  machine            {self.machine} ({self.n_nodes} nodes, "
            f"{self.switching}/{self.routing})",
            f"  critical path      {self.critical_path_cycles:.1f} cycles",
            f"  cycle lower bound  {self.cycle_lower_bound:.1f} cycles",
            f"  max serial work    {self.max_serial_cycles:.1f} cycles",
            f"  messages           {self.n_messages} "
            f"({self.total_bytes:.0f} wire bytes)",
        ]
        if not self.routing_exact:
            lines.append("  routing            adaptive - link loads are "
                         "expected values")
        if not self.converged:
            lines.append(f"  WARNING: dependence pass stalled on nodes "
                         f"{list(self.stalled_nodes)} (partial bound)")
        hot = self.hot_links(top=5)
        if hot:
            lines.append("  hot links (serialization demand):")
            for l in hot:
                lines.append(f"    {l.key:>10s}  {l.bytes:10.0f} B  "
                             f"{l.demand_cycles:12.1f} cycles")
        return "\n".join(lines)
