"""Static performance-bound analysis — simulation's analytic floor.

``compute_bounds`` derives three families of *certified lower bounds*
from an operation trace set plus the machine description, without ever
constructing a simulator (this module imports neither
:mod:`repro.pearl` nor :mod:`repro.commmodel.network`):

**Critical path.**  A cross-node abstract execution propagates each
node's clock through its trace: compute advances it by the duration,
sends pay the NIC software overhead and (synchronously) the
contention-free network transit, blocking receives wait for a matching
send's earliest-possible delivery.  Each blocking receive of a
``(source, destination)`` pair claims the *earliest unclaimed*
delivery estimate of that pair; asynchronous receives and
``RecvAnyEvent`` never wait and claim nothing.  Op-order (FIFO)
matching would be wrong here: the NIC satisfies a currently-blocked
synchronous receive in preference to an outstanding ``arecv``
pre-post, so a message can reach a *later* receive op than op order
suggests, and charging the blocking receive the later send's delivery
would overestimate.  Earliest-unclaimed is sound: when the i-th
blocking receive of a pair completes in any real execution, at least
``i`` messages of the pair have been consumed (one per completed
blocking receive), all delivered by then — so the i-th smallest
delivery estimate, which is what the abstract receive waits for, can
never exceed the real completion time.  Every per-op cost is the
contention-free minimum, so each node's finish time — and their
maximum, the task-graph critical path — lower-bounds the simulated
``total_cycles`` of *any* correct kernel.

**Link loads.**  Every message is packetized exactly as
:meth:`repro.commmodel.message.Message.split` does and routed over the
configured routing function; per-link wire bytes therefore equal the
simulated ``Link.bytes_moved`` for deterministic routing (fault-free),
and ``bytes / effective_bandwidth`` lower-bounds the link's busy time.
For adaptive (``random_minimal``) routing the load is the expectation
over the routing RNG — an equal split across the minimal-path DAG —
and the report is marked ``routing_exact=False``.

**Message classes.**  LogP-style per-class bounds: ``o + L + o``
latency with ``L`` the pipelined transit of the switching discipline,
and a bandwidth gap ``g`` — the class's serialization time at the
slowest link of its route.

Contention-free transit formulas (``R`` routing cycles, ``lam`` wire
latency, ``bw_l`` effective link bandwidth, wire packet sizes
``b_1..b_K``), each matching the corresponding engine's
``_packet_process`` with zero resource waiting:

* store-and-forward: ``sum_l(R + b_1/bw_l + lam)``
* virtual cut-through: ``sum_l(R + h/bw_l + lam) + (b_1-h)/bw_last``
* wormhole: ``sum_l(R + f/bw_l + lam) + max_l((b_1-f)/bw_l)``

plus, for multi-packet messages, ``sum_{k>=2} max_l(b_k/bw_l)``: all
packets of one message serialize through the path's bottleneck link,
whose per-packet occupancy is ``b_k/bw_l`` under all three disciplines.
(The per-``k`` maximum is attained at the same minimum-bandwidth link
for every ``k``, so the sum equals the single-bottleneck-link bound.)
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..commmodel.routing import RandomMinimalRouting, make_routing
from ..core.config import MachineConfig, NetworkConfig
from ..operations.ops import OpCode, Operation
from ..topology import Topology, build_topology
from .model import BoundReport, LinkLoad, MessageClassBound, NodeBound

__all__ = ["compute_bounds"]


def _packet_wire_sizes(size: int, cfg: NetworkConfig) -> List[int]:
    """Wire bytes (payload + header) per packet, mirroring Message.split."""
    payloads: List[int] = []
    remaining = size
    while remaining > 0:
        take = min(remaining, cfg.packet_bytes)
        payloads.append(take)
        remaining -= take
    if not payloads:
        payloads = [0]
    return [p + cfg.header_bytes for p in payloads]


def _transit_cycles(cfg: NetworkConfig, scales: Sequence[float],
                    wire_sizes: Sequence[int], spacing: bool) -> float:
    """Contention-free inject-to-delivery lower bound over one path.

    ``scales`` holds the bandwidth multiplier of each path link in
    order.  ``spacing=False`` drops the multi-packet serialization term
    (used for adaptive routing, where packets may take disjoint paths).
    """
    bws = [cfg.link_bandwidth * s for s in scales]
    if not bws:
        return 0.0
    b1 = wire_sizes[0]
    per_hop = cfg.routing_cycles + cfg.link_latency
    if cfg.switching == "store_and_forward":
        head = sum(per_hop + b1 / bw for bw in bws)
    elif cfg.switching == "virtual_cut_through":
        body = max(b1 - cfg.header_bytes, 0)
        head = sum(per_hop + cfg.header_bytes / bw for bw in bws) \
            + body / bws[-1]
    else:  # wormhole
        body = max(b1 - cfg.flit_bytes, 0)
        head = sum(per_hop + cfg.flit_bytes / bw for bw in bws) \
            + max(body / bw for bw in bws)
    if spacing:
        bottleneck = min(bws)
        head += sum(b / bottleneck for b in wire_sizes[1:])
    return head


def _gap_cycles(cfg: NetworkConfig, scales: Sequence[float],
                wire_sizes: Sequence[int]) -> float:
    """Serialization of the whole message at the slowest route link."""
    if not scales:
        return 0.0
    bottleneck = cfg.link_bandwidth * min(scales)
    return sum(b / bottleneck for b in wire_sizes)


def _expected_shares(topo: Topology, dist: Sequence[int], src: int,
                     ) -> Dict[Tuple[int, int], float]:
    """Expected per-edge crossing count of one random-minimal packet.

    ``dist[u]`` is the hop distance from ``u`` to the destination.  A
    unit of probability mass starts at ``src`` and, at every node,
    splits equally among the neighbours one hop closer — exactly
    :class:`RandomMinimalRouting`'s uniform next-hop sampling.
    """
    mass: Dict[int, float] = {src: 1.0}
    shares: Dict[Tuple[int, int], float] = {}
    for d in range(dist[src], 0, -1):
        for u in [u for u, m in mass.items() if dist[u] == d and m > 0]:
            options = [v for v in topo.neighbors(u) if dist[v] == d - 1]
            share = mass.pop(u) / len(options)
            for v in options:
                shares[(u, v)] = shares.get((u, v), 0.0) + share
                mass[v] = mass.get(v, 0.0) + share
    return shares


class _NodeState:
    """Abstract-execution state of one processor."""

    __slots__ = ("node", "ops", "idx", "t", "serial", "blocked")

    def __init__(self, node: int, ops: List[Any]) -> None:
        self.node = node
        self.ops = ops
        self.idx = 0
        self.t = 0.0
        self.serial = 0.0
        self.blocked = False

    @property
    def done(self) -> bool:
        return self.idx >= len(self.ops)


class _BoundAnalyzer:
    """One-shot analysis context; see module docstring for the math."""

    def __init__(self, machine: MachineConfig,
                 traces: Iterable[Iterable[Any]], subject: str) -> None:
        machine.validate()
        self.machine = machine
        self.cfg = machine.network
        self.subject = subject
        self.topo = build_topology(machine.network.topology)
        self.routing = make_routing(machine.network.routing, self.topo)
        self.adaptive = isinstance(self.routing, RandomMinimalRouting)
        self.n_nodes = self.topo.n_endpoints
        ops_per_node = [list(t) for t in traces][:self.n_nodes]
        while len(ops_per_node) < self.n_nodes:
            ops_per_node.append([])
        self.states = [_NodeState(i, ops)
                       for i, ops in enumerate(ops_per_node)]
        # Best bandwidth multiplier anywhere: adaptive transits assume
        # the luckiest possible path, keeping the bound sound.
        self.best_scale = max(
            (self.topo.link_capacity(u, v) for (u, v) in self.topo.links()),
            default=1.0)
        # Min-heaps of unclaimed delivery estimates per (src, dst) pair;
        # only blocking receives pop (see module docstring).
        self.queues: Dict[Tuple[int, int], List[float]] = {}
        self.link_bytes: Dict[Tuple[int, int], float] = {}
        self.link_packets: Dict[Tuple[int, int], float] = {}
        self.classes: Dict[Tuple[int, int, int], int] = {}
        self.all_deliveries: List[float] = []
        self.n_messages = 0
        self.total_bytes = 0.0
        self._path_cache: Dict[Tuple[int, int],
                               Tuple[int, Tuple[float, ...]]] = {}
        self._share_cache: Dict[Tuple[int, int],
                                Dict[Tuple[int, int], float]] = {}
        self._dist_cache: Dict[int, List[int]] = {}
        self._transit_cache: Dict[Tuple[int, int, int], float] = {}

    # -- routing geometry ---------------------------------------------------

    def _dist_to(self, dst: int) -> List[int]:
        dist = self._dist_cache.get(dst)
        if dist is None:
            dist = self.topo.shortest_path_lengths(dst)
            self._dist_cache[dst] = dist
        return dist

    def _path_info(self, src: int, dst: int) -> Tuple[int, Tuple[float, ...]]:
        """(hops, per-link bandwidth multipliers) for the class route."""
        key = (src, dst)
        info = self._path_cache.get(key)
        if info is None:
            if self.adaptive:
                hops = self._dist_to(dst)[src]
                info = (hops, (self.best_scale,) * hops)
            else:
                path = self.routing.path(src, dst)
                info = (len(path) - 1,
                        tuple(self.topo.link_capacity(path[i], path[i + 1])
                              for i in range(len(path) - 1)))
            self._path_cache[key] = info
        return info

    def _transit(self, src: int, dst: int, size: int) -> float:
        key = (src, dst, size)
        t = self._transit_cache.get(key)
        if t is None:
            _, scales = self._path_info(src, dst)
            t = _transit_cycles(self.cfg, scales,
                                _packet_wire_sizes(size, self.cfg),
                                spacing=not self.adaptive)
            self._transit_cache[key] = t
        return t

    def _account_message(self, src: int, dst: int, size: int) -> None:
        wire = _packet_wire_sizes(size, self.cfg)
        total = float(sum(wire))
        self.n_messages += 1
        self.total_bytes += total
        self.classes[(src, dst, size)] = \
            self.classes.get((src, dst, size), 0) + 1
        if self.adaptive:
            shares = self._share_cache.get((src, dst))
            if shares is None:
                shares = _expected_shares(self.topo, self._dist_to(dst), src)
                self._share_cache[(src, dst)] = shares
            for edge, frac in shares.items():
                self.link_bytes[edge] = \
                    self.link_bytes.get(edge, 0.0) + total * frac
                self.link_packets[edge] = \
                    self.link_packets.get(edge, 0.0) + len(wire) * frac
        else:
            path = self.routing.path(src, dst)
            for i in range(len(path) - 1):
                edge = (path[i], path[i + 1])
                self.link_bytes[edge] = \
                    self.link_bytes.get(edge, 0.0) + total
                self.link_packets[edge] = \
                    self.link_packets.get(edge, 0.0) + len(wire)

    # -- abstract execution ------------------------------------------------------

    def _valid_peer(self, node: int, peer: int) -> bool:
        return 0 <= peer < self.n_nodes and peer != node

    def _advance(self, st: _NodeState) -> bool:
        """Run one node until it blocks or finishes; True if it moved."""
        cfg = self.cfg
        progressed = False
        while not st.done:
            op = st.ops[st.idx]
            if isinstance(op, Operation):
                code = op.code
                if code == OpCode.COMPUTE:
                    st.t += op.duration
                    st.serial += op.duration
                elif code in (OpCode.SEND, OpCode.ASEND):
                    st.serial += cfg.send_overhead
                    peer = op.peer
                    if self._valid_peer(st.node, peer):
                        inject = st.t + cfg.send_overhead
                        est = inject + self._transit(st.node, peer, op.size)
                        heapq.heappush(
                            self.queues.setdefault((st.node, peer), []), est)
                        self.all_deliveries.append(est)
                        self._account_message(st.node, peer, op.size)
                        # Synchronous send blocks until delivery.
                        st.t = est if code == OpCode.SEND \
                            else st.t + cfg.send_overhead
                    else:
                        # Malformed peer: the TR passes flag it; pay the
                        # software overhead only so the bound stays sound.
                        st.t += cfg.send_overhead
                elif code in (OpCode.RECV, OpCode.ARECV):
                    st.serial += cfg.recv_overhead
                    peer = op.peer
                    if code == OpCode.RECV \
                            and self._valid_peer(st.node, peer):
                        queue = self.queues.get((peer, st.node))
                        if not queue:
                            st.blocked = True
                            return progressed
                        est = heapq.heappop(queue)
                        st.t = max(st.t, est) + cfg.recv_overhead
                    else:
                        # arecv never blocks (it pre-posts when the
                        # message has not arrived) and claims no
                        # estimate: the NIC may hand "its" message to a
                        # blocked synchronous receive instead, so any
                        # claim here could starve a later recv into a
                        # too-late estimate.  Paying o_r only is sound.
                        st.t += cfg.recv_overhead
                # Computational opcodes (LOAD/ADD/...) carry node-model
                # time that task-level bounds cannot see; ignored.
            elif hasattr(op, "sources"):
                # RecvAnyEvent (duck-typed to keep imports sim-free):
                # never waits and, like arecv, claims no estimate.
                st.serial += cfg.recv_overhead
                st.t += cfg.recv_overhead
            st.idx += 1
            st.blocked = False
            progressed = True
        return progressed

    def run(self) -> BoundReport:
        progressed = True
        while progressed:
            progressed = False
            for st in self.states:
                if not st.done:
                    progressed = self._advance(st) or progressed
        stalled = tuple(st.node for st in self.states if not st.done)
        critical_path = max(
            [st.t for st in self.states] + self.all_deliveries,
            default=0.0)
        cfg = self.cfg
        loads = []
        for (u, v) in sorted(self.link_bytes):
            bw = cfg.link_bandwidth * self.topo.link_capacity(u, v)
            nbytes = self.link_bytes[(u, v)]
            loads.append(LinkLoad(
                src=u, dst=v, bytes=nbytes,
                packets=self.link_packets[(u, v)],
                demand_cycles=nbytes / bw, bandwidth=bw))
        classes = []
        for (src, dst, size) in sorted(self.classes):
            hops, scales = self._path_info(src, dst)
            wire = _packet_wire_sizes(size, cfg)
            transit = self._transit(src, dst, size)
            classes.append(MessageClassBound(
                src=src, dst=dst, size=size,
                count=self.classes[(src, dst, size)], hops=hops,
                transit_cycles=transit,
                latency_cycles=cfg.send_overhead + transit
                + cfg.recv_overhead,
                gap_cycles=_gap_cycles(cfg, scales, wire),
                o_send=cfg.send_overhead, o_recv=cfg.recv_overhead))
        report = BoundReport(
            machine=self.machine.name, subject=self.subject,
            n_nodes=self.n_nodes, switching=cfg.switching,
            routing=cfg.routing, routing_exact=not self.adaptive,
            converged=not stalled,
            nodes=[NodeBound(node=st.node, serial_cycles=st.serial,
                             finish_lower=st.t, n_ops=len(st.ops))
                   for st in self.states],
            link_loads=loads, message_classes=classes,
            critical_path_cycles=critical_path,
            stalled_nodes=stalled, n_messages=self.n_messages,
            total_bytes=self.total_bytes)
        # Aggregate link serialization is a second independent lower
        # bound — but only when the static loads are certain.
        report.cycle_lower_bound = max(
            critical_path,
            report.max_link_demand_cycles if report.routing_exact else 0.0)
        return report


def compute_bounds(machine: MachineConfig,
                   traces: Iterable[Iterable[Any]],
                   subject: str = "") -> BoundReport:
    """Statically bound one task-level workload on one machine.

    ``traces`` is a :class:`~repro.operations.trace.TraceSet` or any
    per-node sequence of operation iterables (the same shapes
    :meth:`Workbench.run_comm_only` accepts).  Returns a
    :class:`~repro.bounds.model.BoundReport`; never constructs a
    simulator.
    """
    return _BoundAnalyzer(machine, traces, subject).run()
