"""PB0xx rules: surface static bounds as ``repro check`` diagnostics.

Two entry points share the rule family:

* :class:`PerformanceBoundPass` (``BOUNDS_PASSES``) is a standard
  check pass over a ``(machine, traces)`` context — purely static, it
  can only emit **PB002** (a link whose serialization demand alone
  exceeds the task-graph critical path: the workload is statically
  link-limited, the topology/routing under-provisioned for it).

* :func:`cross_check` is the simulation oracle: given a
  :class:`~repro.bounds.model.BoundReport` and a simulated cycle
  count, it emits **PB001** (simulated cycles *below* the certified
  lower bound — a correctness bug in the kernel or a model, never a
  fast machine) and **PB003** (simulated cycles more than
  ``gap_threshold`` times the bound — informational: the hardware is
  mostly waiting, the design point wastes capacity).

Adaptive (``random_minimal``) routing makes link loads expectations
rather than certainties, so both PB001 and PB002 degrade to warnings
when ``report.routing_exact`` is unset; likewise PB001 when the
dependence pass did not converge (a stalled — deadlocking — workload
has only a partial bound).
"""

from __future__ import annotations

from typing import List, Optional

from ..check.diagnostics import Diagnostic, Severity
from ..check.passes import CheckContext
from .analyzer import compute_bounds
from .model import BoundReport

__all__ = ["PerformanceBoundPass", "BOUNDS_PASSES", "static_diagnostics",
           "cross_check"]

#: PB003 default: flag rows whose simulated time exceeds this many
#: multiples of the static lower bound.
DEFAULT_GAP_THRESHOLD = 10.0

#: PB001 float slack: simulated and static arithmetic accumulate in
#: different orders, so exact ties need a relative + absolute margin.
_REL_TOL = 1e-9
_ABS_TOL = 1e-6


def static_diagnostics(report: BoundReport,
                       subject: str = "") -> List[Diagnostic]:
    """PB002 findings derivable from the bound report alone."""
    subject = subject or report.subject
    out: List[Diagnostic] = []
    budget = report.critical_path_cycles
    severity = Severity.ERROR if report.routing_exact else Severity.WARNING
    for load in report.overloaded_links(budget):
        out.append(Diagnostic(
            rule="PB002", severity=severity,
            message=(f"link {load.key} statically loaded beyond capacity: "
                     f"moving its {load.bytes:.0f} wire bytes needs "
                     f"{load.demand_cycles:.1f} cycles, but the task-graph "
                     f"critical path is only {budget:.1f}"),
            subject=subject, location=f"link {load.key}",
            hint="the workload is link-limited: raise link_bandwidth, use "
                 "a higher-capacity topology, or spread the traffic "
                 "(routing/placement)"))
    return out


def cross_check(report: BoundReport, total_cycles: float,
                subject: str = "", location: str = "",
                gap_threshold: Optional[float] = DEFAULT_GAP_THRESHOLD
                ) -> List[Diagnostic]:
    """PB001/PB003: judge one simulated cycle count against its bounds."""
    subject = subject or report.subject
    out: List[Diagnostic] = []
    bound = report.cycle_lower_bound
    slack = bound * (1.0 - _REL_TOL) - _ABS_TOL
    if total_cycles < slack:
        exact = report.routing_exact and report.converged
        out.append(Diagnostic(
            rule="PB001",
            severity=Severity.ERROR if exact else Severity.WARNING,
            message=(f"simulated {total_cycles:.1f} cycles is below the "
                     f"static lower bound {bound:.1f} (critical path "
                     f"{report.critical_path_cycles:.1f}, max link demand "
                     f"{report.max_link_demand_cycles:.1f})"),
            subject=subject, location=location,
            hint="a correct simulation cannot beat the contention-free "
                 "critical path: suspect the kernel, a model change, or a "
                 "corrupted cache row"))
    elif (gap_threshold is not None and bound > 0.0
            and total_cycles > bound * gap_threshold):
        out.append(Diagnostic(
            rule="PB003", severity=Severity.NOTE,
            message=(f"simulated {total_cycles:.1f} cycles is "
                     f"{total_cycles / bound:.1f}x the static lower bound "
                     f"{bound:.1f}"),
            subject=subject, location=location,
            hint="large bound-to-simulated gaps mean the machine is mostly "
                 "waiting (contention or imbalance); the design point "
                 "likely wastes hardware"))
    return out


class PerformanceBoundPass:
    """Static PB002 analysis of a ``(machine, traces)`` pair."""

    name = "perf-bounds"
    rules = ("PB002",)
    gating = False

    def run(self, ctx: CheckContext) -> List[Diagnostic]:
        if ctx.machine is None or ctx.traces is None:
            return []
        if ctx.has_error():
            # Broken machine/trace artifacts make the geometry (routing,
            # peer ids) meaningless; earlier families own those findings.
            return []
        report = compute_bounds(ctx.machine, ctx.traces,
                                subject=ctx.subject)
        return static_diagnostics(report, subject=ctx.subject)


BOUNDS_PASSES: tuple = (PerformanceBoundPass(),)
