"""Post-hoc bound audit of a ``ResultCache`` directory.

Every sweep row the parallel runner caches carries the full machine
config (``machine_config`` meta) and the workload id that produced it.
For rows whose workload id is reconstructible (the ``repro sweep``
``cli-stochastic:<workload>:rounds=<R>:seed=<S>`` scheme — generation
is seeded, so the exact trace set is recoverable), the audit recomputes
the static bound for the row's machine and cross-checks the cached
``total_cycles`` against it: any historical row below its own critical
path (PB001) is a latent kernel/model bug or a corrupted cache, caught
without golden files.  Rows that cannot be audited — fault-injected
metrics, foreign workload ids, rows predating the ``machine_config``
meta — are skipped with a recorded reason, never silently.

The audit is embarrassingly parallel (one row at a time) and
deterministic: rows are processed in sorted-key order, results come
back in item order (:func:`repro.parallel.run_sharded`), and every
computed quantity is pure arithmetic — the JSON output is
byte-identical for any worker count.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..check.diagnostics import Diagnostic, Report, reports_to_dict
from ..core.config import MachineConfig
from .analyzer import compute_bounds
from .passes import DEFAULT_GAP_THRESHOLD, cross_check

__all__ = ["audit_cache", "AuditResult"]

#: Metric keys that mark a row as fault-injected: dropped traffic makes
#: fewer bytes cross the links than the static analysis routes, so the
#: bounds do not apply.
_FAULT_METRIC_KEYS = ("dropped", "retransmissions", "delivery_failed")


def _resolve_workload(workload_id: str, n_nodes: int) -> Optional[Any]:
    """Regenerate the trace set a ``repro sweep`` workload id names."""
    parts = workload_id.split(":")
    if len(parts) != 4 or parts[0] != "cli-stochastic":
        return None
    if not (parts[2].startswith("rounds=") and parts[3].startswith("seed=")):
        return None
    try:
        rounds = int(parts[2][len("rounds="):])
        seed = int(parts[3][len("seed="):])
    except ValueError:
        return None
    from ..tracegen import WORKLOAD_CLASSES, StochasticGenerator
    from ..tracegen.descriptions import StochasticAppDescription
    name = parts[1]
    if name == "generic":
        desc = StochasticAppDescription()
    elif name in WORKLOAD_CLASSES:
        desc = WORKLOAD_CLASSES[name]()
    else:
        return None
    return StochasticGenerator(desc, n_nodes,
                               seed=seed).generate_task_level(rounds)


def _audit_entry(path_str: str,
                 gap_threshold: Optional[float] = DEFAULT_GAP_THRESHOLD
                 ) -> Dict[str, Any]:
    """Audit one cache entry file (module-level: picklable)."""
    path = Path(path_str)
    try:
        entry = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"key": path.stem, "status": "skipped",
                "reason": "unreadable cache entry", "diagnostics": []}
    key = str(entry.get("key", path.stem))
    row: Dict[str, Any] = {"key": key, "status": "skipped",
                           "diagnostics": []}
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict) or "total_cycles" not in metrics:
        row["reason"] = "no total_cycles metric"
        return row
    if any(k in metrics for k in _FAULT_METRIC_KEYS):
        row["reason"] = "fault-injected row (bounds assume lossless links)"
        return row
    machine_dict = entry.get("machine_config")
    if not isinstance(machine_dict, dict):
        row["reason"] = "no machine_config meta (row predates bound audit)"
        return row
    workload_id = entry.get("workload_id")
    if not isinstance(workload_id, str):
        row["reason"] = "no workload_id meta"
        return row
    try:
        machine = MachineConfig.from_dict(machine_dict)
        machine.validate()
    except Exception as exc:  # noqa: BLE001 - any bad config skips
        row["reason"] = f"unusable machine_config ({exc})"
        return row
    traces = _resolve_workload(workload_id, machine.n_nodes)
    if traces is None:
        row["reason"] = f"workload id {workload_id!r} is not reconstructible"
        return row
    subject = f"cache:{key[:12]}"
    report = compute_bounds(machine, traces, subject=subject)
    diags = cross_check(report, float(metrics["total_cycles"]),
                        subject=subject,
                        location=f"machine {machine.name}",
                        gap_threshold=gap_threshold)
    row.update({
        "status": "checked",
        "machine": machine.name,
        "workload_id": workload_id,
        "simulated_cycles": float(metrics["total_cycles"]),
        "cycle_lower_bound": report.cycle_lower_bound,
        "critical_path_cycles": report.critical_path_cycles,
        "diagnostics": [d.to_dict() for d in diags],
    })
    return row


@dataclass
class AuditResult:
    """Outcome of one cache audit (row order = sorted entry keys)."""

    cache_dir: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def n_checked(self) -> int:
        return sum(1 for r in self.rows if r["status"] == "checked")

    @property
    def n_skipped(self) -> int:
        return sum(1 for r in self.rows if r["status"] == "skipped")

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return [Diagnostic.from_dict(d)
                for r in self.rows for d in r["diagnostics"]]

    @property
    def ok(self) -> bool:
        from ..check.diagnostics import Severity
        return not any(d.severity is Severity.ERROR
                       for d in self.diagnostics)

    def reports(self) -> List[Report]:
        """One report per audited row (skipped rows have none)."""
        out = []
        for r in self.rows:
            if r["status"] != "checked":
                continue
            report = Report(subject=f"cache:{r['key'][:12]}")
            report.extend(Diagnostic.from_dict(d)
                          for d in r["diagnostics"])
            out.append(report)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """The shared check/lint JSON schema plus an ``audit`` block."""
        return reports_to_dict(self.reports(), audit={
            "rows": len(self.rows),
            "checked": self.n_checked,
            "skipped": self.n_skipped,
            "skips": [{"key": r["key"], "reason": r.get("reason", "")}
                      for r in self.rows if r["status"] == "skipped"],
        })

    def format(self) -> str:
        lines = [f"audited {len(self.rows)} cache row(s): "
                 f"{self.n_checked} checked, {self.n_skipped} skipped"]
        for r in self.rows:
            if r["status"] == "skipped":
                lines.append(f"  skip {r['key'][:12]}  {r.get('reason', '')}")
        diags = self.diagnostics
        for d in diags:
            lines.append("  " + d.format())
        if not diags:
            lines.append("  all checked rows within bounds")
        return "\n".join(lines)


def audit_cache(cache_dir: str, workers: int = 1,
                gap_threshold: Optional[float] = DEFAULT_GAP_THRESHOLD
                ) -> AuditResult:
    """Cross-check every row of a :class:`ResultCache` directory."""
    from ..parallel.runner import run_sharded
    root = Path(cache_dir).expanduser()
    if not root.is_dir():
        raise FileNotFoundError(f"no cache directory at {root}")
    paths = sorted(str(p) for p in root.glob("*/*.json"))
    fn = functools.partial(_audit_entry, gap_threshold=gap_threshold)
    rows = run_sharded(fn, paths, workers=workers)
    return AuditResult(cache_dir=str(root), rows=rows)
