"""``repro verify`` — schedule-space exploration with partial-order reduction.

The :class:`~repro.check.DeterminismSanitizer` *warns* about same-time
contention it happens to observe on one schedule (``KD001``/``KD002``).
This package upgrades those warnings to **verdicts** by actually running
the alternatives: a model is executed under a controllable tie-break
scheduler (:meth:`repro.pearl.kernel.Simulator.attach_tie_break`) and
the orderings of each same-timestamp event cluster are enumerated.

Dynamic partial-order reduction keeps that tractable: only clusters
whose events touch a *shared* resource or channel (exactly what the
sanitizer records) are permuted — independent same-time events commute,
so their orderings are never explored.  ``mode="naive"`` disables the
reduction (permute every multi-candidate dispatch burst) and exists to
measure what DPOR saves.

Each cluster ends in one of four verdicts (``KV`` rules):

* ``KV001`` **confirmed race** — two schedules yield different final
  results; the finding carries a minimal two-schedule counterexample
  diff (the flattened result paths that changed).
* ``KV002`` **proven benign** — every alternative ordering reproduces
  the baseline result exactly.
* ``KV003`` **reachable deadlock** — some ordering drains the event
  list with processes still blocked (invisible to the static ``TR005``
  pass for execution-driven workloads).
* ``KV004`` **budget-truncated** — the exploration budget ran out; the
  unexplored frontier is reported, never silently dropped.

A :class:`VerifyResult` also emits a **certificate** — a digest of the
explored schedule space — which :class:`repro.parallel.ResultCache` can
fold into result keys and the golden harness can pin across kernels.
"""

from __future__ import annotations

from .explorer import Outcome, ScheduleExplorer, VerifyError, run_schedule
from .result import (
    ClusterVerdict,
    VerifyResult,
    canonical_digest,
    flatten_summary,
    summary_diff,
)
from .schedule import (
    Perturbation,
    PreferenceOrder,
    RecordingOrder,
    SeedOrder,
    target_name,
)
from .targets import (
    VERIFY_APPS,
    MasterWorkerVerifyTarget,
    TraceVerifyTarget,
    app_verify_target,
)

__all__ = [
    "ClusterVerdict", "MasterWorkerVerifyTarget", "Outcome",
    "Perturbation", "PreferenceOrder", "RecordingOrder",
    "ScheduleExplorer", "SeedOrder", "TraceVerifyTarget", "VERIFY_APPS",
    "VerifyError", "VerifyResult", "app_verify_target",
    "canonical_digest", "flatten_summary", "run_schedule",
    "summary_diff", "target_name",
]
