"""Verdicts, counterexamples and certificates of a verification run."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..check.diagnostics import Diagnostic, Report, Severity
from .schedule import Perturbation

__all__ = ["ClusterVerdict", "VerifyResult", "canonical_digest",
           "flatten_summary", "summary_diff"]


def canonical_digest(value: Any) -> str:
    """sha256 hex digest over canonical JSON (sorted keys, no spaces)."""
    payload = json.dumps(value, sort_keys=True, separators=(",", ":"),
                         default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _flatten_into(value: Any, prefix: str, out: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value, key=str):
            _flatten_into(value[key],
                          f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _flatten_into(item, f"{prefix}[{i}]", out)
    elif isinstance(value, (bool, int, float, str)) or value is None:
        out[prefix or "value"] = value
    else:
        # Foreign scalars (numpy integers, Fractions, ...): coerce to a
        # stable primitive so fingerprints compare across processes.
        try:
            out[prefix or "value"] = float(value)
        except (TypeError, ValueError):
            out[prefix or "value"] = repr(value)


def flatten_summary(value: Any) -> dict[str, Any]:
    """Flatten a nested result summary to ``{"a.b[2].c": leaf}``.

    The flat path map is what fingerprints hash and what counterexample
    diffs are computed over — two schedules differ exactly where their
    flat maps differ.
    """
    out: dict[str, Any] = {}
    _flatten_into(value, "", out)
    return out


def summary_diff(baseline: dict[str, Any], witness: dict[str, Any],
                 limit: int = 8) -> list[dict[str, Any]]:
    """The minimal two-schedule counterexample: paths whose values differ."""
    diffs: list[dict[str, Any]] = []
    for path in sorted(set(baseline) | set(witness)):
        a = baseline.get(path, "<absent>")
        b = witness.get(path, "<absent>")
        if a != b:
            diffs.append({"path": path, "baseline": a, "witness": b})
    if len(diffs) > limit:
        extra = len(diffs) - limit
        diffs = diffs[:limit]
        diffs.append({"path": "...", "baseline":
                      f"{extra} more differing value(s)", "witness": ""})
    return diffs


@dataclass
class ClusterVerdict:
    """The explorer's verdict for one contention cluster.

    ``verdict`` is ``"race"``, ``"deadlock"``, ``"benign"`` or
    ``"truncated"``; ``witness`` is the perturbation that exposed a race
    or deadlock, ``counterexample`` the differing result paths.
    """

    rule: str                    # originating rule (KD001/KD002/BURST)
    obj: str                     # resource / channel / burst site
    kind: str                    # "acquire" | "send" | "recv" | "dispatch"
    time: float                  # instant the representative site occurred
    procs: tuple[str, ...]       # contending target names (representative)
    verdict: str
    planned: int                 # alternative orderings planned
    explored: int                # alternative orderings actually run
    instances: int = 1           # structurally identical sites in class
    sampled: int = 1             # sites whose orderings were planned
    fingerprints: tuple[str, ...] = ()
    witness: Optional[Perturbation] = None
    deadlock: tuple[str, ...] = ()
    counterexample: list[dict[str, Any]] = field(default_factory=list)

    def site(self) -> str:
        return f"{self.obj} at t={self.time:g}"

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule, "obj": self.obj, "kind": self.kind,
            "time": self.time, "procs": list(self.procs),
            "verdict": self.verdict, "planned": self.planned,
            "explored": self.explored, "instances": self.instances,
            "sampled": self.sampled,
            "fingerprints": sorted(self.fingerprints),
        }
        if self.witness is not None:
            out["witness"] = self.witness.to_dict()
        if self.deadlock:
            out["deadlock"] = list(self.deadlock)
        if self.counterexample:
            out["counterexample"] = list(self.counterexample)
        return out


@dataclass
class VerifyResult:
    """Everything one :meth:`ScheduleExplorer.explore` call established."""

    mode: str                          # "dpor" | "naive"
    budget: int                        # schedule budget (baseline included)
    baseline_fingerprint: str
    verdicts: list[ClusterVerdict]
    schedules_planned: int             # baseline + all planned orderings
    schedules_explored: int            # schedules actually executed
    skipped: int                       # orderings mooted by early verdicts
    frontier: list[Perturbation]       # planned but unexplored orderings

    def _by_verdict(self, verdict: str) -> list[ClusterVerdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def races(self) -> list[ClusterVerdict]:
        return self._by_verdict("race")

    @property
    def deadlocks(self) -> list[ClusterVerdict]:
        return self._by_verdict("deadlock")

    @property
    def benign(self) -> list[ClusterVerdict]:
        return self._by_verdict("benign")

    @property
    def truncated(self) -> list[ClusterVerdict]:
        return self._by_verdict("truncated")

    @property
    def ok(self) -> bool:
        """Schedule-independent as far as explored: no race, no deadlock."""
        return not self.races and not self.deadlocks

    @property
    def certificate(self) -> str:
        """Digest of the explored schedule space.

        Stable across kernels, worker counts and dict ordering: it
        hashes the baseline fingerprint, every cluster's identity,
        verdict and observed outcome fingerprints, and the exploration
        counts.  :class:`repro.parallel.ResultCache` folds it into
        result keys; the golden harness pins it across kernels.
        """
        payload = {
            "format": "repro-verify-certificate/v1",
            "mode": self.mode,
            "budget": self.budget,
            "baseline": self.baseline_fingerprint,
            "planned": self.schedules_planned,
            "explored": self.schedules_explored,
            "frontier": len(self.frontier),
            "clusters": sorted(
                ({"rule": v.rule, "obj": v.obj, "kind": v.kind,
                  "time": v.time, "procs": list(v.procs),
                  "verdict": v.verdict, "instances": v.instances,
                  "sampled": v.sampled,
                  "fingerprints": sorted(v.fingerprints)}
                 for v in self.verdicts),
                key=canonical_digest),
        }
        return canonical_digest(payload)

    # -- reporting -------------------------------------------------------

    def report(self, subject: str = "verify") -> Report:
        """All verdicts as ``KV0xx`` diagnostics (races/deadlocks fail)."""
        report = Report(subject=subject)
        for v in self.verdicts:
            if v.verdict == "race":
                assert v.witness is not None
                example = ""
                if v.counterexample:
                    first = v.counterexample[0]
                    example = (f"; e.g. {first['path']}: "
                               f"{first['baseline']} -> {first['witness']}")
                report.add(Diagnostic(
                    rule="KV001", severity=Severity.ERROR,
                    message=f"confirmed race on {v.site()}: "
                            f"{v.witness.describe()} changes "
                            f"{len(v.counterexample)} result value(s)"
                            f"{example}",
                    subject=subject, location=v.site(),
                    hint="the outcome depends on same-time tie-breaking; "
                         "stagger the contending operations or make the "
                         "arbitration explicit in the model"))
            elif v.verdict == "deadlock":
                assert v.witness is not None
                report.add(Diagnostic(
                    rule="KV003", severity=Severity.ERROR,
                    message=f"reachable deadlock on {v.site()}: "
                            f"{v.witness.describe()} leaves "
                            f"{', '.join(v.deadlock)} blocked forever",
                    subject=subject, location=v.site(),
                    hint="an alternative same-time ordering reaches a "
                         "wait cycle; impose an ordering or add the "
                         "missing completion path"))
            elif v.verdict == "benign":
                sites = (f" ({v.sampled} of {v.instances} sites sampled)"
                         if v.instances > 1 else "")
                report.add(Diagnostic(
                    rule="KV002", severity=Severity.NOTE,
                    message=f"cluster on {v.site()} "
                            f"({', '.join(v.procs)}) proven benign: all "
                            f"{v.explored} alternative ordering(s) "
                            f"reproduce the baseline result{sites}",
                    subject=subject, location=v.site()))
            else:
                report.add(Diagnostic(
                    rule="KV004", severity=Severity.WARNING,
                    message=f"cluster on {v.site()} undecided: explored "
                            f"{v.explored}/{v.planned} ordering(s) before "
                            f"the budget ran out",
                    subject=subject, location=v.site(),
                    hint="re-run with a larger --budget to finish the "
                         "cluster"))
        if self.frontier:
            report.add(Diagnostic(
                rule="KV004", severity=Severity.NOTE,
                message=f"schedule frontier: {len(self.frontier)} planned "
                        f"ordering(s) unexplored within budget "
                        f"{self.budget}; first: "
                        f"{self.frontier[0].describe()}",
                subject=subject))
        return report

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "budget": self.budget,
            "ok": self.ok,
            "certificate": self.certificate,
            "baseline_fingerprint": self.baseline_fingerprint,
            "schedules_planned": self.schedules_planned,
            "schedules_explored": self.schedules_explored,
            "skipped": self.skipped,
            "frontier": [p.to_dict() for p in self.frontier],
            "clusters": [v.to_dict() for v in self.verdicts],
        }
