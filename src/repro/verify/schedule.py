"""Tie-break controllers: the schedules the explorer can impose.

A controller is anything with ``select(time, candidates) -> int``
(:meth:`repro.pearl.kernel.Simulator.attach_tie_break`), where
``candidates`` are the heap entries ``(time, seq, target, value)``
simultaneously ready at the current instant, in sequence (seed) order.

* :class:`SeedOrder` — the identity: always index 0, reproducing the
  kernel's default ``(time, seq)`` schedule.
* :class:`RecordingOrder` — seed order that additionally logs every
  multi-candidate choice point ("burst"); the naive enumeration mode
  permutes these.
* :class:`PreferenceOrder` — applies one :class:`Perturbation`: at one
  instant, dispatch the listed targets first, in the listed order;
  everywhere else, seed order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["Perturbation", "PreferenceOrder", "RecordingOrder",
           "SeedOrder", "target_name"]

#: one ready heap entry: (time, seq, target, value)
Entry = Sequence[Any]


def target_name(target: Any) -> str:
    """Stable display name of a dispatch target.

    Processes carry their own ``name``; bare callbacks (event triggers,
    timer fires) are named after the bound method and its event, so a
    perturbation can address e.g. ``trigger:timeout(5)``.
    """
    name = getattr(target, "name", None)
    if isinstance(name, str):
        return name
    owner = getattr(target, "__self__", None)
    fn_name = str(getattr(target, "__name__", "callback"))
    if owner is not None:
        event = getattr(owner, "event", owner)      # Timer -> its event
        event_name = getattr(event, "name", "")
        if isinstance(event_name, str) and event_name:
            return f"{fn_name}:{event_name}"
    return fn_name


class SeedOrder:
    """The identity controller: always the lowest sequence number."""

    def select(self, time: float, candidates: Sequence[Entry]) -> int:
        return 0


class RecordingOrder:
    """Seed order, logging every multi-candidate choice point."""

    def __init__(self) -> None:
        #: (time, names of simultaneously-ready targets in seed order)
        self.bursts: list[tuple[float, tuple[str, ...]]] = []

    def select(self, time: float, candidates: Sequence[Entry]) -> int:
        self.bursts.append(
            (time, tuple(target_name(entry[2]) for entry in candidates)))
        return 0


@dataclass(frozen=True)
class Perturbation:
    """One alternative schedule: a preferred dispatch order at one instant.

    ``obj``/``kind`` name the contention cluster this perturbation
    probes (a resource or channel, or a raw dispatch burst in naive
    mode); ``order`` lists target names to prefer at ``time``.
    """

    time: float
    obj: str
    kind: str
    order: tuple[str, ...]

    def describe(self) -> str:
        return (f"dispatch [{' -> '.join(self.order)}] first at "
                f"t={self.time:g} (contending on {self.obj!r})")

    def to_dict(self) -> dict[str, Any]:
        return {"time": self.time, "obj": self.obj, "kind": self.kind,
                "order": list(self.order)}


class PreferenceOrder:
    """Apply one :class:`Perturbation`; seed order everywhere else.

    At every choice point at the perturbation's instant, the candidate
    whose name ranks earliest in ``order`` is dispatched next (names
    not listed rank last, among themselves in seed order).  Preferring
    a process keeps preferring it while it stays ready, so all of its
    same-time operations complete before the next preferred target —
    exactly the "A's ops before B's" reordering the sanitizer flags.
    """

    def __init__(self, perturbation: Perturbation) -> None:
        self.perturbation = perturbation
        self._time = perturbation.time
        self._rank = {name: i for i, name in enumerate(perturbation.order)}

    def select(self, time: float, candidates: Sequence[Entry]) -> int:
        if time != self._time:
            return 0
        best = 0
        best_rank: int | None = None
        for i, entry in enumerate(candidates):
            rank = self._rank.get(target_name(entry[2]))
            if rank is not None and (best_rank is None or rank < best_rank):
                best = i
                best_rank = rank
        return best
