"""Picklable verify targets for the bundled workloads.

A target is a :data:`~repro.verify.explorer.Factory`: calling it builds
a **fresh** model (exploration runs the same workload many times) and
returns ``(sim, run)``.  Targets are plain picklable objects so cluster
exploration can shard over the :mod:`repro.parallel` process pool.

``run()`` must enable deadlock checking (both model classes here do) —
otherwise a deadlocked schedule would surface as a truncated result
diff instead of a ``KV003`` verdict.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.config import MachineConfig

__all__ = ["VERIFY_APPS", "MasterWorkerVerifyTarget", "TraceVerifyTarget",
           "app_verify_target"]

#: bundled apps ``repro verify`` accepts by name.
VERIFY_APPS = ("pingpong", "alltoall", "pipeline", "masterworker")


class TraceVerifyTarget:
    """:class:`~repro.commmodel.network.MultiNodeModel` over fixed
    task-level traces (one re-iterable operation stream per node)."""

    def __init__(self, machine: MachineConfig, traces: Any) -> None:
        self.machine = machine
        self.traces = list(traces)
        if len(self.traces) != machine.n_nodes:
            raise ValueError(
                f"expected {machine.n_nodes} traces (one per node), got "
                f"{len(self.traces)}")

    def __call__(self) -> tuple[Any, Callable[[], Any]]:
        from ..commmodel.network import MultiNodeModel
        model = MultiNodeModel(self.machine)

        def run() -> Any:
            return model.run(self.traces).summary()

        return model.sim, run


class MasterWorkerVerifyTarget:
    """:class:`~repro.hybrid.model.HybridModel` running the
    execution-driven master/worker task farm.

    The genuinely schedule-relevant bundled workload: the master's
    ``recv_any`` services whichever worker speaks first in simulated
    time, so equidistant workers can tie.
    """

    def __init__(self, machine: MachineConfig, n_tasks: int = 8,
                 seed: int = 0) -> None:
        self.machine = machine
        self.n_tasks = n_tasks
        self.seed = seed

    def __call__(self) -> tuple[Any, Callable[[], Any]]:
        from ..apps import ThreadedApplication, make_master_worker
        from ..hybrid.model import HybridModel
        model = HybridModel(self.machine)
        app = ThreadedApplication(
            make_master_worker(n_tasks=self.n_tasks, seed=self.seed),
            self.machine.n_nodes)

        def run() -> Any:
            return model.run_application(app).summary()

        return model.sim, run


def app_verify_target(machine: MachineConfig, app: str) -> Any:
    """A verify factory for a bundled app name (see :data:`VERIFY_APPS`)."""
    if app == "masterworker":
        return MasterWorkerVerifyTarget(machine)
    from ..apps import (alltoall_task_traces, pingpong_task_traces,
                        pipeline_task_traces)
    builders: dict[str, Callable[[int], Any]] = {
        "pingpong": pingpong_task_traces,
        "alltoall": alltoall_task_traces,
        "pipeline": pipeline_task_traces,
    }
    if app not in builders:
        raise ValueError(f"unknown verify app {app!r}; expected one of "
                         f"{', '.join(VERIFY_APPS)}")
    return TraceVerifyTarget(machine, builders[app](machine.n_nodes))
