"""The schedule-space exploration engine.

:class:`ScheduleExplorer` runs a model repeatedly under controlled
tie-break schedules and reduces every same-time contention cluster to a
verdict.  The structure is classic stateless model checking:

1. **Baseline** — one run under the seed schedule, with the
   :class:`~repro.check.DeterminismSanitizer` attached; its clusters
   are the initial choice points and its result fingerprint the
   reference.
2. **Plan** — for each cluster, the alternative orderings of its
   contending targets (permutations of the distinct names, identity
   excluded, capped per cluster).  With ``mode="dpor"`` only
   sanitizer-observed clusters — events sharing a resource or channel —
   are planned; independent same-time events commute and are pruned.
   A second reduction folds *structurally identical* clusters into one
   equivalence class: sites whose object and process names differ only
   in indices (``pkt3.0`` vs ``pkt17.1`` on ``link0->2`` vs
   ``link3->1``) arise from the same model code, so the explorer
   permutes a sample of concrete instances per class
   (``samples_per_cluster``) instead of every packet ever sent.
   ``mode="naive"`` permutes every multi-candidate dispatch burst
   instead, which is the unpruned baseline DPOR is measured against.
3. **Explore** — run perturbed schedules (optionally sharded over a
   process pool) until the plan or the budget is exhausted.  A run
   whose fingerprint differs from the baseline decides its cluster as a
   race; a run that deadlocks decides it as a deadlock; clusters whose
   orderings all match are benign.  Newly discovered clusters (reachable
   only under a perturbed schedule) are planned on the fly.

The budget counts *schedules executed*, baseline included; whatever
remains planned but unexplored is reported as the frontier, never
silently dropped.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..check.sanitizer import DeterminismSanitizer
from ..pearl.errors import DeadlockError
from .result import (
    ClusterVerdict,
    VerifyResult,
    canonical_digest,
    flatten_summary,
    summary_diff,
)
from .schedule import Perturbation, PreferenceOrder, RecordingOrder, SeedOrder

__all__ = ["Outcome", "ScheduleExplorer", "VerifyError", "run_schedule"]

#: a verify target: builds a fresh model and returns ``(sim, run)``
#: where ``run()`` executes it and returns a JSON-able result summary.
Factory = Callable[[], tuple[Any, Callable[[], Any]]]

#: cluster signature: (rule, obj, kind, first time, contending names)
Sig = tuple[str, str, str, float, tuple[str, ...]]


class VerifyError(RuntimeError):
    """The baseline run failed, so there is nothing to explore."""


@dataclass
class Outcome:
    """One schedule's observable result (picklable across the pool)."""

    perturbation: Optional[Perturbation]
    fingerprint: str
    summary: dict[str, Any]            # flattened result paths
    deadlock: tuple[str, ...]          # blocked process names, if any
    error: Optional[str]               # "Type: message" of a raised error
    clusters: list[Sig]                # contention observed in this run
    bursts: list[tuple[float, tuple[str, ...]]]   # recorded choice points


def run_schedule(factory: Factory,
                 perturbation: Optional[Perturbation] = None, *,
                 record_bursts: bool = False) -> Outcome:
    """Run one schedule of ``factory``'s model and fingerprint it.

    The model runs with a sanitizer attached (cluster discovery) and a
    tie-break controller: :class:`SeedOrder` (or :class:`RecordingOrder`
    when ``record_bursts``) for the baseline, :class:`PreferenceOrder`
    for a perturbed schedule.  Deadlocks and exceptions are captured
    into the outcome — the deadlock-carrying run *is* the evidence —
    and enter the fingerprint like any other observable.
    """
    sim, run = factory()
    sanitizer = DeterminismSanitizer(max_findings=0)
    sim.attach_sanitizer(sanitizer)
    controller: Any
    if perturbation is not None:
        controller = PreferenceOrder(perturbation)
    elif record_bursts:
        controller = RecordingOrder()
    else:
        controller = SeedOrder()
    sim.attach_tie_break(controller)
    deadlock: tuple[str, ...] = ()
    error: Optional[str] = None
    value: Any = None
    try:
        value = run()
    except DeadlockError as err:
        deadlock = tuple(err.blocked)
    except Exception as exc:          # noqa: BLE001 - captured by design
        error = f"{type(exc).__name__}: {exc}"
    summary = flatten_summary(value) if value is not None else {}
    fingerprint = canonical_digest({"summary": summary,
                                    "deadlock": list(deadlock),
                                    "error": error})
    sigs: list[Sig] = [(c.rule, c.obj, c.kind, c.time, c.procs)
                       for c in sanitizer.clusters()]
    bursts = list(controller.bursts) if record_bursts else []
    return Outcome(perturbation=perturbation, fingerprint=fingerprint,
                   summary=summary, deadlock=deadlock, error=error,
                   clusters=sigs, bursts=bursts)


def _run_job(job: tuple[Factory, Perturbation]) -> Outcome:
    """Module-level pool task: one perturbed schedule (picklable)."""
    return run_schedule(job[0], job[1])


@dataclass
class _ClusterState:
    """Book-keeping for one cluster class during exploration."""

    sig: Sig                           # representative concrete site
    planned: int
    capped: bool                       # ordering cap hit while planning
    instances: int = 1                 # concrete sites folded into class
    sampled: int = 1                   # instances whose orderings planned
    explored: int = 0
    verdict: Optional[str] = None      # "race" / "deadlock" once decided
    witness: Optional[Perturbation] = None
    deadlock: tuple[str, ...] = ()
    counterexample: list[dict[str, Any]] = field(default_factory=list)
    fingerprints: set[str] = field(default_factory=set)

    @property
    def decided(self) -> bool:
        return self.verdict is not None


_INDEX = re.compile(r"\d+")


def _shape(name: str) -> str:
    """Normalize indices out of a name: ``pkt17.1`` -> ``pkt#.#``."""
    return _INDEX.sub("#", name)


#: cluster-class identity: sites generated by the same model code —
#: same rule/kind, and object/process names equal up to indices —
#: belong to one class; times shift between schedules and are excluded.
def _key_of(sig: Sig) -> tuple[str, str, str, tuple[str, ...]]:
    return (sig[0], _shape(sig[1]), sig[2],
            tuple(sorted({_shape(p) for p in sig[4]})))


class ScheduleExplorer:
    """Systematic same-time schedule exploration with DPOR pruning.

    ``budget`` bounds the total number of schedules executed (baseline
    included); ``max_orders_per_cluster`` bounds the permutations
    planned per cluster (wide clusters fall back to a truncated
    verdict rather than a factorial plan).
    """

    def __init__(self, budget: int = 64, mode: str = "dpor",
                 max_orders_per_cluster: int = 24,
                 samples_per_cluster: int = 3) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if mode not in ("dpor", "naive"):
            raise ValueError(f"mode must be 'dpor' or 'naive', got {mode!r}")
        if max_orders_per_cluster < 1:
            raise ValueError("max_orders_per_cluster must be >= 1")
        if samples_per_cluster < 1:
            raise ValueError("samples_per_cluster must be >= 1")
        self.budget = budget
        self.mode = mode
        self.max_orders_per_cluster = max_orders_per_cluster
        self.samples_per_cluster = samples_per_cluster

    # -- planning --------------------------------------------------------

    def _plan(self, sig: Sig) -> tuple[list[Perturbation], bool]:
        """Alternative orderings for one cluster (identity excluded)."""
        _rule, obj, kind, time, procs = sig
        distinct = list(dict.fromkeys(procs))
        if len(distinct) < 2:
            return [], False
        orders: list[Perturbation] = []
        capped = False
        for perm in itertools.permutations(distinct):
            if list(perm) == distinct:
                continue              # the baseline ordering itself
            if len(orders) >= self.max_orders_per_cluster:
                capped = True
                break
            orders.append(Perturbation(time=time, obj=obj, kind=kind,
                                       order=perm))
        return orders, capped

    def _sigs_of(self, outcome: Outcome) -> list[Sig]:
        """The choice points one run exposes, per the exploration mode."""
        if self.mode == "dpor":
            return list(outcome.clusters)
        sigs: list[Sig] = []
        for time, names in outcome.bursts:
            if len(set(names)) >= 2:
                sigs.append(("BURST", f"burst@t={time:g}", "dispatch",
                             time, names))
        return sigs

    # -- execution -------------------------------------------------------

    def _run_batch(self, factory: Factory, perts: list[Perturbation],
                   workers: int) -> list[Outcome]:
        jobs: list[tuple[Factory, Perturbation]] = [(factory, p)
                                                    for p in perts]
        if workers <= 1 or len(jobs) <= 1:
            return [_run_job(job) for job in jobs]
        from ..parallel.runner import run_sharded
        return run_sharded(_run_job, jobs, workers=workers)

    def explore(self, factory: Factory, workers: int = 1) -> VerifyResult:
        """Explore ``factory``'s schedule space; return the verdicts."""
        baseline = run_schedule(factory,
                                record_bursts=(self.mode == "naive"))
        if baseline.error is not None:
            raise VerifyError(f"baseline run failed: {baseline.error}")
        if baseline.deadlock:
            raise VerifyError("baseline schedule already deadlocks "
                              f"(blocked: {', '.join(baseline.deadlock)}); "
                              "fix the model before exploring alternatives")

        states: dict[tuple[str, str, str, tuple[str, ...]],
                     _ClusterState] = {}
        pending: list[tuple[Any, Perturbation]] = []
        seen_sites: set[Sig] = set()

        def ingest(outcome: Outcome) -> None:
            for sig in self._sigs_of(outcome):
                if sig in seen_sites:
                    continue
                seen_sites.add(sig)
                key = _key_of(sig)
                state = states.get(key)
                if state is None:
                    orders, capped = self._plan(sig)
                    states[key] = _ClusterState(sig=sig,
                                                planned=len(orders),
                                                capped=capped)
                    pending.extend((key, p) for p in orders)
                    continue
                state.instances += 1
                if (state.sampled < self.samples_per_cluster
                        and not state.decided):
                    orders, capped = self._plan(sig)
                    if orders:
                        state.planned += len(orders)
                        state.capped = state.capped or capped
                        state.sampled += 1
                        pending.extend((key, p) for p in orders)

        ingest(baseline)
        explored = 1                  # the baseline run
        skipped = 0
        while pending and explored < self.budget:
            room = self.budget - explored
            batch: list[tuple[Any, Perturbation]] = []
            rest: list[tuple[Any, Perturbation]] = []
            for item in pending:
                if states[item[0]].decided:
                    skipped += 1      # mooted by an earlier verdict
                elif len(batch) < room:
                    batch.append(item)
                else:
                    rest.append(item)
            pending = rest
            if not batch:
                break
            outcomes = self._run_batch(factory, [p for _, p in batch],
                                       workers)
            explored += len(batch)
            for (key, pert), outcome in zip(batch, outcomes):
                state = states[key]
                state.explored += 1
                state.fingerprints.add(outcome.fingerprint)
                if not state.decided:
                    if outcome.deadlock:
                        state.verdict = "deadlock"
                        state.witness = pert
                        state.deadlock = outcome.deadlock
                    elif outcome.fingerprint != baseline.fingerprint:
                        state.verdict = "race"
                        state.witness = pert
                        state.counterexample = summary_diff(
                            baseline.summary, outcome.summary)
                ingest(outcome)

        frontier: list[Perturbation] = []
        for key, pert in pending:
            if states[key].decided:
                skipped += 1
            else:
                frontier.append(pert)

        verdicts: list[ClusterVerdict] = []
        for state in states.values():
            verdict = state.verdict
            if verdict is None:
                complete = state.explored == state.planned and not state.capped
                verdict = "benign" if complete else "truncated"
            rule, obj, kind, time, procs = state.sig
            verdicts.append(ClusterVerdict(
                rule=rule, obj=obj, kind=kind, time=time, procs=procs,
                verdict=verdict, planned=state.planned,
                explored=state.explored, instances=state.instances,
                sampled=state.sampled,
                fingerprints=tuple(sorted(state.fingerprints)),
                witness=state.witness, deadlock=state.deadlock,
                counterexample=state.counterexample))
        return VerifyResult(
            mode=self.mode, budget=self.budget,
            baseline_fingerprint=baseline.fingerprint,
            verdicts=verdicts,
            schedules_planned=1 + sum(s.planned for s in states.values()),
            schedules_explored=explored,
            skipped=skipped, frontier=frontier)
