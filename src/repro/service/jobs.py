"""Job records, content-addressed result store, and the job manager.

The service's contract is *deterministic job records*: a job is the
canonical JSON of its request, its identity is the sha256 of that JSON
plus the :func:`~repro.parallel.cache.code_version` (so the same study
re-submitted against changed simulator code is a different job), and
every serialized record excludes wall-clock fields — two runs of the
same request produce byte-identical records modulo the run-scoped
sequence suffix.  Sweep jobs run on a
:class:`~repro.parallel.executor.Executor`; chaos jobs run through
:func:`~repro.chaos.run_campaign`.  Both reuse the CLI's machine
building and runner (same workload-id scheme), so rows fetched over
HTTP are byte-identical to ``repro sweep`` / in-process ``Sweep.run``
output and share the same :class:`~repro.parallel.ResultCache`
entries.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from functools import partial
from pathlib import Path
from typing import Any, Optional

from ..observe import MetricRegistry
from ..parallel import FaultedRunner, ResultCache
from ..parallel.executor import (TERMINAL_STATES, Executor, ExecutorError,
                                 JobSpec, LocalAsyncExecutor)
from .scheduler import JobScheduler, QuotaExceeded

__all__ = ["JobManager", "JobRecord", "ResultStore", "ServiceError",
           "canonical_request", "job_key"]


class ServiceError(RuntimeError):
    """A request the service rejects; carries the HTTP status to use."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _Cancelled(Exception):
    """Internal: a cancel request reached a running chaos job."""


class _TimedOut(Exception):
    """Internal: a running chaos job exceeded its time budget."""


# -- request canonicalization ----------------------------------------------

#: request fields, with defaults; ``...`` marks required fields.
_SWEEP_FIELDS: dict[str, Any] = {
    "kind": "sweep", "preset": ..., "axes": ..., "set": [],
    "workload": None, "rounds": 2, "seed": 0, "on_error": "capture",
    "timing": False, "faults": None, "timeout_s": None,
    "tenant": "default", "lane": "normal",
}
_CHAOS_FIELDS: dict[str, Any] = {
    "kind": "chaos", "preset": ..., "app": ..., "campaign": ...,
    "set": [], "size": 256, "repeats": 1, "workers": 1,
    "timeout_s": None, "tenant": "default", "lane": "normal",
}


def canonical_request(request: Any) -> dict:
    """Validate a job request and fill defaults; deterministic output.

    Raises :class:`ServiceError` (status 400) on anything malformed:
    unknown ``kind``, unknown fields, missing required fields.  Deep
    validation (presets, axes, campaign specs) happens when the job is
    planned — also at submission time.
    """
    if not isinstance(request, dict):
        raise ServiceError(400, f"request must be a JSON object, "
                                f"got {type(request).__name__}")
    kind = request.get("kind")
    if kind == "sweep":
        fields = _SWEEP_FIELDS
    elif kind == "chaos":
        fields = _CHAOS_FIELDS
    else:
        raise ServiceError(400, f"unknown job kind {kind!r}; "
                                f"expected 'sweep' or 'chaos'")
    unknown = sorted(set(request) - set(fields))
    if unknown:
        raise ServiceError(400, f"unknown request fields: "
                                + ", ".join(unknown))
    canon = {}
    for name in sorted(fields):
        if name in request:
            canon[name] = request[name]
        elif fields[name] is ...:
            raise ServiceError(400, f"missing required field {name!r}")
        else:
            canon[name] = fields[name]
    return canon


def job_key(request: dict) -> str:
    """Content address of a canonical request: sha256 over the request
    JSON plus the simulator code version."""
    from ..parallel.cache import code_version
    blob = json.dumps({"request": request, "code": code_version()},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- job planning ----------------------------------------------------------


def _plan_sweep(request: dict) -> dict:
    """Turn a canonical sweep request into runnable pieces.

    Reuses the CLI's preset/override/axis machinery and its
    ``_sweep_point_runner`` + workload-id scheme, so service rows are
    byte-identical to ``repro sweep`` output and share cache entries
    with it.
    """
    from ..cli import (_AxisSetter, _parse_value, _resolve_path,
                       _split_spec, _sweep_point_runner, build_machine)
    from ..core.experiment import Sweep
    from ..faults import as_fault_plan

    try:
        machine = build_machine(request["preset"], request["set"] or ())
        sweep = Sweep(machine, label=request["preset"])
        axes = request["axes"]
        if not isinstance(axes, (list, tuple)) or not axes:
            raise ServiceError(400, "axes must be a non-empty list of "
                                    "'dotted.path=v1,v2' strings")
        for spec in axes:
            path, raw = _split_spec(spec)
            target, leaf = _resolve_path(machine, path)
            current = getattr(target, leaf)
            values = [_parse_value(current, v) for v in raw.split(",")]
            sweep.axis(path, _AxisSetter(path), values)
        points = sweep.points()
        plan = as_fault_plan(request["faults"])
    except ServiceError:
        raise
    except (SystemExit, Exception) as exc:  # noqa: BLE001 - request boundary
        raise ServiceError(400, f"bad sweep request: {exc}") from None
    runner: Any = partial(_sweep_point_runner, workload=request["workload"],
                          rounds=request["rounds"], seed=request["seed"])
    if plan is not None:
        runner = FaultedRunner(runner, plan)
    workload_id = (f"cli-stochastic:{request['workload'] or 'generic'}"
                   f":rounds={request['rounds']}:seed={request['seed']}")
    return {"runner": runner, "points": points, "faults": plan,
            "workload_id": workload_id, "total": len(points)}


def _plan_chaos(request: dict) -> dict:
    """Turn a canonical chaos request into runnable pieces."""
    from ..chaos import AppCampaignRunner
    from ..chaos.spec import as_campaign_spec
    from ..cli import build_machine
    from ..topology import build_topology

    try:
        machine = build_machine(request["preset"], request["set"] or ())
        spec = as_campaign_spec(request["campaign"])
        runner = AppCampaignRunner(request["app"], size=request["size"],
                                   repeats=request["repeats"])
        if not isinstance(request["workers"], int) or request["workers"] < 1:
            raise ServiceError(400, "workers must be an int >= 1")
        total = len(spec.rungs(build_topology(machine.network.topology)))
    except ServiceError:
        raise
    except (SystemExit, Exception) as exc:  # noqa: BLE001 - request boundary
        raise ServiceError(400, f"bad chaos request: {exc}") from None
    return {"machine": machine, "spec": spec, "runner": runner,
            "workers": request["workers"], "total": total}


# -- job record ------------------------------------------------------------


class JobRecord:
    """One job's deterministic, wall-clock-free state.

    States: ``submitted → running → done | failed | cancelled``.
    ``to_dict()`` has fixed field order and no timestamps; progress
    events mirror the executor's (``state`` events bracket one
    ``progress`` event per row).
    """

    def __init__(self, job_id: str, key: str, request: dict) -> None:
        self.job_id = job_id
        self.key = key
        self.request = request
        self.state = "submitted"
        self.done = 0
        self.total = 0
        self.error: Optional[str] = None
        self.cache = {"hits": 0, "misses": 0, "stores": 0}
        self.rows: Optional[list[dict]] = None
        self.campaign: Optional[dict] = None
        self.events: list[dict] = []
        self.cancel_requested = False
        self.cond = threading.Condition()
        self.plan: dict = {}

    # -- mutation (manager-side) --------------------------------------

    def emit(self, event: dict) -> None:
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()

    def set_state(self, state: str, error: Optional[str] = None) -> None:
        with self.cond:
            self.state = state
            self.error = error
            self.cond.notify_all()
        event = {"event": "state", "state": state}
        if error is not None:
            event["error"] = error
        self.emit(event)

    def note_progress(self, done: int, total: int, row: dict) -> None:
        with self.cond:
            self.done = done
            self.total = total
        self.emit({"event": "progress", "done": done, "total": total,
                   "row": row})

    # -- observation ---------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        """Deterministic record: fixed field order, no wall-clock."""
        with self.cond:
            return {
                "id": self.job_id,
                "key": self.key,
                "kind": self.request["kind"],
                "tenant": self.request["tenant"],
                "lane": self.request["lane"],
                "state": self.state,
                "done": self.done,
                "total": self.total,
                "error": self.error,
                "cache": dict(self.cache),
                "request": dict(self.request),
            }

    def result_payload(self) -> dict:
        """The finished job's result document (404/409 handled by the
        caller via :attr:`state`)."""
        with self.cond:
            payload = {"id": self.job_id, "kind": self.request["kind"],
                       "state": self.state}
            if self.rows is not None:
                payload["rows"] = self.rows
            if self.campaign is not None:
                payload["campaign"] = self.campaign
            return payload

    def events_since(self, start: int) -> tuple[list[dict], bool]:
        """Events from index ``start`` on, plus whether the job ended
        (polling contract for the NDJSON stream)."""
        with self.cond:
            return list(self.events[start:]), self.terminal

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until terminal (or timeout); returns the state."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # repro: noqa[PY002]
        with self.cond:
            while not self.terminal:
                if deadline is None:
                    self.cond.wait(0.5)
                    continue
                left = deadline - time.monotonic()  # repro: noqa[PY002]
                if left <= 0:
                    break
                self.cond.wait(left)
            return self.state


# -- result store ----------------------------------------------------------


class ResultStore:
    """Content-addressed persistence: variant rows + job records.

    Promotes the sweep :class:`~repro.parallel.ResultCache` to the
    service's row store (``<root>/rows/``, shared with CLI and
    in-process runs — warm re-submissions hit it) and adds a job-record
    store (``<root>/jobs/<key[:2]>/<key>.json``) addressed by
    :func:`job_key`, so re-submitting the same request against the same
    code version lands on the same record path.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.cache = ResultCache(str(self.root / "rows"))
        self._jobs_dir = self.root / "jobs"

    def _job_path(self, key: str) -> Path:
        return self._jobs_dir / key[:2] / f"{key}.json"

    def put_job(self, record: JobRecord) -> Path:
        """Persist a finished job's record + result atomically."""
        path = self._job_path(record.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"record": record.to_dict(),
                   "result": record.result_payload()}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
        return path

    def get_job(self, key: str) -> Optional[dict]:
        path = self._job_path(key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def job_count(self) -> int:
        if not self._jobs_dir.exists():
            return 0
        return sum(1 for _ in self._jobs_dir.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ResultStore {str(self.root)!r}>"


# -- job manager -----------------------------------------------------------


class JobManager:
    """Admit, schedule, run and record jobs.

    One dispatch thread pulls job ids off the
    :class:`~repro.service.scheduler.JobScheduler` (quotas and lanes
    enforced at submission) and runs them: sweep jobs on the
    :class:`~repro.parallel.executor.Executor`, chaos campaigns via
    :func:`~repro.chaos.run_campaign` — both report progress into the
    job record, honor cooperative cancellation, and land in the
    :class:`ResultStore` when done.  ``service.*`` metrics live in a
    :class:`~repro.observe.MetricRegistry` for the ``/v1/metrics``
    endpoint.
    """

    def __init__(self, executor: Optional[Executor] = None,
                 store: Optional[ResultStore] = None,
                 scheduler: Optional[JobScheduler] = None,
                 registry: Optional[MetricRegistry] = None,
                 autostart: bool = True) -> None:
        self.executor = executor if executor is not None \
            else LocalAsyncExecutor()
        self.store = store
        self.scheduler = scheduler if scheduler is not None \
            else JobScheduler()
        self.registry = registry if registry is not None \
            else MetricRegistry()
        self._records: dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._stop = False
        self._thread: Optional[threading.Thread] = None
        self._counters = {
            name: self.registry.counter(f"service.jobs.{name}")
            for name in ("submitted", "completed", "failed",
                         "cancelled", "rejected")}
        self.registry.register("service.scheduler", self.scheduler.snapshot)
        self.registry.register("service.records", self._records_summary)
        if autostart:
            self.start()

    def _records_summary(self) -> dict:
        with self._lock:
            records = list(self._records.values())
        return {"total": len(records),
                "active": sum(1 for r in records if not r.terminal)}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start the dispatch thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        name="repro-service-dispatch",
                                        daemon=True)
        self._thread.start()

    def close(self) -> None:
        self._stop = True
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None
        self.executor.close()

    # -- API surface ---------------------------------------------------

    def submit(self, request: Any) -> JobRecord:
        """Admit one job; raises :class:`ServiceError` 400 on malformed
        requests and 429 on quota rejection."""
        canon = canonical_request(request)
        key = job_key(canon)
        plan = (_plan_sweep if canon["kind"] == "sweep"
                else _plan_chaos)(canon)
        with self._lock:
            job_id = f"{key[:12]}-{next(self._seq)}"
            record = JobRecord(job_id, key, canon)
            record.plan = plan
            record.total = plan["total"]
            # Emit "submitted" before the scheduler can hand the job to
            # the dispatcher, so event order is stable.
            record.set_state("submitted")
            try:
                self.scheduler.submit(job_id, tenant=canon["tenant"],
                                      lane=canon["lane"])
            except QuotaExceeded as exc:
                self._counters["rejected"].inc()
                raise ServiceError(429, str(exc)) from None
            except ValueError as exc:
                self._counters["rejected"].inc()
                raise ServiceError(400, str(exc)) from None
            self._records[job_id] = record
            self._counters["submitted"].inc()
        return record

    def record(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        return record

    def list_jobs(self) -> list[dict]:
        with self._lock:
            records = list(self._records.values())
        return [r.to_dict() for r in records]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; ``False`` when it already ended."""
        record = self.record(job_id)
        with record.cond:
            if record.terminal:
                return False
            record.cancel_requested = True
        if self.scheduler.cancel(job_id):
            # Still queued: it will never be acquired — finalize here.
            record.set_state("cancelled")
            self._counters["cancelled"].inc()
            return True
        try:
            # Running sweep: forward to the executor (record ids double
            # as executor job ids).  Chaos jobs and not-yet-submitted
            # sweeps notice the record flag at the next row boundary.
            self.executor.cancel(job_id)
        except ExecutorError:
            pass
        return True

    def metrics(self) -> dict:
        """Flat ``service.*`` metric snapshot."""
        return self.registry.snapshot()

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop:
            job_id = self.scheduler.acquire(timeout=0.1)
            if job_id is None:
                continue
            record = self.record(job_id)
            try:
                self._run(record)
            finally:
                self.scheduler.release(job_id)

    def _finish(self, record: JobRecord, state: str,
                error: Optional[str] = None) -> None:
        record.set_state(state, error)
        counter = {"done": "completed", "failed": "failed",
                   "cancelled": "cancelled"}[state]
        self._counters[counter].inc()
        if state == "done" and self.store is not None:
            self.store.put_job(record)

    def _run(self, record: JobRecord) -> None:
        if record.cancel_requested:
            self._finish(record, "cancelled")
            return
        record.set_state("running")
        try:
            if record.request["kind"] == "sweep":
                self._run_sweep(record)
            else:
                self._run_chaos(record)
        except Exception as exc:  # noqa: BLE001 - dispatch must survive
            self._finish(record, "failed", f"{type(exc).__name__}: {exc}")

    def _run_sweep(self, record: JobRecord) -> None:
        plan = record.plan
        spec = JobSpec(
            runner=plan["runner"], points=plan["points"],
            workload_id=plan["workload_id"],
            on_error=record.request["on_error"],
            timing=record.request["timing"], faults=plan["faults"],
            cache=self.store.cache if self.store is not None else None,
            timeout_s=record.request["timeout_s"])

        def absorb(event: dict) -> None:
            # The executor emits its own state events; the record owns
            # job-level state, so only progress flows through.
            if event.get("event") != "progress":
                return
            if record.cancel_requested:
                try:
                    self.executor.cancel(record.job_id)
                except ExecutorError:  # pragma: no cover - tiny race
                    pass
            record.note_progress(event["done"], event["total"],
                                 event["row"])

        self.executor.submit(spec, job_id=record.job_id, on_event=absorb)
        status = self.executor.wait(record.job_id)
        with record.cond:
            record.cache = dict(status.cache)
        if status.state == "done":
            record.rows = self.executor.result(record.job_id)
            self._finish(record, "done")
        elif status.state == "cancelled":
            self._finish(record, "cancelled")
        else:
            self._finish(record, "failed", status.error)

    def _run_chaos(self, record: JobRecord) -> None:
        from ..chaos import run_campaign
        from ..core.config import ConfigError

        plan = record.plan
        timeout = record.request["timeout_s"]
        # Job deadlines are host-side wall time by definition.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # repro: noqa[PY002]
        cache = self.store.cache if self.store is not None else None

        def progress(done: int, total: int, row: dict) -> None:
            if record.cancel_requested:
                raise _Cancelled(record.job_id)
            if deadline is not None \
                    and time.monotonic() > deadline:  # repro: noqa[PY002]
                raise _TimedOut(
                    f"JobTimeout: job exceeded its {timeout}s budget")
            record.note_progress(done, total, row)

        try:
            result = run_campaign(plan["spec"], plan["machine"],
                                  plan["runner"], workers=plan["workers"],
                                  cache=cache, progress=progress)
        except _Cancelled:
            self._finish(record, "cancelled")
            return
        except _TimedOut as exc:
            self._finish(record, "failed", str(exc))
            return
        except ConfigError as exc:
            self._finish(record, "failed", f"ConfigError: {exc}")
            return
        record.campaign = result.to_dict()
        if result.cache_stats is not None:
            with record.cond:
                record.cache = {k: result.cache_stats.get(k, 0)
                                for k in ("hits", "misses", "stores")}
        self._finish(record, "done")
