"""Simulation as a service: async job server over the workbench.

The paper's workbench is an interactive design-exploration loop; this
package serves that loop to many users.  Sweeps and chaos campaigns
become *jobs* — submitted over HTTP, scheduled across tenants and
priority lanes, executed on a backend-agnostic
:class:`~repro.parallel.Executor`, streamed as progress events, and
persisted in a content-addressed :class:`ResultStore` that promotes
the sweep :class:`~repro.parallel.ResultCache`:

* :class:`JobManager` — admission, scheduling, execution, records;
* :class:`JobScheduler` — per-tenant quotas, ``high``/``normal``/
  ``low`` lanes, anti-starvation aging;
* :class:`ServiceServer` / :func:`run_server` — stdlib-asyncio HTTP
  endpoints (submit / status / result / NDJSON event stream / cancel /
  metrics);
* :class:`ServiceClient` — thin synchronous client;
* :class:`ResultStore` — variant rows + deterministic job records.

CLI: ``repro serve`` runs the server; ``repro submit`` / ``repro
status`` / ``repro fetch`` talk to it.  Rows fetched over HTTP are
byte-identical to in-process ``Sweep.run`` output — pinned by the CI
``service-smoke`` job and ``tests/test_service_api.py``.
"""

from .client import ServiceClient
from .jobs import (
    JobManager,
    JobRecord,
    ResultStore,
    ServiceError,
    canonical_request,
    job_key,
)
from .scheduler import LANES, JobScheduler, QuotaExceeded
from .server import ServiceServer, run_server

__all__ = [
    "JobManager", "JobRecord", "JobScheduler", "LANES", "QuotaExceeded",
    "ResultStore", "ServiceClient", "ServiceError", "ServiceServer",
    "canonical_request", "job_key", "run_server",
]
