"""Multi-tenant job scheduling: priority lanes, quotas, aging.

The service serves "heavy multi-user traffic" (ROADMAP north star), so
admission and ordering are policy, not accident:

* **per-tenant quotas** — a tenant's *active* jobs (queued + running)
  are capped; submission past the cap is rejected with
  :class:`QuotaExceeded` (the server maps it to HTTP 429) rather than
  silently queueing unbounded work;
* **priority lanes** — ``high`` / ``normal`` / ``low`` strict-priority
  FIFO queues;
* **anti-starvation aging** — every time a queued lane head is passed
  over in favor of a higher lane, its ``passed_over`` count grows; at
  ``starvation_bound`` the job is scheduled next regardless of lane,
  so lower lanes make progress under sustained high-priority load
  (bounded bypass, the classic aging fix for strict priority).

The scheduler is a plain thread-safe data structure — it orders job
ids and tracks active counts; actually *running* jobs is the job
manager's business.  Hypothesis properties over random job mixes
(``tests/test_service_scheduler.py``) pin the quota, starvation and
cancellation invariants.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

__all__ = ["JobScheduler", "LANES", "QuotaExceeded"]

#: scheduling lanes, highest priority first
LANES = ("high", "normal", "low")


class QuotaExceeded(RuntimeError):
    """A tenant tried to exceed its active-job quota."""


@dataclass
class _Entry:
    job_id: str
    tenant: str
    lane: str
    seq: int
    passed_over: int = 0


class JobScheduler:
    """Order job ids across tenants and priority lanes.

    ::

        sched = JobScheduler(tenant_quota=4, starvation_bound=8)
        sched.submit("job-1", tenant="alice", lane="high")
        job_id = sched.acquire(timeout=1.0)   # -> "job-1"
        ...run it...
        sched.release(job_id)

    ``acquire`` blocks until a job is available (or the timeout
    elapses, returning ``None``); ``release`` retires a running job and
    frees its tenant's quota slot.  ``cancel`` removes a still-queued
    job; a running job cannot be cancelled here (the executor owns it).
    """

    def __init__(self, *, tenant_quota: int = 4,
                 starvation_bound: int = 8) -> None:
        if tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1, got {tenant_quota}")
        if starvation_bound < 1:
            raise ValueError(
                f"starvation_bound must be >= 1, got {starvation_bound}")
        self.tenant_quota = tenant_quota
        self.starvation_bound = starvation_bound
        self._queues: dict[str, deque[_Entry]] = {lane: deque()
                                                  for lane in LANES}
        self._running: dict[str, _Entry] = {}
        self._active: dict[str, int] = {}     # tenant -> queued + running
        self._seq = itertools.count(1)
        self._cond = threading.Condition()

    # -- admission -----------------------------------------------------

    def submit(self, job_id: str, *, tenant: str = "default",
               lane: str = "normal") -> None:
        """Queue ``job_id``; raises :class:`QuotaExceeded` when the
        tenant is at its active-job cap and ``ValueError`` on an
        unknown lane."""
        if lane not in self._queues:
            raise ValueError(f"unknown lane {lane!r}, expected one of {LANES}")
        with self._cond:
            active = self._active.get(tenant, 0)
            if active >= self.tenant_quota:
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {active} active jobs "
                    f"(quota {self.tenant_quota})")
            entry = _Entry(job_id, tenant, lane, next(self._seq))
            self._queues[lane].append(entry)
            self._active[tenant] = active + 1
            self._cond.notify_all()

    # -- dispatch ------------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the next job to run; ``None`` if the timeout elapses."""
        # Host-side wait bookkeeping, not simulated time.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # repro: noqa[PY002]
        with self._cond:
            while not any(self._queues.values()):
                if deadline is None:
                    self._cond.wait(0.5)
                    continue
                left = deadline - time.monotonic()  # repro: noqa[PY002]
                if left <= 0:
                    return None
                self._cond.wait(left)
            entry = self._pick()
            self._running[entry.job_id] = entry
            return entry.job_id

    def _pick(self) -> _Entry:
        # A lane head that has been passed over `starvation_bound`
        # times wins regardless of lane (oldest such first); otherwise
        # strict priority order.
        starved = [q[0] for q in self._queues.values()
                   if q and q[0].passed_over >= self.starvation_bound]
        if starved:
            chosen = min(starved, key=lambda entry: entry.seq)
        else:
            chosen = next(q[0] for lane in LANES
                          if (q := self._queues[lane]))
        for q in self._queues.values():
            if q and q[0] is not chosen:
                q[0].passed_over += 1
        self._queues[chosen.lane].remove(chosen)
        return chosen

    def release(self, job_id: str) -> None:
        """Retire a running job, freeing its tenant's quota slot."""
        with self._cond:
            entry = self._running.pop(job_id, None)
            if entry is None:
                return
            self._retire(entry)

    def cancel(self, job_id: str) -> bool:
        """Drop a still-queued job; ``False`` if unknown or running."""
        with self._cond:
            for q in self._queues.values():
                for entry in q:
                    if entry.job_id == job_id:
                        q.remove(entry)
                        self._retire(entry)
                        return True
            return False

    def _retire(self, entry: _Entry) -> None:
        remaining = self._active.get(entry.tenant, 0) - 1
        if remaining > 0:
            self._active[entry.tenant] = remaining
        else:
            self._active.pop(entry.tenant, None)

    # -- introspection -------------------------------------------------

    def active(self, tenant: str) -> int:
        """Queued + running jobs for ``tenant``."""
        with self._cond:
            return self._active.get(tenant, 0)

    def snapshot(self) -> dict:
        """Deterministic state summary for the metrics endpoint."""
        with self._cond:
            return {
                "queued": {lane: len(q)
                           for lane, q in self._queues.items()},
                "running": len(self._running),
                "tenants": {tenant: count
                            for tenant, count
                            in sorted(self._active.items())},
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        snap = self.snapshot()
        return (f"<JobScheduler queued={sum(snap['queued'].values())} "
                f"running={snap['running']}>")
