"""Thin synchronous client for the simulation service (stdlib only).

``http.client`` under the hood — one connection per call, matching the
server's ``Connection: close`` discipline.  Raises
:class:`~repro.service.jobs.ServiceError` with the HTTP status on any
error response, so CLI commands can map failures to exit codes without
parsing bodies.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator, Optional
from urllib.parse import urlsplit

from .jobs import ServiceError

__all__ = ["ServiceClient"]

#: job states that no longer change (mirrors the executor's)
_TERMINAL = frozenset({"done", "failed", "cancelled"})


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    ::

        client = ServiceClient("http://127.0.0.1:8421")
        record = client.submit({"kind": "sweep", "preset": ..., ...})
        record = client.wait(record["id"])
        rows = client.result(record["id"])["rows"]
    """

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _request(self, method: str, path: str,
                 payload: Optional[Any] = None) -> Any:
        conn = self._connect()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            data = json.loads(resp.read().decode() or "null")
            if resp.status >= 400:
                message = (data or {}).get("error", f"HTTP {resp.status}")
                raise ServiceError(resp.status, message)
            return data
        finally:
            conn.close()

    # -- API -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def submit(self, request: dict) -> dict:
        """Submit a job request; returns the job record."""
        return self._request("POST", "/v1/jobs", request)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished job's result document (409 until it is done)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> bool:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")["cancelled"]

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's NDJSON events live until the terminal one."""
        conn = self._connect()
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status >= 400:
                data = json.loads(resp.read().decode() or "{}")
                raise ServiceError(resp.status,
                                   data.get("error", f"HTTP {resp.status}"))
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def wait(self, job_id: str, poll_s: float = 0.2,
             timeout: Optional[float] = None) -> dict:
        """Poll until the job ends; returns the final record."""
        # Client-side polling deadline: host wall time by definition.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)  # repro: noqa[PY002]
        while True:
            record = self.status(job_id)
            if record["state"] in _TERMINAL:
                return record
            if deadline is not None \
                    and time.monotonic() > deadline:  # repro: noqa[PY002]
                raise ServiceError(
                    408, f"timed out waiting for job {job_id!r} "
                         f"(last state {record['state']!r})")
            time.sleep(poll_s)
