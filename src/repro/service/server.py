"""Async HTTP façade over the job manager (stdlib asyncio only).

A deliberately small HTTP/1.1 server — ``asyncio.start_server`` plus a
hand-rolled request parser, every response ``Connection: close`` — so
the simulation service needs nothing beyond the standard library:

=========  =====================================  ======================
method     path                                   body
=========  =====================================  ======================
GET        ``/v1/healthz``                        ``{"ok": true}``
GET        ``/v1/metrics``                        flat ``service.*`` map
POST       ``/v1/jobs``                           job record (submitted)
GET        ``/v1/jobs``                           ``{"jobs": [...]}``
GET        ``/v1/jobs/<id>``                      job record
GET        ``/v1/jobs/<id>/result``               rows / campaign
GET        ``/v1/jobs/<id>/events``               NDJSON event stream
POST       ``/v1/jobs/<id>/cancel``               ``{"cancelled": bool}``
=========  =====================================  ======================

Errors come back as ``{"error": message}`` with the status carried by
:class:`~repro.service.jobs.ServiceError` (400 malformed, 404 unknown
job, 409 result-not-ready, 429 quota).  The events endpoint streams
each job event as one JSON line, live, and closes after the terminal
state event — the HTTP analogue of ``Executor.stream``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

from .jobs import JobManager, ServiceError

__all__ = ["ServiceServer", "run_server"]

_MAX_BODY = 8 * 1024 * 1024
#: how often the event stream re-checks a quiet job for new events
_STREAM_POLL_S = 0.05


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()


class ServiceServer:
    """One job manager behind ``asyncio.start_server``.

    ``port=0`` binds an ephemeral port (the resolved one is in
    :attr:`port` / :attr:`url` after :meth:`start`) — tests and the CI
    smoke job rely on that.
    """

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ValueError) as exc:
                await self._respond(writer, 400, {"error": f"bad request: "
                                                           f"{exc}"})
                return
            try:
                await self._route(writer, method, path, body)
            except ServiceError as exc:
                await self._respond(writer, exc.status,
                                    {"error": exc.message})
            except Exception as exc:  # noqa: BLE001 - connection boundary
                await self._respond(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"})
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, Optional[Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ValueError("empty request line")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise ValueError(f"malformed request line {request_line!r}")
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > _MAX_BODY:
            raise ValueError(f"body too large ({length} bytes)")
        body = None
        if length:
            raw = await reader.readexactly(length)
            body = json.loads(raw.decode())
        return method.upper(), target.split("?", 1)[0], body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any) -> None:
        body = _json_bytes(payload)
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  429: "Too Many Requests",
                  500: "Internal Server Error"}.get(status, "Error")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode() + body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, body: Optional[Any]) -> None:
        parts = [p for p in path.split("/") if p]
        if parts[:1] != ["v1"]:
            raise ServiceError(404, f"no such path {path!r}")
        rest = parts[1:]
        if rest == ["healthz"] and method == "GET":
            await self._respond(writer, 200, {"ok": True})
        elif rest == ["metrics"] and method == "GET":
            await self._respond(writer, 200, self.manager.metrics())
        elif rest == ["jobs"] and method == "POST":
            record = self.manager.submit(body)
            await self._respond(writer, 200, record.to_dict())
        elif rest == ["jobs"] and method == "GET":
            await self._respond(writer, 200,
                                {"jobs": self.manager.list_jobs()})
        elif len(rest) == 2 and rest[0] == "jobs" and method == "GET":
            record = self.manager.record(rest[1])
            await self._respond(writer, 200, record.to_dict())
        elif len(rest) == 3 and rest[0] == "jobs" and rest[2] == "result" \
                and method == "GET":
            record = self.manager.record(rest[1])
            if record.state != "done":
                detail = f": {record.error}" if record.error else ""
                raise ServiceError(
                    409, f"job {rest[1]!r} is {record.state}{detail}")
            await self._respond(writer, 200, record.result_payload())
        elif len(rest) == 3 and rest[0] == "jobs" and rest[2] == "events" \
                and method == "GET":
            await self._stream_events(writer, rest[1])
        elif len(rest) == 3 and rest[0] == "jobs" and rest[2] == "cancel" \
                and method == "POST":
            cancelled = self.manager.cancel(rest[1])
            await self._respond(writer, 200, {"id": rest[1],
                                              "cancelled": cancelled})
        else:
            raise ServiceError(
                405 if rest[:1] == ["jobs"] else 404,
                f"cannot {method} {path}")

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job_id: str) -> None:
        record = self.manager.record(job_id)   # 404 before headers
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode())
        await writer.drain()
        sent = 0
        while True:
            events, terminal = record.events_since(sent)
            for event in events:
                writer.write((json.dumps(event, sort_keys=True)
                              + "\n").encode())
                sent += 1
            if events:
                await writer.drain()
            if terminal and not events:
                return
            if not events:
                await asyncio.sleep(_STREAM_POLL_S)


def run_server(manager: JobManager, host: str = "127.0.0.1",
               port: int = 0, *, announce=print) -> None:
    """Run the server until interrupted (the ``repro serve`` body).

    ``announce(url)`` is called once the socket is bound — the CLI
    prints the "listening on" line through it, and tests parse it to
    discover an ephemeral port.
    """
    async def _main() -> None:
        server = ServiceServer(manager, host, port)
        await server.start()
        announce(server.url)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        manager.close()
