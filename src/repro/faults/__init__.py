"""``repro.faults`` — deterministic fault injection for the comm model.

The robustness direction of the workbench: a declarative, seeded
:class:`FaultPlan` (link outages, packet drop/corruption, NIC stalls,
node pauses), a :class:`FaultInjector` the links/NICs/node drivers
consult at the model boundary (the kernel is untouched), and a
:class:`ReliableTransport` retransmit layer so architectures can be
evaluated on *surviving* faults, not just on fault-free latency.

Entry points: ``MultiNodeModel(machine, faults=plan)``,
``Workbench(machine, faults=plan)``, ``Sweep.run(runner, faults=...)``
and ``repro sweep/trace/stats --faults plan.json``.
"""

from .injector import FaultInjector
from .plan import (
    DownWindow,
    FaultPlan,
    LinkFault,
    NodeWindow,
    TransportConfig,
    as_fault_plan,
)
from .transport import DeliveryFailed, ReliableTransport

__all__ = [
    "DeliveryFailed",
    "DownWindow",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "NodeWindow",
    "ReliableTransport",
    "TransportConfig",
    "as_fault_plan",
]
