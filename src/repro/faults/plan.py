"""Declarative fault plans — *what* goes wrong, *when*, and *how often*.

A :class:`FaultPlan` is a JSON-serializable description of the faults
to inject into one communication-model run: link down/up windows,
per-link packet drop/corruption probabilities (drawn from a seeded,
per-link RNG stream so results are reproducible and order-independent),
NIC send-path stalls, and whole-node pauses.  The plan is pure data —
the :class:`~repro.faults.injector.FaultInjector` interprets it against
a concrete topology at simulation time.

Determinism contract: a simulation is a pure function of (machine,
workload, *fault plan*); :meth:`FaultPlan.digest` is the stable content
hash that extends the PR-1 result-cache key, and an *empty* plan is
normalized away entirely (:func:`as_fault_plan` returns ``None``) so a
fault-free run takes exactly the seed code path.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..core.config import ConfigError

__all__ = ["DownWindow", "FaultPlan", "LinkFault", "NodeWindow",
           "TransportConfig", "as_fault_plan"]


@dataclass
class LinkFault:
    """Per-crossing drop/corruption probabilities for matching links.

    ``src``/``dst`` of ``None`` are wildcards; when several rules match
    a link, the *last* matching rule wins (declaration order).  One
    uniform draw per packet crossing decides the outcome: drop on
    ``x < drop_prob``, corrupt on ``drop_prob <= x < drop_prob +
    corrupt_prob`` — so raising ``drop_prob`` with a fixed seed can
    only turn deliveries into drops, never the reverse (the
    monotonicity property the metamorphic tests rely on).
    """

    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    src: Optional[int] = None
    dst: Optional[int] = None


@dataclass
class DownWindow:
    """Link outage: matching links carry nothing in ``[start, end)``.

    Packets arriving at a down link wait for the window to end (the
    wire is dead, not the packet), so outages alone never lose data —
    they add latency and, under wormhole switching, hold paths.
    """

    start: float
    end: float
    src: Optional[int] = None
    dst: Optional[int] = None


@dataclass
class NodeWindow:
    """A per-node fault window (NIC stall or node pause).

    ``node`` of ``None`` matches every node.  As a NIC stall the window
    blocks the send path (send/asend wait it out before injecting); as
    a node pause it blocks the node's operation stream entirely.
    """

    start: float
    end: float
    node: Optional[int] = None


@dataclass
class TransportConfig:
    """Reliable-transport (ack/timeout/retransmit) parameters.

    The transport engages only when the plan is non-empty.  Each
    logical message is sent as physical copies: an unacknowledged copy
    is retransmitted after ``timeout_cycles`` (multiplied by
    ``backoff_factor`` per retry); after ``1 + max_retries`` attempts
    the sender falls back once to degraded routing (a path avoiding
    currently-suspect links) with a fresh budget, and only then raises
    :class:`~repro.faults.transport.DeliveryFailed`.
    """

    enabled: bool = True
    timeout_cycles: float = 20_000.0
    backoff_factor: float = 2.0
    max_retries: int = 4
    degraded_routing: bool = True


@dataclass
class FaultPlan:
    """A complete, serializable fault-injection schedule."""

    name: str = ""
    seed: int = 0
    link_faults: list[LinkFault] = field(default_factory=list)
    link_down: list[DownWindow] = field(default_factory=list)
    nic_stalls: list[NodeWindow] = field(default_factory=list)
    node_pauses: list[NodeWindow] = field(default_factory=list)
    transport: TransportConfig = field(default_factory=TransportConfig)

    # -- validation --------------------------------------------------------

    def validate(self) -> "FaultPlan":
        """Raise :class:`~repro.core.config.ConfigError` on a bad plan."""
        for rule in self.link_faults:
            for label, p in (("drop_prob", rule.drop_prob),
                             ("corrupt_prob", rule.corrupt_prob)):
                if not 0.0 <= p <= 1.0:
                    raise ConfigError(f"link fault {label} {p} not in [0, 1]")
            if rule.drop_prob + rule.corrupt_prob > 1.0:
                raise ConfigError(
                    f"link fault drop_prob + corrupt_prob "
                    f"{rule.drop_prob + rule.corrupt_prob} exceeds 1.0")
        for w in self.link_down:
            if w.start < 0 or w.end < w.start:
                raise ConfigError(
                    f"down window [{w.start}, {w.end}) is not a valid "
                    f"non-negative interval")
        for w in (*self.nic_stalls, *self.node_pauses):
            if w.start < 0 or w.end < w.start:
                raise ConfigError(
                    f"node window [{w.start}, {w.end}) is not a valid "
                    f"non-negative interval")
        t = self.transport
        if t.timeout_cycles <= 0:
            raise ConfigError(
                f"transport timeout_cycles must be > 0, got "
                f"{t.timeout_cycles}")
        if t.backoff_factor < 1.0:
            raise ConfigError(
                f"transport backoff_factor must be >= 1.0, got "
                f"{t.backoff_factor}")
        if t.max_retries < 0:
            raise ConfigError(
                f"transport max_retries must be >= 0, got {t.max_retries}")
        return self

    def is_empty(self) -> bool:
        """True when the plan injects nothing (no fault has any effect).

        An empty plan is behaviourally identical to no plan at all —
        :func:`as_fault_plan` normalizes it to ``None`` so the model
        takes the exact fault-free code path (the differential harness
        asserts bit-identical output).
        """
        if any(r.drop_prob > 0.0 or r.corrupt_prob > 0.0
               for r in self.link_faults):
            return False
        return not any(w.end > w.start for w in
                       (*self.link_down, *self.nic_stalls,
                        *self.node_pauses))

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "link_faults": [asdict(r) for r in self.link_faults],
            "link_down": [asdict(w) for w in self.link_down],
            "nic_stalls": [asdict(w) for w in self.nic_stalls],
            "node_pauses": [asdict(w) for w in self.node_pauses],
            "transport": asdict(self.transport),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {"name", "seed", "link_faults", "link_down", "nic_stalls",
                 "node_pauses", "transport"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown fault-plan field(s): {sorted(unknown)}")
        return cls(
            name=data.get("name", ""),
            seed=int(data.get("seed", 0)),
            link_faults=[LinkFault(**r)
                         for r in data.get("link_faults", [])],
            link_down=[DownWindow(**w) for w in data.get("link_down", [])],
            nic_stalls=[NodeWindow(**w)
                        for w in data.get("nic_stalls", [])],
            node_pauses=[NodeWindow(**w)
                         for w in data.get("node_pauses", [])],
            transport=TransportConfig(**data.get("transport", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigError(f"cannot read fault plan {path}: {exc}") \
                from None
        return cls.from_json(text)

    def digest(self) -> str:
        """Stable content hash of the plan's *behaviour*.

        ``name`` is a display label and excluded, so relabelling a plan
        does not invalidate cached sweep rows keyed on this digest.
        """
        payload = {k: v for k, v in self.to_dict().items() if k != "name"}
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    # -- derivation ---------------------------------------------------------

    def scaled(self, factor: float, name: str = "") -> "FaultPlan":
        """A copy with drop/corrupt probabilities scaled by ``factor``
        — the natural fault-severity sweep axis:
        ``sweep.run(runner, faults=[plan.scaled(f) for f in (0, 1, 2)])``.

        The pair is clamped *jointly*: ``drop_prob`` saturates at 1.0
        first and ``corrupt_prob`` takes at most the remainder, so every
        rung keeps ``drop_prob + corrupt_prob <= 1.0`` (the one-draw
        outcome partition :class:`LinkFault` documents and
        :meth:`validate` enforces) while ``drop_prob`` stays monotone in
        ``factor`` — raising severity can only turn deliveries into
        drops, never the reverse.

        ``factor == 0`` is the fault-free baseline rung: *all* fault
        content (windows included) is cleared, so the plan normalizes to
        ``None`` via :func:`as_fault_plan` and the rung takes the seed
        code path bit-for-bit, sharing its cache key with fault-free
        runs.
        """
        if factor < 0:
            raise ConfigError(f"scale factor must be >= 0, got {factor}")
        plan = copy.deepcopy(self)
        if factor == 0:
            plan.link_faults = []
            plan.link_down = []
            plan.nic_stalls = []
            plan.node_pauses = []
        for rule in plan.link_faults:
            rule.drop_prob = min(1.0, rule.drop_prob * factor)
            rule.corrupt_prob = min(1.0 - rule.drop_prob,
                                    rule.corrupt_prob * factor)
        plan.name = name or (f"{self.name or 'plan'}x{factor:g}")
        return plan


def as_fault_plan(faults: Any) -> Optional[FaultPlan]:
    """Normalize a ``faults=`` argument to a validated plan or ``None``.

    Accepts ``None``, a :class:`FaultPlan`, a plan dict, or a path to a
    plan JSON file.  Empty plans normalize to ``None`` — the model then
    builds no injector at all, keeping fault-free runs on the seed code
    path (zero overhead when off).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        plan = faults
    elif isinstance(faults, dict):
        plan = FaultPlan.from_dict(faults)
    elif isinstance(faults, (str, Path)):
        plan = FaultPlan.load(faults)
    else:
        raise ConfigError(
            f"cannot interpret {type(faults).__name__} as a fault plan "
            f"(expected FaultPlan, dict, path, or None)")
    plan.validate()
    return None if plan.is_empty() else plan
