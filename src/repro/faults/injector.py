"""The fault injector — a :class:`FaultPlan` interpreted against one run.

The injector sits at the link/NIC boundary of the communication model
(DESIGN.md decision 12): the switching engines consult it once per
packet per link crossing, the NICs consult it on every send, and the
node drivers consult it once per operation.  The Pearl kernel itself is
untouched — faults are ordinary model behaviour (waits, early returns,
flag flips), not scheduler magic.

Randomness: one ``numpy`` Generator per directed link, seeded
``[plan.seed, src, dst]``, so a link's drop/corrupt stream depends only
on the plan seed and the link identity — never on global draw order.
That makes results reproducible across processes and makes the drop
decision monotone in ``drop_prob`` for a fixed seed (the metamorphic
tests' central property).  Links whose effective probabilities are both
zero consume no draws at all.
"""

from __future__ import annotations

import numpy as np

from ..topology import Topology
from .plan import FaultPlan, NodeWindow

__all__ = ["FaultInjector"]


def _window_until(windows: list[NodeWindow], node: int, now: float) -> float:
    """Latest ``end`` over windows matching ``node`` active at ``now``
    (``now`` itself when none is active)."""
    until = now
    for w in windows:
        if (w.node is None or w.node == node) and w.start <= now < w.end:
            until = max(until, w.end)
    return until


class FaultInjector:
    """Stateful interpreter of one :class:`FaultPlan` for one simulation.

    All decisions are pure functions of (plan, link/node identity, and
    the per-link RNG stream position); the injector also owns the
    ``faults.*`` counters surfaced through the metric registry and
    ``CommResult.fault_summary``.
    """

    def __init__(self, plan: FaultPlan, topo: Topology, sim) -> None:
        self.plan = plan
        self.topo = topo
        self.sim = sim
        self._rngs: dict[tuple[int, int], np.random.Generator] = {}
        self._probs: dict[tuple[int, int], tuple[float, float]] = {}
        self.dropped = 0
        self.corrupted = 0
        self.dropped_by_link: dict[str, int] = {}
        self.down_waits = 0
        self.down_wait_cycles = 0.0
        self.nic_stall_count = 0
        self.nic_stall_cycles = 0.0
        self.node_pause_count = 0
        self.node_pause_cycles = 0.0

    # -- link drop/corrupt --------------------------------------------------

    def _link_probs(self, u: int, v: int) -> tuple[float, float]:
        """Effective (drop, corrupt) for link (u, v): last matching
        :class:`~repro.faults.plan.LinkFault` rule wins."""
        cached = self._probs.get((u, v))
        if cached is not None:
            return cached
        drop = corrupt = 0.0
        for rule in self.plan.link_faults:
            if ((rule.src is None or rule.src == u)
                    and (rule.dst is None or rule.dst == v)):
                drop, corrupt = rule.drop_prob, rule.corrupt_prob
        self._probs[(u, v)] = (drop, corrupt)
        return drop, corrupt

    def _rng(self, u: int, v: int) -> np.random.Generator:
        rng = self._rngs.get((u, v))
        if rng is None:
            rng = np.random.default_rng([self.plan.seed, u, v])
            self._rngs[(u, v)] = rng
        return rng

    def crossing(self, u: int, v: int, pkt) -> str:
        """Fault verdict for one packet crossing link (u, v):
        ``"ok"``, ``"drop"``, or ``"corrupt"`` (counters updated)."""
        drop, corrupt = self._link_probs(u, v)
        if drop == 0.0 and corrupt == 0.0:
            return "ok"
        x = float(self._rng(u, v).random())
        if x < drop:
            self.dropped += 1
            key = f"{u}->{v}"
            self.dropped_by_link[key] = self.dropped_by_link.get(key, 0) + 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.fault(self.sim.now, "drop", f"link{u}->{v}",
                             {"message": pkt.message.id,
                              "packet": pkt.index})
            return "drop"
        if x < drop + corrupt:
            pkt.message.corrupted = True
            self.corrupted += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.fault(self.sim.now, "corrupt", f"link{u}->{v}",
                             {"message": pkt.message.id,
                              "packet": pkt.index})
            return "corrupt"
        return "ok"

    # -- link down windows --------------------------------------------------

    def down_delay(self, u: int, v: int, now: float) -> float:
        """Cycles until link (u, v) comes back up (0.0 when it is up)."""
        until = now
        for w in self.plan.link_down:
            if ((w.src is None or w.src == u)
                    and (w.dst is None or w.dst == v)
                    and w.start <= now < w.end):
                until = max(until, w.end)
        return until - now

    def record_down_wait(self, u: int, v: int, delay: float, pkt) -> None:
        self.down_waits += 1
        self.down_wait_cycles += delay
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.fault(self.sim.now, "down_wait", f"link{u}->{v}",
                         {"message": pkt.message.id, "delay": delay})

    # -- NIC stalls and node pauses ----------------------------------------

    def stall(self, node: int):
        """Generator: wait out any active NIC-stall window for ``node``."""
        sim = self.sim
        while True:
            until = _window_until(self.plan.nic_stalls, node, sim.now)
            if until <= sim.now:
                return
            delay = until - sim.now
            self.nic_stall_count += 1
            self.nic_stall_cycles += delay
            tracer = sim.tracer
            if tracer is not None:
                tracer.fault(sim.now, "nic_stall", f"node{node}",
                             {"until": until})
            yield delay

    def pause(self, node: int):
        """Generator: wait out any active pause window for ``node``."""
        sim = self.sim
        while True:
            until = _window_until(self.plan.node_pauses, node, sim.now)
            if until <= sim.now:
                return
            delay = until - sim.now
            self.node_pause_count += 1
            self.node_pause_cycles += delay
            tracer = sim.tracer
            if tracer is not None:
                tracer.fault(sim.now, "node_pause", f"node{node}",
                             {"until": until})
            yield delay

    # -- degraded-routing support ------------------------------------------

    def suspect_links(self, now: float) -> set[tuple[int, int]]:
        """Links a degraded route should avoid: down right now, or with
        an effective drop probability of 1.0 (a dead wire)."""
        out: set[tuple[int, int]] = set()
        for (u, v) in self.topo.links():
            if self.down_delay(u, v, now) > 0.0:
                out.add((u, v))
            elif self._link_probs(u, v)[0] >= 1.0:
                out.add((u, v))
        return out

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict:
        return {
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "dropped_by_link": dict(sorted(self.dropped_by_link.items())),
            "down_waits": self.down_waits,
            "down_wait_cycles": self.down_wait_cycles,
            "nic_stalls": self.nic_stall_count,
            "nic_stall_cycles": self.nic_stall_cycles,
            "node_pauses": self.node_pause_count,
            "node_pause_cycles": self.node_pause_cycles,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultInjector plan={self.plan.name or 'unnamed'!r} "
                f"dropped={self.dropped} corrupted={self.corrupted}>")
