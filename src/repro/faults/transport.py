"""Reliable transport — ack/timeout/retransmit over a lossy network.

With faults injected, the raw switching engines may drop or corrupt
packets; :class:`ReliableTransport` is the protocol layer that makes
message delivery survive it.  Each *logical* message is carried by one
or more *physical* attempt copies:

* an attempt copy is injected into the switching engine and its
  delivery acknowledged through the copy's ``on_deliver`` hook (the
  ack path is instantaneous, matching the NIC's Table-1 simplification);
* an unacknowledged attempt is retransmitted after a timeout that grows
  by ``backoff_factor`` per retry;
* a copy that arrives corrupted is discarded (checksum model) and the
  sender retransmits immediately;
* when the retry budget (``1 + max_retries`` attempts) is exhausted the
  sender falls back **once** to degraded routing — a shortest path
  avoiding currently-suspect links — with a fresh budget;
* only when that fails too does the sender raise
  :class:`DeliveryFailed`, which the model surfaces with the partial
  :class:`~repro.commmodel.network.CommResult` attached.

The logical message is delivered to the application exactly once, on
the first acknowledged attempt; late duplicate copies are absorbed
silently (their acks find the sender process already gone).
"""

from __future__ import annotations

from ..commmodel.message import Message
from ..pearl import Event, TallyMonitor
from .plan import FaultPlan

__all__ = ["DeliveryFailed", "ReliableTransport"]


class DeliveryFailed(RuntimeError):
    """A message exhausted its retry budget (including the degraded-
    routing fallback) and could not be delivered.

    For synchronous sends this propagates out of the blocked
    ``NIC.send``; :meth:`MultiNodeModel.run` attaches the partial
    simulation result as ``err.result`` before re-raising.  Failed
    asynchronous sends are only counted (nobody is blocked on them).
    """

    def __init__(self, src: int, dst: int, message_id: int,
                 attempts: int) -> None:
        super().__init__(
            f"message {message_id} ({src}->{dst}) undeliverable after "
            f"{attempts} attempt(s)")
        self.src = src
        self.dst = dst
        self.message_id = message_id
        self.attempts = attempts
        self.result = None

    def partial_row(self) -> dict:
        """Fault-metric columns salvaged from the partial result.

        Sweep/campaign error rows carry the same ``dropped`` /
        ``retransmissions`` / ``delivery_failed`` columns as successful
        faulted rows (``repro.parallel.execute_variant`` merges this
        dict into the ``on_error="capture"`` row), so row reductions
        never have to special-case failed variants.  Without a partial
        result the failure itself is still counted.
        """
        res = self.result
        if res is None or res.fault_summary is None:
            return {"dropped": 0, "retransmissions": 0,
                    "delivery_failed": 1}
        return {
            "dropped": res.fault_summary.get("dropped", 0),
            "retransmissions": res.retransmissions,
            "delivery_failed": res.delivery_failures,
        }


class ReliableTransport:
    """Per-message retransmit state machine between the NICs and the
    switching engine.

    ``deliver_app(msg)`` hands an acknowledged logical message to the
    application side (NIC arrival + sync-sender completion);
    ``fail_app(msg, err)`` unblocks a synchronous sender with the
    failure instead.
    """

    def __init__(self, sim, engine, injector, plan: FaultPlan, topo,
                 deliver_app, fail_app) -> None:
        self.sim = sim
        self.engine = engine
        self.injector = injector
        self.cfg = plan.transport
        self.topo = topo
        self.deliver_app = deliver_app
        self.fail_app = fail_app
        self.attempts = 0
        self.retransmissions = 0
        self.delivered = 0
        self.delivered_with_retry = 0
        self.delivery_failed = 0
        self.fallbacks = 0
        self.corrupt_discards = 0
        self.retries = TallyMonitor("retries")
        self.e2e_latency = TallyMonitor("transport_latency")
        #: (message id, src, dst, delivery time, attempts) in delivery
        #: order — the metamorphic identity tests compare this log.
        self.delivery_log: list[tuple[int, int, int, float, int]] = []
        self.failures: list[dict] = []

    # -- NIC-facing API -----------------------------------------------------

    def inject(self, msg: Message) -> None:
        """Accept one logical message; a sender process carries it."""
        msg.t_inject = self.sim.now
        self.sim.process(self._sender(msg), name=f"xport{msg.id}")

    # -- the per-message sender process -------------------------------------

    def _sender(self, msg: Message):
        sim = self.sim
        cfg = self.cfg
        outstanding: list[Event] = []
        timeout = cfg.timeout_cycles
        budget = 1 + cfg.max_retries
        attempts = 0
        path = None
        fallback_used = False
        while True:
            if attempts == budget:
                alt = None
                if cfg.degraded_routing and not fallback_used:
                    alt = self._degraded_path(msg)
                if alt is None:
                    self._fail(msg, attempts)
                    return
                fallback_used = True
                path = alt
                budget += 1 + cfg.max_retries
                timeout = cfg.timeout_cycles
                self.fallbacks += 1
                tracer = sim.tracer
                if tracer is not None:
                    tracer.fault(sim.now, "fallback_route", f"node{msg.src}",
                                 {"message": msg.id, "path": list(alt)})
            attempts += 1
            if attempts > 1:
                self.retransmissions += 1
                tracer = sim.tracer
                if tracer is not None:
                    tracer.fault(sim.now, "retransmit", f"node{msg.src}",
                                 {"message": msg.id, "attempt": attempts})
            phys = Message(msg.src, msg.dst, msg.size, synchronous=False)
            phys.internal = True
            done = Event(sim, f"xport{msg.id}.attempt{attempts}")
            phys.on_deliver = done.trigger
            outstanding.append(done)
            self.attempts += 1
            self.engine.inject(phys, path=path)
            timer = sim.timer(timeout, name=f"xport{msg.id}.timer{attempts}")
            while True:
                choice = sim.any_of([*outstanding, timer.event],
                                    name=f"xport{msg.id}.wait")
                idx, value = yield choice
                if idx == len(outstanding):
                    break                  # timeout: retransmit
                outstanding.pop(idx)
                if value.corrupted:
                    # Checksum failure: discard the copy and resend now.
                    self.corrupt_discards += 1
                    timer.cancel()
                    break
                timer.cancel()
                self._complete(msg, attempts)
                return
            timeout *= cfg.backoff_factor

    def _degraded_path(self, msg: Message):
        avoid = self.injector.suspect_links(self.sim.now)
        if not avoid:
            return None
        return self.topo.shortest_path_avoiding(msg.src, msg.dst, avoid)

    def _complete(self, msg: Message, attempts: int) -> None:
        msg.t_deliver = self.sim.now
        self.delivered += 1
        if attempts > 1:
            self.delivered_with_retry += 1
        self.retries.record(attempts - 1)
        self.e2e_latency.record(msg.latency)
        self.delivery_log.append(
            (msg.id, msg.src, msg.dst, self.sim.now, attempts))
        self.deliver_app(msg)

    def _fail(self, msg: Message, attempts: int) -> None:
        self.delivery_failed += 1
        self.retries.record(attempts - 1)
        self.failures.append({
            "message": msg.id, "src": msg.src, "dst": msg.dst,
            "attempts": attempts, "time": self.sim.now,
        })
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.fault(self.sim.now, "delivery_failed", f"node{msg.src}",
                         {"message": msg.id, "dst": msg.dst,
                          "attempts": attempts})
        err = DeliveryFailed(msg.src, msg.dst, msg.id, attempts)
        self.fail_app(msg, err)

    # -- reporting ----------------------------------------------------------

    def summary(self) -> dict:
        return {
            "attempts": self.attempts,
            "retransmissions": self.retransmissions,
            "delivered": self.delivered,
            "delivered_with_retry": self.delivered_with_retry,
            "delivery_failed": self.delivery_failed,
            "fallbacks": self.fallbacks,
            "corrupt_discards": self.corrupt_discards,
            "retries": self.retries.summary(),
            "latency": self.e2e_latency.summary(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ReliableTransport delivered={self.delivered} "
                f"retransmissions={self.retransmissions} "
                f"failed={self.delivery_failed}>")
