"""Interconnect topologies for the multi-node communication model.

"The nodes are connected in a topology reflecting the physical
interconnect of the multicomputer" (Section 4.2).  A
:class:`Topology` is a directed graph over nodes ``0..n-1`` whose
directed edges are the (full-duplex → two opposite unidirectional)
physical links; routers use it for neighbour enumeration and the
routing functions use the coordinate systems it exposes.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

from ..core.config import ConfigError, TopologyConfig

__all__ = ["Topology", "build_topology", "node_count", "mesh",
           "torus", "hypercube", "ring", "star", "tree", "fat_tree",
           "full"]


class Topology:
    """An interconnect graph with optional node coordinates.

    Attributes
    ----------
    kind:
        Topology family name ("mesh", "torus", ...).
    n:
        Number of nodes (numbered ``0..n-1``).
    coords:
        Per-node coordinate tuples for mesh/torus (used by
        dimension-order routing); ``None`` otherwise.
    dims:
        The extents the topology was built from.
    """

    def __init__(self, kind: str, n: int,
                 edges: Sequence[tuple[int, int]],
                 coords: Optional[list[tuple[int, ...]]] = None,
                 dims: tuple[int, ...] = (),
                 n_endpoints: Optional[int] = None,
                 capacity: Optional[dict] = None) -> None:
        self.kind = kind
        self.n = n
        self.dims = dims
        self.coords = coords
        # Endpoints are the compute nodes (always numbered 0..P-1);
        # nodes P..n-1 are pure switches (multistage interconnects,
        # fat-tree internal nodes).  Default: every node is an endpoint.
        self.n_endpoints = n if n_endpoints is None else n_endpoints
        if not 0 < self.n_endpoints <= n:
            raise ConfigError(
                f"n_endpoints {n_endpoints} out of range for n={n}")
        # Per-undirected-link capacity multiplier (fat links); links
        # absent from the map have multiplier 1.0.
        self._capacity = dict(capacity) if capacity else {}
        self._adj: list[list[int]] = [[] for _ in range(n)]
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            if u == v:
                raise ConfigError(f"self-loop on node {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise ConfigError(f"edge ({u},{v}) out of range for n={n}")
            for a, b in ((u, v), (v, u)):
                if (a, b) not in seen:
                    seen.add((a, b))
                    self._adj[a].append(b)
        for nbrs in self._adj:
            nbrs.sort()

    # -- graph queries ------------------------------------------------------

    def neighbors(self, node: int) -> list[int]:
        """Neighbours of ``node`` in ascending order (stable port order)."""
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def links(self) -> Iterator[tuple[int, int]]:
        """All unidirectional links (u, v)."""
        for u in range(self.n):
            for v in self._adj[u]:
                yield (u, v)

    @property
    def n_links(self) -> int:
        return sum(len(a) for a in self._adj)

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.n

    def shortest_path_lengths(self, source: int) -> list[int]:
        """BFS hop counts from ``source`` (unreachable = -1)."""
        dist = [-1] * self.n
        dist[source] = 0
        frontier = [source]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
            frontier = nxt
        return dist

    def shortest_path_avoiding(self, src: int, dst: int,
                               avoid) -> Optional[list[int]]:
        """BFS shortest path ``src -> dst`` using no directed link in
        ``avoid`` (a set of ``(u, v)`` pairs); ``None`` when the pruned
        graph disconnects the pair.  Neighbour order is ascending, so
        the chosen path is deterministic — the degraded-routing
        fallback of :mod:`repro.faults` depends on that.
        """
        if src == dst:
            return [src]
        avoid = frozenset(avoid)
        prev: dict[int, int] = {src: -1}
        frontier = [src]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self._adj[u]:
                    if v in prev or (u, v) in avoid:
                        continue
                    prev[v] = u
                    if v == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(prev[path[-1]])
                        path.reverse()
                        return path
                    nxt.append(v)
            frontier = nxt
        return None

    def diameter(self) -> int:
        """Longest shortest path over all pairs (graph diameter)."""
        best = 0
        for s in range(self.n):
            d = self.shortest_path_lengths(s)
            m = max(d)
            if -1 in d:
                raise ConfigError("diameter undefined: topology disconnected")
            best = max(best, m)
        return best

    @property
    def has_switches(self) -> bool:
        return self.n_endpoints < self.n

    def is_endpoint(self, node: int) -> bool:
        return node < self.n_endpoints

    def link_capacity(self, u: int, v: int) -> float:
        """Bandwidth multiplier of link (u, v) (1.0 unless fat)."""
        return self._capacity.get((u, v) if u < v else (v, u), 1.0)

    def is_wrap_edge(self, u: int, v: int) -> bool:
        """True if (u, v) is a wraparound link of a ring or torus.

        Wrap links close the dimensional cycles that make wormhole
        routing deadlock-prone; the switching engine switches packets to
        the escape virtual channel when they cross one (dateline rule).
        """
        if self.kind == "ring":
            return abs(u - v) == self.n - 1 and self.n > 2
        if self.kind == "torus" and self.coords is not None:
            cu, cv = self.coords[u], self.coords[v]
            for axis, extent in enumerate(self.dims):
                if extent > 2 and abs(cu[axis] - cv[axis]) == extent - 1:
                    return True
        return False

    def __repr__(self) -> str:
        return (f"<Topology {self.kind} n={self.n} links={self.n_links}"
                + (f" dims={self.dims}" if self.dims else "") + ">")


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def mesh(*dims: int) -> Topology:
    """A k-dimensional mesh with the given extents (no wraparound)."""
    return _grid("mesh", dims, wrap=False)


def torus(*dims: int) -> Topology:
    """A k-dimensional torus (mesh with wraparound links)."""
    return _grid("torus", dims, wrap=True)


def _grid(kind: str, dims: Sequence[int], wrap: bool) -> Topology:
    if not dims or any(d < 1 for d in dims):
        raise ConfigError(f"bad {kind} dims {tuple(dims)}")
    coords = list(itertools.product(*(range(d) for d in dims)))
    index = {c: i for i, c in enumerate(coords)}
    n = len(coords)
    edges = []
    for c in coords:
        for axis, extent in enumerate(dims):
            if extent == 1:
                continue
            up = list(c)
            up[axis] += 1
            if up[axis] >= extent:
                if not wrap or extent == 2:
                    # extent-2 wraparound would duplicate the mesh edge
                    continue
                up[axis] = 0
            edges.append((index[c], index[tuple(up)]))
    return Topology(kind, n, edges, coords=coords, dims=tuple(dims))


def hypercube(dimension: int) -> Topology:
    """A binary d-cube: 2**d nodes, neighbours differ in one address bit."""
    if dimension < 0:
        raise ConfigError(f"bad hypercube dimension {dimension}")
    n = 1 << dimension
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dimension)
             if u < (u ^ (1 << b))]
    coords = [tuple((u >> b) & 1 for b in range(dimension)) for u in range(n)]
    return Topology("hypercube", n, edges, coords=coords, dims=(dimension,))


def ring(n: int) -> Topology:
    """A bidirectional ring of ``n`` nodes."""
    if n < 1:
        raise ConfigError(f"bad ring size {n}")
    if n == 1:
        return Topology("ring", 1, [], dims=(1,))
    if n == 2:
        return Topology("ring", 2, [(0, 1)], dims=(2,))
    return Topology("ring", n, [(i, (i + 1) % n) for i in range(n)], dims=(n,))


def star(n: int) -> Topology:
    """Node 0 is the hub; all others connect only to it."""
    if n < 1:
        raise ConfigError(f"bad star size {n}")
    return Topology("star", n, [(0, i) for i in range(1, n)], dims=(n,))


def tree(arity: int, height: int) -> Topology:
    """A complete ``arity``-ary tree of the given ``height`` (root = 0).

    ``height`` counts edge levels: height 0 is a single node.
    """
    if arity < 1 or height < 0:
        raise ConfigError(f"bad tree shape arity={arity} height={height}")
    # Number of nodes in a complete arity-ary tree of given height.
    n = sum(arity ** h for h in range(height + 1))
    edges = []
    for parent in range(n):
        for k in range(arity):
            child = parent * arity + 1 + k
            if child < n:
                edges.append((parent, child))
    return Topology("tree", n, edges, dims=(arity, height))


def full(n: int) -> Topology:
    """A fully-connected (crossbar-like) interconnect."""
    if n < 1:
        raise ConfigError(f"bad full size {n}")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Topology("full", n, edges, dims=(n,))


def fat_tree(arity: int, height: int) -> Topology:
    """A fat-tree multistage interconnect (CM-5 style).

    Compute endpoints are the ``arity**height`` leaves (nodes
    ``0..P-1``); internal tree nodes are pure switches.  Upward links
    get a capacity multiplier of ``arity**level`` (level 1 just above
    the leaves), so total bandwidth is preserved toward the root — the
    defining fat-tree property giving full bisection bandwidth.
    """
    if arity < 2 or height < 1:
        raise ConfigError(
            f"bad fat-tree shape arity={arity} height={height}")
    n_leaves = arity ** height
    # Number the leaves 0..P-1, then switches level by level upward.
    n_switches = sum(arity ** h for h in range(height))
    n = n_leaves + n_switches
    edges = []
    capacity: dict[tuple[int, int], float] = {}

    # switch_id(level, index): level 1 = just above leaves (arity**(h-1)
    # switches) ... level == height is the single root.
    offsets = {}
    cursor = n_leaves
    for level in range(1, height + 1):
        offsets[level] = cursor
        cursor += arity ** (height - level)

    def switch_id(level: int, index: int) -> int:
        return offsets[level] + index

    # Leaves to level-1 switches.
    for leaf in range(n_leaves):
        parent = switch_id(1, leaf // arity)
        edges.append((leaf, parent))
        capacity[(min(leaf, parent), max(leaf, parent))] = 1.0
    # Switch levels upward, with fattening links.
    for level in range(1, height):
        n_this = arity ** (height - level)
        for index in range(n_this):
            child = switch_id(level, index)
            parent = switch_id(level + 1, index // arity)
            edges.append((child, parent))
            capacity[(min(child, parent), max(child, parent))] = \
                float(arity ** level)
    return Topology("fat_tree", n, edges, dims=(arity, height),
                    n_endpoints=n_leaves, capacity=capacity)


def build_topology(cfg: TopologyConfig) -> Topology:
    """Instantiate a :class:`Topology` from its configuration."""
    kind, dims = cfg.kind, tuple(cfg.dims)
    if kind == "mesh":
        return mesh(*dims)
    if kind == "torus":
        return torus(*dims)
    if kind == "hypercube":
        return hypercube(dims[0])
    if kind == "ring":
        return ring(dims[0])
    if kind == "star":
        return star(dims[0])
    if kind == "tree":
        if len(dims) != 2:
            raise ConfigError("tree topology needs dims=(arity, height)")
        return tree(dims[0], dims[1])
    if kind == "fat_tree":
        if len(dims) != 2:
            raise ConfigError("fat_tree topology needs dims=(arity, height)")
        return fat_tree(dims[0], dims[1])
    if kind == "full":
        return full(dims[0])
    raise ConfigError(f"unknown topology kind {kind!r}")


def node_count(cfg: TopologyConfig) -> int:
    """Number of nodes a :class:`TopologyConfig` describes (cheap)."""
    kind, dims = cfg.kind, tuple(cfg.dims)
    if kind in ("mesh", "torus"):
        n = 1
        for d in dims:
            n *= d
        return n
    if kind == "hypercube":
        return 1 << dims[0]
    if kind == "tree":
        arity, height = dims
        return sum(arity ** h for h in range(height + 1))
    if kind == "fat_tree":
        # Only the leaves are compute endpoints.
        return dims[0] ** dims[1]
    return dims[0]
