"""``repro.topology`` — physical interconnect shapes (Fig 3b).

Builders for the common multicomputer topologies plus the generic
:class:`Topology` graph the routers and routing functions consume.
"""

from .topologies import (
    Topology,
    build_topology,
    fat_tree,
    full,
    hypercube,
    mesh,
    node_count,
    ring,
    star,
    torus,
    tree,
)

__all__ = [
    "Topology", "build_topology", "fat_tree", "full", "hypercube", "mesh",
    "node_count", "ring", "star", "torus", "tree",
]
