"""Statistics monitors — the measurement side of the workbench.

Mermaid couples its architecture models to "a suite of tools ... to
visualize and analyze the simulation output".  Monitors are the data
source for those tools: they accumulate either *tallied* samples
(message latencies, queue waits) or *time-weighted* level curves
(queue length, link occupancy) while the simulation runs.
"""

from __future__ import annotations

import math
from typing import Optional

from .kernel import Simulator

__all__ = ["TallyMonitor", "TimeWeightedMonitor"]


class TallyMonitor:
    """Accumulates independent samples; O(1) memory (Welford variance).

    Optionally keeps the raw samples (``keep_samples=True``) for
    histogram / percentile post-processing by the analysis tools.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "total",
                 "samples")

    def __init__(self, name: str = "", keep_samples: bool = False) -> None:
        self.name = name or "tally"
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0
        self.samples: Optional[list[float]] = [] if keep_samples else None

    def record(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.samples is not None:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "TallyMonitor") -> None:
        """Fold another monitor's samples into this one (parallel merge).

        Merging into an empty monitor behaves like a copy: if ``other``
        kept raw samples, they are adopted even when ``self`` was not
        constructed with ``keep_samples=True``.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            if other.samples is not None:
                if self.samples is None:
                    self.samples = list(other.samples)
                else:
                    self.samples.extend(other.samples)
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        n = n1 + n2
        self._mean += delta * n2 / n
        self._m2 += other._m2 + delta * delta * n1 * n2 / n
        self.count = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.samples is not None and other.samples is not None:
            self.samples.extend(other.samples)

    def summary(self) -> dict:
        """A plain-dict snapshot for reports."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TallyMonitor {self.name!r} n={self.count} "
                f"mean={self.mean:.4g}>")


class TimeWeightedMonitor:
    """Tracks a piecewise-constant level over simulated time.

    ``record(level)`` states that the monitored quantity holds ``level``
    from the current simulation time until the next ``record``.  The
    time-average is then the integral divided by the observation span.
    """

    __slots__ = ("sim", "name", "_level", "_last_time", "_area", "_start",
                 "min", "max", "changes")

    def __init__(self, sim: Simulator, name: str = "",
                 initial: float = 0.0) -> None:
        self.sim = sim
        self.name = name or "level"
        self._level = initial
        self._last_time = sim.now
        self._start = sim.now
        self._area = 0.0
        self.min = initial
        self.max = initial
        self.changes = 0

    def record(self, level: float) -> None:
        now = self.sim.now
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        self.changes += 1
        if level < self.min:
            self.min = level
        if level > self.max:
            self.max = level

    def add(self, delta: float) -> None:
        """Convenience: record current level + ``delta``."""
        self.record(self._level + delta)

    @property
    def level(self) -> float:
        return self._level

    def time_average(self, horizon: Optional[float] = None) -> float:
        """Time-weighted mean level over [start, horizon or now].

        Supported horizons are ``>= `` the time of the last ``record``:
        the monitor only keeps the integral up to that point plus the
        *current* level, so an earlier horizon would back-extrapolate
        the current level over spans where older levels actually held
        (producing wrong, even out-of-range, averages).  Earlier
        horizons therefore clamp to the last record time.
        """
        end = self.sim.now if horizon is None else horizon
        if end < self._last_time:
            end = self._last_time
        span = end - self._start
        if span <= 0:
            return self._level
        area = self._area + self._level * (end - self._last_time)
        return area / span

    def summary(self) -> dict:
        return {
            "name": self.name,
            "time_average": self.time_average(),
            "min": self.min,
            "max": self.max,
            "changes": self.changes,
            "current": self._level,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TimeWeightedMonitor {self.name!r} level={self._level:.4g} "
                f"avg={self.time_average():.4g}>")
