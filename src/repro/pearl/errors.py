"""Exception hierarchy for the Pearl simulation kernel.

Pearl was the object-oriented simulation language used by Mermaid to
express its architecture models.  This package reimplements Pearl's
modelling primitives (simulation objects, virtual time, synchronous and
asynchronous messages) as a generator-based discrete-event kernel; the
exceptions below are the kernel's failure vocabulary.
"""

from __future__ import annotations


class PearlError(Exception):
    """Base class for all kernel errors."""


class SimulationError(PearlError):
    """A structural error in the simulation (bad yield, dead process, ...)."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Carries the list of blocked process names so models can report which
    components were waiting (e.g. a ``recv`` with no matching ``send``),
    and optionally structured ``diagnostics`` — ``RT001``
    :class:`repro.check.Diagnostic` records naming the blocked
    processes/channels (kept untyped here so the kernel never imports
    the analyzer).
    """

    def __init__(self, blocked: list[str], diagnostics=None):
        self.blocked = list(blocked)
        self.diagnostics = list(diagnostics) if diagnostics else []
        detail = ""
        if self.diagnostics:
            detail = "\n" + "\n".join(
                d.format() if hasattr(d, "format") else str(d)
                for d in self.diagnostics)
        super().__init__(
            "simulation deadlock: no pending events but %d process(es) "
            "blocked: %s%s" % (len(blocked), ", ".join(blocked), detail)
        )


class ChannelClosedError(SimulationError):
    """Receive on a channel that was closed and fully drained."""


class ProcessKilledError(PearlError):
    """Raised *inside* a process generator when it is killed externally."""


class SimTimeError(SimulationError):
    """An attempt to schedule an event in the past or with a negative delay."""
