"""``repro.pearl`` — the Pearl-style discrete-event simulation kernel.

Mermaid's architecture models were implemented in Pearl, "an
object-oriented simulation language ... especially designed for easily
and flexibly implementing simulation models of computer architectures"
(Muller, 1993).  This package provides the equivalent substrate in
Python:

* :class:`Simulator` — virtual clock and deterministic event list;
* :class:`Process` / :class:`Event` — generator-based simulation objects;
* :class:`Channel` — synchronous (rendezvous) and asynchronous messages;
* :class:`Resource` — FIFO-arbitrated shared hardware (buses, links);
* :class:`TallyMonitor` / :class:`TimeWeightedMonitor` — statistics.
"""

from .channel import Channel
from .errors import (
    ChannelClosedError,
    DeadlockError,
    PearlError,
    ProcessKilledError,
    SimTimeError,
    SimulationError,
)
from .introspect import (
    BLOCKING_EVENT_METHODS,
    EVENT_RETURNING_METHODS,
    RELEASE_METHODS,
    SELF_CONTAINED_HOLD_METHODS,
)
from .kernel import (
    Event,
    FastSimulator,
    Process,
    Simulator,
    Timer,
    kernel_mode,
)
from .monitor import TallyMonitor, TimeWeightedMonitor
from .resource import Resource

__all__ = [
    "BLOCKING_EVENT_METHODS",
    "Channel",
    "ChannelClosedError",
    "DeadlockError",
    "EVENT_RETURNING_METHODS",
    "Event",
    "FastSimulator",
    "PearlError",
    "Process",
    "ProcessKilledError",
    "RELEASE_METHODS",
    "Resource",
    "SELF_CONTAINED_HOLD_METHODS",
    "SimTimeError",
    "SimulationError",
    "Simulator",
    "TallyMonitor",
    "TimeWeightedMonitor",
    "Timer",
    "kernel_mode",
]
