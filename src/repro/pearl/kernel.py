"""The Pearl discrete-event simulation kernel.

Mermaid's architecture models were written in Pearl, an object-oriented
simulation language in which architecture components are objects that
exchange messages in virtual time.  This module is the Python substrate
for those models: a deterministic discrete-event kernel in which each
simulation object is a Python generator ("process") scheduled on a
binary-heap event list.

Yield protocol
--------------
A process generator may ``yield``:

* a non-negative number — hold (advance local time) for that many time
  units;
* an :class:`Event` — block until the event is triggered; the value the
  event was triggered with becomes the value of the ``yield`` expression;
* ``None`` — yield control and be resumed at the same simulated time
  (after already-scheduled events at this time).

Determinism: ties in simulated time are broken by a global monotone
sequence number, so identical programs produce identical schedules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import (
    DeadlockError,
    ProcessKilledError,
    SimTimeError,
    SimulationError,
)

__all__ = ["Event", "Process", "Simulator"]


class Event:
    """A one-shot condition processes can block on.

    An event starts untriggered.  :meth:`trigger` marks it triggered with
    a value and resumes (via the scheduler, preserving FIFO order) every
    process currently waiting on it.  A process that yields an
    already-triggered event resumes immediately with the stored value.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: list["Process"] = []
        self._callbacks: list[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        sim = self.sim
        for proc in self._waiters:
            sim._schedule(sim.now, proc, value)
        self._waiters.clear()
        for cb in self._callbacks:
            cb(value)
        self._callbacks.clear()

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Call ``fn(value)`` when the event triggers (immediately if it has)."""
        if self.triggered:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A simulation process wrapping a generator.

    Created through :meth:`Simulator.process`.  The process starts at the
    simulation time current when it was created (it is scheduled, not run
    inline).  When the generator returns, :attr:`result` holds its return
    value and :attr:`terminated` (an :class:`Event`) is triggered with it.
    """

    __slots__ = ("sim", "name", "gen", "terminated", "alive", "result",
                 "_scheduled", "_blocked_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.gen = gen
        self.terminated = Event(sim, f"{name}.terminated")
        self.alive = True
        self.result: Any = None
        self._scheduled = False      # has a pending resume on the event heap
        self._blocked_on: Optional[Event] = None

    # -- scheduling ------------------------------------------------------

    def _step(self, value: Any) -> None:
        """Advance the generator one step and interpret what it yields."""
        self._scheduled = False
        self._blocked_on = None
        sim = self.sim
        try:
            item = self.gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            sim._live -= 1
            self.terminated.trigger(stop.value)
            return
        except ProcessKilledError:
            self.alive = False
            sim._live -= 1
            self.terminated.trigger(None)
            return
        # Dispatch on the yielded item.  Numbers are by far the hot case.
        if item is None:
            sim._schedule(sim.now, self, None)
        elif isinstance(item, Event):
            if item.triggered:
                sim._schedule(sim.now, self, item.value)
            else:
                item._waiters.append(self)
                self._blocked_on = item
        else:
            try:
                delay = float(item)
            except (TypeError, ValueError):
                raise SimulationError(
                    f"process {self.name!r} yielded unsupported value "
                    f"{item!r}"
                ) from None
            if delay < 0:
                raise SimTimeError(
                    f"process {self.name!r} yielded negative delay {delay}"
                )
            sim._schedule(sim.now + delay, self, None)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilledError` into it."""
        if not self.alive:
            return
        # Detach from whatever it is waiting on.
        if self._blocked_on is not None:
            try:
                self._blocked_on._waiters.remove(self)
            except ValueError:
                pass
            self._blocked_on = None
        try:
            self.gen.throw(ProcessKilledError())
        except (ProcessKilledError, StopIteration):
            pass
        self.alive = False
        self.sim._live -= 1
        if not self.terminated.triggered:
            self.terminated.trigger(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'alive' if self.alive else 'done'}>"


class Simulator:
    """The discrete-event engine: virtual clock plus an event heap.

    A Mermaid architecture model is a set of processes created with
    :meth:`process` plus the channels and resources that connect them;
    :meth:`run` executes the model until a time bound or until no events
    remain.
    """

    def __init__(self, *, trace_hook: Optional[Callable] = None) -> None:
        self.now: float = 0.0
        self._heap: list = []           # (time, seq, process, value)
        self._seq: int = 0
        self._live: int = 0             # unfinished processes
        self._procs: list[Process] = []  # registry (for deadlock reports)
        self._running = False
        #: optional ``hook(time, process_or_callback)`` called before
        #: every executed event — the kernel-level run-time trace.
        self.trace_hook = trace_hook
        #: optional :class:`repro.check.DeterminismSanitizer`; when set,
        #: resources and channels report same-time conflicting operations
        #: to it (see :meth:`attach_sanitizer`).
        self.sanitizer = None

    # -- construction ----------------------------------------------------

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; it starts at the current time."""
        if not name:
            name = f"proc-{len(self._procs)}"
        proc = Process(self, gen, name)
        self._procs.append(proc)
        self._live += 1
        self._schedule(self.now, proc, None)
        return proc

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name)

    def attach_sanitizer(self, sanitizer) -> None:
        """Opt in to determinism sanitizing for this simulation.

        ``sanitizer`` must provide ``record_resource(name, now, granted)``
        and ``record_channel(name, now, kind)`` — normally a
        :class:`repro.check.DeterminismSanitizer`.  The hooks cost one
        attribute check per resource/channel operation when detached.
        """
        self.sanitizer = sanitizer

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that triggers ``delay`` time units from now."""
        if delay < 0:
            raise SimTimeError(f"negative timeout {delay}")
        ev = Event(self, name or f"timeout({delay})")
        self._schedule_call(self.now + delay, ev.trigger, value)
        return ev

    # -- scheduling internals ---------------------------------------------

    def _schedule(self, time: float, proc: Process, value: Any) -> None:
        if proc._scheduled:
            raise SimulationError(
                f"process {proc.name!r} scheduled twice (woken while runnable)"
            )
        proc._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, proc, value))

    def _schedule_call(self, time: float, fn: Callable, value: Any) -> None:
        """Schedule a bare callback (used by timeouts)."""
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, value))

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None,
            check_deadlock: bool = False) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events exactly at
            ``until`` are executed).  ``None`` runs to event exhaustion.
        check_deadlock:
            If true and the event list drains while processes are still
            alive (i.e. blocked forever), raise :class:`DeadlockError`.

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        hook = self.trace_hook
        try:
            while heap:
                time, _seq, target, value = heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                pop(heap)
                self.now = time
                if hook is not None:
                    hook(time, target)
                if type(target) is Process:
                    if target.alive:
                        target._step(value)
                else:
                    target(value)
        finally:
            self._running = False
        if check_deadlock and not heap and self._live > 0:
            blocked = [p.name for p in self._procs if p.alive]
            raise DeadlockError(blocked)
        return self.now

    def step(self) -> bool:
        """Execute a single event; return False if none remain."""
        if not self._heap:
            return False
        time, _seq, target, value = heapq.heappop(self._heap)
        self.now = time
        if type(target) is Process:
            if target.alive:
                target._step(value)
        else:
            target(value)
        return True

    @property
    def pending_events(self) -> int:
        """Number of scheduled (not yet executed) events."""
        return len(self._heap)

    @property
    def live_processes(self) -> int:
        """Number of processes that have not terminated."""
        return self._live

    def blocked_process_names(self) -> list[str]:
        """Names of alive processes with no scheduled resume (blocked)."""
        return [p.name for p in self._procs
                if p.alive and not p._scheduled]

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """An event triggered once *all* of ``events`` have triggered.

        Triggers with the list of individual values, in input order.
        """
        events = list(events)
        combined = Event(self, name)
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)
        if not events:
            # Trigger asynchronously to keep semantics uniform.
            self._schedule_call(self.now, combined.trigger, [])
            return combined

        def make_cb(i: int):
            def cb(value: Any) -> None:
                values[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    combined.trigger(list(values))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return combined

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """An event triggered as soon as *any* of ``events`` triggers.

        Triggers with a tuple ``(index, value)`` of the first event to
        fire; later triggers are ignored.
        """
        events = list(events)
        combined = Event(self, name)

        def make_cb(i: int):
            def cb(value: Any) -> None:
                if not combined.triggered:
                    combined.trigger((i, value))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return combined
