"""The Pearl discrete-event simulation kernel.

Mermaid's architecture models were written in Pearl, an object-oriented
simulation language in which architecture components are objects that
exchange messages in virtual time.  This module is the Python substrate
for those models: a deterministic discrete-event kernel in which each
simulation object is a Python generator ("process") scheduled on a
binary-heap event list.

Yield protocol
--------------
A process generator may ``yield``:

* a non-negative number — hold (advance local time) for that many time
  units;
* an :class:`Event` — block until the event is triggered; the value the
  event was triggered with becomes the value of the ``yield`` expression;
* ``None`` — yield control and be resumed at the same simulated time
  (after already-scheduled events at this time).

Determinism: ties in simulated time are broken by a global monotone
sequence number, so identical programs produce identical schedules.

Two interchangeable dispatchers implement those semantics:

* the **seed** dispatcher (:class:`Simulator` proper) — the reference
  implementation: one binary heap, one generic dispatch loop;
* the **fast** dispatcher (:class:`FastSimulator`) — the same schedule
  byte for byte, executed through an inlined event loop with a
  preallocated ring of same-time event slots, so the (very common)
  events scheduled *at the current time* never touch the heap.

``Simulator()`` builds whichever the ``REPRO_KERNEL`` environment
variable selects (``fast`` is the default; ``seed`` keeps the reference
dispatcher selectable for differential testing), and an explicit
``Simulator(kernel="seed")`` overrides the environment.  Equivalence of
the two is pinned by ``tests/test_kernel_equivalence.py``.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import (
    DeadlockError,
    ProcessKilledError,
    SimTimeError,
    SimulationError,
)

__all__ = ["Event", "FastSimulator", "Process", "Simulator", "Timer",
           "kernel_mode"]

#: Recognized values of ``REPRO_KERNEL`` / ``Simulator(kernel=...)``.
KERNEL_MODES = ("fast", "seed")


def kernel_mode() -> str:
    """The dispatcher selected by the ``REPRO_KERNEL`` environment variable.

    ``fast`` (the default) selects :class:`FastSimulator`; ``seed``
    selects the reference dispatcher.  Anything else is a configuration
    error, not a silent fallback.
    """
    mode = os.environ.get("REPRO_KERNEL", "fast")
    if mode not in KERNEL_MODES:
        raise SimulationError(
            f"REPRO_KERNEL must be one of {'/'.join(KERNEL_MODES)}, "
            f"got {mode!r}")
    return mode


class Event:
    """A one-shot condition processes can block on.

    An event starts untriggered.  :meth:`trigger` marks it triggered with
    a value and resumes (via the scheduler, preserving FIFO order) every
    process currently waiting on it.  A process that yields an
    already-triggered event resumes immediately with the stored value.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: list["Process"] = []
        self._callbacks: list[Callable[[Any], None]] = []

    def trigger(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        sim = self.sim
        for proc in self._waiters:
            sim._schedule(sim.now, proc, value)
        self._waiters.clear()
        for cb in self._callbacks:
            cb(value)
        self._callbacks.clear()

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Call ``fn(value)`` when the event triggers (immediately if it has)."""
        if self.triggered:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timer:
    """A cancellable one-shot timer (see :meth:`Simulator.timer`).

    :meth:`Simulator.timeout` events cannot be revoked: once scheduled
    they fire, and a "timeout that no longer matters" would still drag
    the clock (and ``sim.now``-derived results) out to its expiry.
    Protocol models with retransmit timers need to *disarm* — cancel
    removes the pending trigger from the event heap entirely, with the
    same ``_dropped`` accounting as :meth:`Process.kill` so
    :attr:`Simulator.events_executed` stays exact.
    """

    __slots__ = ("sim", "event", "_cb", "_fired", "_cancelled")

    def __init__(self, sim: "Simulator", event: Event) -> None:
        self.sim = sim
        self.event = event
        self._cb = self._fire          # one stable bound-method object
        self._fired = False
        self._cancelled = False

    def _fire(self, value: Any) -> None:
        self._fired = True
        self.event.trigger(value)

    @property
    def active(self) -> bool:
        """True while the timer is armed (not fired, not cancelled)."""
        return not (self._fired or self._cancelled)

    def cancel(self) -> bool:
        """Disarm the timer; True if it had not already fired.

        The pending heap entry is removed (O(n), like kill), so a
        cancelled timer neither triggers its event nor advances the
        simulation clock to its expiry time.
        """
        if self._fired or self._cancelled:
            return False
        self._cancelled = True
        self.sim._drop_call(self._cb)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("fired" if self._fired
                 else "cancelled" if self._cancelled else "armed")
        return f"<Timer {self.event.name!r} {state}>"


class Process:
    """A simulation process wrapping a generator.

    Created through :meth:`Simulator.process`.  The process starts at the
    simulation time current when it was created (it is scheduled, not run
    inline).  When the generator returns, :attr:`result` holds its return
    value and :attr:`terminated` (an :class:`Event`) is triggered with it.
    """

    __slots__ = ("sim", "name", "gen", "terminated", "alive", "result",
                 "_scheduled", "_blocked_on", "_send")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.gen = gen
        # The dispatch loops resume the generator millions of times; one
        # cached bound method replaces two attribute lookups per resume.
        self._send = gen.send
        self.terminated = Event(sim, f"{name}.terminated")
        self.alive = True
        self.result: Any = None
        self._scheduled = False      # has a pending resume on the event heap
        self._blocked_on: Optional[Event] = None

    # -- scheduling ------------------------------------------------------

    def _step(self, value: Any, tracer=None) -> None:
        """Advance the generator one step and interpret what it yields.

        ``tracer`` is passed down by the dispatch loop (a local there)
        so the detached hot path pays no attribute lookup for it.
        """
        self._scheduled = False
        self._blocked_on = None
        sim = self.sim
        try:
            item = self._send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            sim._live -= 1
            self.terminated.trigger(stop.value)
            return
        except ProcessKilledError:
            self.alive = False
            sim._live -= 1
            self.terminated.trigger(None)
            return
        # Dispatch on the yielded item.  Numbers are by far the hot case.
        if item is None:
            sim._schedule(sim.now, self, None)
        elif isinstance(item, Event):
            if item.triggered:
                sim._schedule(sim.now, self, item.value)
            else:
                item._waiters.append(self)
                self._blocked_on = item
        else:
            try:
                delay = float(item)
            except (TypeError, ValueError):
                raise SimulationError(
                    f"process {self.name!r} yielded unsupported value "
                    f"{item!r}"
                ) from None
            if delay < 0:
                raise SimTimeError(
                    f"process {self.name!r} yielded negative delay {delay}"
                )
            if tracer is not None:
                tracer.hold(sim.now, delay, self.name)
            sim._schedule(sim.now + delay, self, None)

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilledError` into it.

        A generator that traps :class:`ProcessKilledError` may run
        cleanup but must not ``yield`` again: the kernel cannot resume a
        killed process, so a post-kill yield raises
        :class:`SimulationError` (after closing the generator).  Either
        way the process ends up dead, off the event heap, and with its
        ``terminated`` event triggered.
        """
        if not self.alive:
            return
        # Detach from whatever it is waiting on.
        if self._blocked_on is not None:
            try:
                self._blocked_on._waiters.remove(self)
            except ValueError:
                pass
            self._blocked_on = None
        trapped = False
        try:
            try:
                self.gen.throw(ProcessKilledError())
            except (ProcessKilledError, StopIteration):
                pass
            else:
                # The generator caught the kill and yielded again; it is
                # still suspended and can never be resumed.
                trapped = True
                try:
                    self.gen.close()
                except RuntimeError:
                    pass
        finally:
            self.alive = False
            self.sim._live -= 1
            if self._scheduled:
                self._scheduled = False
                self.sim._drop_scheduled(self)
            if not self.terminated.triggered:
                self.terminated.trigger(None)
        if trapped:
            raise SimulationError(
                f"process {self.name!r} trapped ProcessKilledError and "
                f"yielded again instead of terminating")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'alive' if self.alive else 'done'}>"


class Simulator:
    """The discrete-event engine: virtual clock plus an event heap.

    A Mermaid architecture model is a set of processes created with
    :meth:`process` plus the channels and resources that connect them;
    :meth:`run` executes the model until a time bound or until no events
    remain.

    ``Simulator(...)`` transparently constructs the dispatcher selected
    by ``REPRO_KERNEL`` (see :func:`kernel_mode`); pass ``kernel="seed"``
    or ``kernel="fast"`` to pin one explicitly.  Instantiating
    :class:`Simulator` or :class:`FastSimulator` through a subclass
    bypasses the switch — a subclass *is* its author's choice.
    """

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        if cls is Simulator:
            mode = kwargs.get("kernel") or kernel_mode()
            if mode == "fast":
                cls = FastSimulator
        return object.__new__(cls)

    def __init__(self, *, trace_hook: Optional[Callable] = None,
                 kernel: Optional[str] = None) -> None:
        if kernel is not None and kernel not in KERNEL_MODES:
            raise SimulationError(
                f"kernel must be one of {'/'.join(KERNEL_MODES)}, "
                f"got {kernel!r}")
        self.now: float = 0.0
        self._heap: list = []           # (time, seq, process, value)
        self._seq: int = 0
        self._live: int = 0             # unfinished processes
        self._procs: list[Process] = []  # registry (for deadlock reports)
        self._running = False
        self._dropped: int = 0          # heap entries removed by kill()
        #: optional ``hook(time, process_or_callback)`` called before
        #: every executed event — the kernel-level run-time trace.
        self.trace_hook = trace_hook
        #: optional :class:`repro.check.DeterminismSanitizer`; when set,
        #: resources and channels report same-time conflicting operations
        #: to it (see :meth:`attach_sanitizer`).
        self.sanitizer = None
        #: optional :class:`repro.observe.Tracer`; when set, the kernel,
        #: channels and resources emit structured trace records (see
        #: :meth:`attach_tracer`).  Costs one ``None`` check when
        #: detached, like ``sanitizer``.
        self.tracer = None
        #: optional tie-break controller (see :meth:`attach_tie_break`);
        #: when set, dispatch routes through the instrumented
        #: :meth:`_dispatch_hooked` loop on both kernels.
        self.tie_break = None
        #: name of the event target currently being dispatched.
        #: Maintained only by the instrumented dispatch paths (tracer,
        #: sanitizer or tie-break hook attached) — the detached bulk
        #: loops skip it so the hot path stays store-free.
        self.current_process: str = ""

    # -- construction ----------------------------------------------------

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; it starts at the current time."""
        if not name:
            name = f"proc-{len(self._procs)}"
        proc = Process(self, gen, name)
        self._procs.append(proc)
        self._live += 1
        self._schedule(self.now, proc, None)
        return proc

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name)

    def attach_sanitizer(self, sanitizer) -> None:
        """Opt in to determinism sanitizing for this simulation.

        ``sanitizer`` must provide ``record_resource(name, now, granted,
        process=...)`` and ``record_channel(name, now, kind,
        process=...)`` — normally a
        :class:`repro.check.DeterminismSanitizer`.  The hooks cost one
        attribute check per resource/channel operation when detached.
        Attaching one routes dispatch through the instrumented loop so
        :attr:`current_process` names the contending processes.
        """
        self.sanitizer = sanitizer

    def attach_tracer(self, tracer) -> None:
        """Opt in to structured event tracing for this simulation.

        ``tracer`` must provide the record hooks of
        :class:`repro.observe.Tracer` (``process_step``, ``hold``,
        ``channel_send``/``channel_recv``, ``resource_acquire``/
        ``resource_release``, ...).  Attach before :meth:`run`;
        detached simulations pay only a ``None`` check per operation.
        """
        self.tracer = tracer

    def attach_tie_break(self, hook) -> None:
        """Opt in to controllable same-time tie-breaking.

        ``hook`` must provide ``select(time, candidates) -> int``, where
        ``candidates`` is the list of scheduled entries
        ``(time, seq, target, value)`` ready at the current instant, in
        sequence (seed) order, and the return value is the index of the
        entry to dispatch next.  ``select`` is consulted only when two or
        more entries are simultaneously ready; returning ``0`` everywhere
        reproduces the default schedule exactly.  This is the mechanism
        behind :mod:`repro.verify` — schedule-space exploration perturbs
        exactly the orderings the ``(time, seq)`` total order pins down.

        Attach before :meth:`run`.  A hook routes dispatch through a
        slower heap-only loop on **both** kernels (the fast ring is
        bypassed so every same-time event is visible as a candidate):
        verification runs pay for controllability, normal runs pay one
        ``None`` check per :meth:`run`.
        """
        self.tie_break = hook

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that triggers ``delay`` time units from now."""
        if delay < 0:
            raise SimTimeError(f"negative timeout {delay}")
        ev = Event(self, name or f"timeout({delay})")
        self._schedule_call(self.now + delay, ev.trigger, value)
        return ev

    def timer(self, delay: float, value: Any = None,
              name: str = "") -> Timer:
        """A cancellable timer firing ``delay`` time units from now.

        Like :meth:`timeout` but returns a :class:`Timer` whose
        :meth:`Timer.cancel` removes the pending trigger from the event
        heap — block on ``timer.event``, disarm with ``timer.cancel()``.
        """
        if delay < 0:
            raise SimTimeError(f"negative timer delay {delay}")
        ev = Event(self, name or f"timer({delay})")
        t = Timer(self, ev)
        self._schedule_call(self.now + delay, t._cb, value)
        return t

    # -- scheduling internals ---------------------------------------------

    def _schedule(self, time: float, proc: Process, value: Any) -> None:
        if proc._scheduled:
            raise SimulationError(
                f"process {proc.name!r} scheduled twice (woken while runnable)"
            )
        proc._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, proc, value))

    def _schedule_call(self, time: float, fn: Callable, value: Any) -> None:
        """Schedule a bare callback (used by timeouts)."""
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, value))

    def _drop_scheduled(self, proc: Process) -> None:
        """Remove a killed process's pending resume from the event heap.

        Mutates the heap in place so aliases held by a running dispatch
        loop stay valid; O(n), but only paid on :meth:`Process.kill`.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if entry[2] is not proc]
        heapq.heapify(heap)
        self._dropped += before - len(heap)

    def _drop_call(self, fn: Callable) -> None:
        """Remove a scheduled bare callback (a cancelled :class:`Timer`)
        from the event heap; same in-place/O(n) contract as
        :meth:`_drop_scheduled`."""
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if entry[2] is not fn]
        heapq.heapify(heap)
        self._dropped += before - len(heap)

    # -- execution ---------------------------------------------------------

    def _dispatch(self, until: Optional[float], max_events: int) -> None:
        """The single event-dispatch loop behind :meth:`run` and
        :meth:`step` — both must fire ``trace_hook``/tracer and execute
        targets identically, or single-stepping a model would produce a
        different trace than running it.

        ``max_events`` bounds how many events execute (``-1`` =
        unbounded).
        """
        if self.tie_break is not None:
            self._dispatch_hooked(until, max_events)
            return
        heap = self._heap
        pop = heapq.heappop
        hook = self.trace_hook
        tracer = self.tracer
        if tracer is None and self.sanitizer is None and max_events == -1:
            # Detached bulk path: the same semantics with the
            # instrumentation conditionals constant-folded away, so an
            # untraced run() pays nothing for the tracing feature.
            # Sanitized runs take the general loop below, which
            # maintains ``current_process`` for contention diagnostics.
            while heap:
                time, _seq, target, value = heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                pop(heap)
                self.now = time
                if hook is not None:
                    hook(time, target)
                if type(target) is Process:
                    if target.alive:
                        target._step(value)
                else:
                    target(value)
            return
        executed = 0
        while heap and executed != max_events:
            time, _seq, target, value = heap[0]
            if until is not None and time > until:
                self.now = until
                break
            pop(heap)
            executed += 1
            self.now = time
            if hook is not None:
                hook(time, target)
            if type(target) is Process:
                self.current_process = target.name
                if tracer is not None:
                    tracer.process_step(time, target.name)
                if target.alive:
                    target._step(value, tracer)
            else:
                name = getattr(target, "__name__", "callback")
                self.current_process = name
                if tracer is not None:
                    tracer.process_step(time, name)
                target(value)

    def _dispatch_hooked(self, until: Optional[float],
                         max_events: int) -> None:
        """Dispatch under a tie-break hook — shared by both kernels.

        Heap-only (the fast ring is bypassed while a hook is attached),
        with full instrumentation: every iteration collects the entries
        ready at the current instant in sequence order and, when there
        is a genuine tie, lets the hook pick which executes next.  The
        chosen entry is removed **by sequence number**, never by tuple
        equality — values may be arrays whose ``==`` is elementwise.
        """
        heap = self._heap
        hook = self.trace_hook
        tracer = self.tracer
        select = self.tie_break.select
        executed = 0
        while heap and executed != max_events:
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                break
            if len(heap) > 1:
                candidates = sorted(
                    (e for e in heap if e[0] == time), key=lambda e: e[1])
                if len(candidates) > 1:
                    chosen = select(time, candidates)
                    if not 0 <= chosen < len(candidates):
                        raise SimulationError(
                            f"tie-break hook selected index {chosen} of "
                            f"{len(candidates)} candidates at t={time:g}")
                    entry = candidates[chosen]
            if entry is heap[0]:
                heapq.heappop(heap)
            else:
                seq = entry[1]
                idx = next(i for i, e in enumerate(heap) if e[1] == seq)
                last = heap.pop()
                if idx < len(heap):
                    heap[idx] = last
                    heapq.heapify(heap)
            executed += 1
            self.now = time
            target = entry[2]
            value = entry[3]
            if hook is not None:
                hook(time, target)
            if type(target) is Process:
                self.current_process = target.name
                if tracer is not None:
                    tracer.process_step(time, target.name)
                if target.alive:
                    target._step(value, tracer)
            else:
                name = getattr(target, "__name__", "callback")
                self.current_process = name
                if tracer is not None:
                    tracer.process_step(time, name)
                target(value)

    def run(self, until: Optional[float] = None,
            check_deadlock: bool = False) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events exactly at
            ``until`` are executed).  ``None`` runs to event exhaustion.
        check_deadlock:
            If true and the event list drains while processes are still
            alive (i.e. blocked forever), raise :class:`DeadlockError`.

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            self._dispatch(until, -1)
        finally:
            self._running = False
        if check_deadlock and not self._heap and self._live > 0:
            blocked = [p.name for p in self._procs if p.alive]
            raise DeadlockError(blocked)
        return self.now

    def step(self) -> bool:
        """Execute a single event; return False if none remain.

        Drives the same dispatch path as :meth:`run` (trace hook,
        tracer, liveness checks), so interleaving ``step()`` with
        ``run()`` produces the identical schedule and trace.
        """
        if self._running:
            raise SimulationError("step() called while the simulator "
                                  "is running")
        if not self._heap:
            return False
        self._running = True
        try:
            self._dispatch(None, 1)
        finally:
            self._running = False
        return True

    @property
    def pending_events(self) -> int:
        """Number of scheduled (not yet executed) events."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        """Total events executed so far (over all run()/step() calls).

        Derived, not counted: every ``_seq`` increment is one heap
        push, and a pushed event is either still pending, was dropped
        by :meth:`Process.kill`, or has executed — so the hot dispatch
        loop carries no per-event bookkeeping for this.
        """
        return self._seq - len(self._heap) - self._dropped

    @property
    def live_processes(self) -> int:
        """Number of processes that have not terminated."""
        return self._live

    def blocked_process_names(self) -> list[str]:
        """Names of alive processes with no scheduled resume (blocked)."""
        return [p.name for p in self._procs
                if p.alive and not p._scheduled]

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """An event triggered once *all* of ``events`` have triggered.

        Triggers with the list of individual values, in input order.
        Completion is always routed through the scheduler: the combined
        event triggers at the completing time but strictly *after* the
        completing call returns, whether the inputs were already
        triggered at construction, trigger later, or the list is empty.
        """
        events = list(events)
        combined = Event(self, name)
        if not events:
            self._schedule_call(self.now, combined.trigger, [])
            return combined
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)

        def make_cb(i: int):
            def cb(value: Any) -> None:
                values[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    self._schedule_call(self.now, combined.trigger,
                                        list(values))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return combined

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """An event triggered as soon as *any* of ``events`` triggers.

        Triggers with a tuple ``(index, value)`` of the first event to
        fire; later triggers are ignored.  Like :meth:`all_of`, the
        combined trigger is scheduled, never fired synchronously from
        inside the winning event's trigger (or the constructor).
        """
        events = list(events)
        combined = Event(self, name)
        fired = [False]

        def make_cb(i: int):
            def cb(value: Any) -> None:
                if not fired[0]:
                    fired[0] = True
                    self._schedule_call(self.now, combined.trigger,
                                        (i, value))
            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return combined


class FastSimulator(Simulator):
    """The fast dispatcher: identical schedules, an optimized event loop.

    Two structural changes over the seed dispatcher, neither visible in
    results:

    * **same-time ready ring** — an event scheduled at the *current*
      time while the simulator is running can never overtake a pending
      heap entry at that time (its sequence number is strictly larger),
      so it goes into a preallocated power-of-two ring of slots instead
      of the heap.  Dispatch order is: heap entries at ``now`` (by
      sequence), then the ring FIFO, then advance the clock via the
      heap — exactly the ``(time, seq)`` total order of the seed
      dispatcher, without ``heappush``/``heappop`` for the 30-40% of
      events that are same-time in communication-bound models.  Each
      slot keeps its sequence number so a bounded dispatch (``step()``)
      or an exception can spill the ring back onto the heap losslessly.
    * **inlined dispatch** — the untraced bulk loop resumes generators
      and interprets their yields inline (cached bound ``gen.send``,
      type-switched fast lanes for numbers and ``None``) instead of
      calling :meth:`Process._step` per event.

    Everything observable — event order, timestamps, ``trace_hook`` and
    tracer callbacks, error messages, ``events_executed`` — is
    byte-identical to the seed dispatcher by construction and by the
    differential suite in ``tests/test_kernel_equivalence.py``.
    """

    _RING_CAP = 1024               # initial slots; grows by doubling

    def __init__(self, *, trace_hook: Optional[Callable] = None,
                 kernel: Optional[str] = None) -> None:
        super().__init__(trace_hook=trace_hook, kernel=kernel)
        cap = self._RING_CAP
        self._ring_t: list = [None] * cap    # targets (Process or callable)
        self._ring_v: list = [None] * cap    # values
        self._ring_s: list = [0] * cap       # sequence numbers
        self._ring_mask = cap - 1
        self._ring_head = 0
        self._ring_tail = 0

    # -- ready-ring plumbing ----------------------------------------------

    def _ring_append(self, target: Any, value: Any, seq: int) -> None:
        tail = self._ring_tail
        if tail - self._ring_head > self._ring_mask:
            self._ring_grow()
        i = tail & self._ring_mask
        self._ring_t[i] = target
        self._ring_v[i] = value
        self._ring_s[i] = seq
        self._ring_tail = tail + 1

    def _ring_grow(self) -> None:
        """Double the ring, re-linearizing live entries from the head."""
        old_t, old_v, old_s = self._ring_t, self._ring_v, self._ring_s
        mask = self._ring_mask
        n = mask + 1
        head = self._ring_head
        self._ring_t = [old_t[(head + k) & mask] for k in range(n)] + [None] * n
        self._ring_v = [old_v[(head + k) & mask] for k in range(n)] + [None] * n
        self._ring_s = [old_s[(head + k) & mask] for k in range(n)] + [0] * n
        self._ring_mask = 2 * n - 1
        self._ring_head = 0
        self._ring_tail = n

    def _flush_ring(self) -> None:
        """Spill ring entries back onto the heap (bounded dispatch exit).

        Entries keep their original sequence numbers, so a later
        ``run()``/``step()`` pops them in exactly the order the seed
        dispatcher would have.
        """
        head, tail = self._ring_head, self._ring_tail
        if head == tail:
            return
        heap = self._heap
        mask = self._ring_mask
        now = self.now
        push = heapq.heappush
        for i in range(head, tail):
            j = i & mask
            push(heap, (now, self._ring_s[j], self._ring_t[j],
                        self._ring_v[j]))
            self._ring_t[j] = None
            self._ring_v[j] = None
        self._ring_head = 0
        self._ring_tail = 0

    def _filter_ring(self, target: Any) -> int:
        """Remove every ring entry whose target is ``target``; returns
        how many were removed (the caller accounts them as dropped)."""
        head, tail = self._ring_head, self._ring_tail
        if head == tail:
            return 0
        mask = self._ring_mask
        live = [(self._ring_s[i & mask], self._ring_t[i & mask],
                 self._ring_v[i & mask]) for i in range(head, tail)]
        kept = [e for e in live if e[1] is not target]
        removed = len(live) - len(kept)
        if not removed:
            return 0
        for i, (s, t, v) in enumerate(kept):
            self._ring_s[i] = s
            self._ring_t[i] = t
            self._ring_v[i] = v
        for i in range(len(kept), min(tail - head, mask + 1)):
            self._ring_t[i] = None
            self._ring_v[i] = None
        self._ring_head = 0
        self._ring_tail = len(kept)
        return removed

    # -- scheduling overrides ------------------------------------------------

    def _schedule(self, time: float, proc: Process, value: Any) -> None:
        if proc._scheduled:
            raise SimulationError(
                f"process {proc.name!r} scheduled twice (woken while runnable)"
            )
        proc._scheduled = True
        self._seq += 1
        # With a tie-break hook attached the ring is bypassed: the
        # hooked loop must see every same-time event as a candidate.
        if time == self.now and self._running and self.tie_break is None:
            self._ring_append(proc, value, self._seq)
        else:
            heapq.heappush(self._heap, (time, self._seq, proc, value))

    def _schedule_call(self, time: float, fn: Callable, value: Any) -> None:
        self._seq += 1
        if time == self.now and self._running and self.tie_break is None:
            self._ring_append(fn, value, self._seq)
        else:
            heapq.heappush(self._heap, (time, self._seq, fn, value))

    def _drop_scheduled(self, proc: Process) -> None:
        super()._drop_scheduled(proc)
        self._dropped += self._filter_ring(proc)

    def _drop_call(self, fn: Callable) -> None:
        super()._drop_call(fn)
        self._dropped += self._filter_ring(fn)

    # -- accounting overrides ----------------------------------------------

    @property
    def pending_events(self) -> int:
        return len(self._heap) + (self._ring_tail - self._ring_head)

    @property
    def events_executed(self) -> int:
        return (self._seq - len(self._heap)
                - (self._ring_tail - self._ring_head) - self._dropped)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, until: Optional[float], max_events: int) -> None:
        try:
            if self.tie_break is not None:
                # Entries parked in the ring before the hook was
                # attached must become heap candidates first.
                self._flush_ring()
                self._dispatch_hooked(until, max_events)
            elif (self.tracer is None and self.sanitizer is None
                    and max_events == -1):
                self._dispatch_bulk(until)
            else:
                self._dispatch_general(until, max_events)
        finally:
            # Bounded dispatch (and exceptions) may leave ready entries;
            # spill them so heap-only state is restored between calls.
            self._flush_ring()

    def _dispatch_bulk(self, until: Optional[float]) -> None:
        """Untraced unbounded dispatch — the inlined hot loop.

        Semantically a fusion of the seed ``_dispatch`` detached path
        with :meth:`Process._step`; every branch reproduces the seed
        behaviour (including error messages) exactly.
        """
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        hook = self.trace_hook
        now = self.now
        if until is not None and until < now:
            # A bound in the past executes nothing (seed parity: the
            # clock still moves back to the bound if anything is pending).
            if heap:
                self.now = until
            return
        while True:
            # Priority: heap entries at `now` precede the ring (their
            # sequence numbers are strictly smaller — same-time events
            # scheduled *while running* only ever enter the ring).
            if heap and heap[0][0] == now:
                entry = pop(heap)
                target = entry[2]
                value = entry[3]
                time = now
            elif self._ring_head != self._ring_tail:
                head = self._ring_head
                i = head & self._ring_mask
                ring_t = self._ring_t
                target = ring_t[i]
                value = self._ring_v[i]
                ring_t[i] = None
                if value is not None:
                    self._ring_v[i] = None
                self._ring_head = head + 1
                time = now
            elif heap:
                entry = heap[0]
                time = entry[0]
                if until is not None and time > until:
                    self.now = until
                    return
                pop(heap)
                target = entry[2]
                value = entry[3]
                now = self.now = time
            else:
                return
            if hook is not None:
                hook(time, target)
            if target.__class__ is Process:
                if not target.alive:
                    continue
                target._scheduled = False
                target._blocked_on = None
                try:
                    item = target._send(value)
                except StopIteration as stop:
                    target.alive = False
                    target.result = stop.value
                    self._live -= 1
                    target.terminated.trigger(stop.value)
                    continue
                except ProcessKilledError:
                    target.alive = False
                    self._live -= 1
                    target.terminated.trigger(None)
                    continue
                cls = item.__class__
                if cls is float or cls is int:
                    if item > 0:
                        seq = self._seq = self._seq + 1
                        target._scheduled = True
                        push(heap, (time + item, seq, target, None))
                    elif item == 0:
                        seq = self._seq = self._seq + 1
                        target._scheduled = True
                        self._ring_append(target, None, seq)
                    else:
                        raise SimTimeError(
                            f"process {target.name!r} yielded negative "
                            f"delay {float(item)}")
                elif item is None:
                    seq = self._seq = self._seq + 1
                    target._scheduled = True
                    self._ring_append(target, None, seq)
                elif isinstance(item, Event):
                    if item.triggered:
                        self._schedule(time, target, item.value)
                    else:
                        item._waiters.append(target)
                        target._blocked_on = item
                else:
                    try:
                        delay = float(item)
                    except (TypeError, ValueError):
                        raise SimulationError(
                            f"process {target.name!r} yielded unsupported "
                            f"value {item!r}") from None
                    if delay < 0:
                        raise SimTimeError(
                            f"process {target.name!r} yielded negative "
                            f"delay {delay}")
                    seq = self._seq = self._seq + 1
                    target._scheduled = True
                    push(heap, (time + delay, seq, target, None))
            else:
                target(value)

    def _dispatch_general(self, until: Optional[float],
                          max_events: int) -> None:
        """Traced / bounded dispatch: seed instrumentation, ring order."""
        heap = self._heap
        pop = heapq.heappop
        hook = self.trace_hook
        tracer = self.tracer
        now = self.now
        if until is not None and until < now:
            if heap:
                self.now = until
            return
        executed = 0
        while executed != max_events:
            if heap and heap[0][0] == now:
                entry = pop(heap)
                target = entry[2]
                value = entry[3]
                time = now
            elif self._ring_head != self._ring_tail:
                head = self._ring_head
                i = head & self._ring_mask
                target = self._ring_t[i]
                value = self._ring_v[i]
                self._ring_t[i] = None
                if value is not None:
                    self._ring_v[i] = None
                self._ring_head = head + 1
                time = now
            elif heap:
                entry = heap[0]
                time = entry[0]
                if until is not None and time > until:
                    self.now = until
                    return
                pop(heap)
                target = entry[2]
                value = entry[3]
                now = self.now = time
            else:
                return
            executed += 1
            if hook is not None:
                hook(time, target)
            if target.__class__ is Process:
                self.current_process = target.name
                if tracer is not None:
                    tracer.process_step(time, target.name)
                if target.alive:
                    target._step(value, tracer)
            else:
                name = getattr(target, "__name__", "callback")
                self.current_process = name
                if tracer is not None:
                    tracer.process_step(time, name)
                target(value)
