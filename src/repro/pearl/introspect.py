"""Canonical names of the Pearl kernel API, for tooling.

The ``repro lint`` source analyzer reasons about model code that calls
into this package: which methods return yield-able :class:`Event`
objects, which ones block (and therefore lose their completion event if
the result is discarded), and which helpers are self-contained
acquire-hold-release generators.  Those name sets live here — next to
the kernel itself — so the linter can never drift out of sync with the
API it checks (a test asserts every name below exists on the class it
claims to describe).
"""

from __future__ import annotations

__all__ = [
    "BLOCKING_EVENT_METHODS",
    "EVENT_RETURNING_METHODS",
    "RELEASE_METHODS",
    "SELF_CONTAINED_HOLD_METHODS",
]

#: Methods that return an :class:`~repro.pearl.kernel.Event` the caller
#: must ``yield`` — mapped to the class that defines them.
EVENT_RETURNING_METHODS: dict[str, str] = {
    "acquire": "Resource",
    "send": "Channel",
    "receive": "Channel",
    "timeout": "Simulator",
    "event": "Simulator",
    "all_of": "Simulator",
    "any_of": "Simulator",
}

#: The subset whose semantics *block* the calling process: discarding
#: the returned event silently turns a blocking operation into a no-op
#: wait (the classic ``ch.send(x)``-without-``yield`` bug).
BLOCKING_EVENT_METHODS: frozenset[str] = frozenset(
    {"acquire", "send", "receive"})

#: Generator helpers that acquire, hold and release internally; calling
#: code ``yield from``s them and owes no explicit ``release``.
#: (``using`` is the Pearl-DSL name; this substrate spells it ``use``.)
SELF_CONTAINED_HOLD_METHODS: frozenset[str] = frozenset({"use", "using"})

#: Methods that return capacity taken by a matching ``acquire``.
RELEASE_METHODS: frozenset[str] = frozenset({"release"})
