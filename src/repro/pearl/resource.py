"""Arbitrated resources — buses, links and other shared hardware.

Mermaid's bus component "is a simple forwarding mechanism, carrying out
arbitration upon multiple accesses"; the router's output links likewise
serialize competing packets.  :class:`Resource` is the kernel primitive
behind both: a counted FIFO semaphore whose holders occupy capacity for
a span of simulated time, with built-in utilization accounting.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .errors import SimulationError
from .kernel import Event, Simulator

__all__ = ["Resource"]


class Resource:
    """A shared resource with ``capacity`` simultaneous holders (FIFO grant).

    Usage inside a process::

        yield bus.acquire()
        yield transfer_time
        bus.release()

    or, for the common acquire-hold-release pattern::

        yield from bus.use(transfer_time)
    """

    __slots__ = ("sim", "name", "capacity", "_in_use", "_queue",
                 "acquisitions", "_busy_time", "_last_change", "_busy_since",
                 "max_queue_len", "total_wait_time")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "resource"
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque = deque()   # (event, units, time_enqueued)
        self.acquisitions = 0
        self._busy_time = 0.0           # integral of (in_use/capacity) dt
        self._last_change = sim.now
        self._busy_since: Optional[float] = None
        self.max_queue_len = 0
        self.total_wait_time = 0.0

    # -- accounting ---------------------------------------------------------

    def _account(self) -> None:
        now = self.sim.now
        if self._in_use > 0:
            self._busy_time += (now - self._last_change) * (
                self._in_use / self.capacity)
        self._last_change = now

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of capacity-time used since construction.

        ``horizon`` defaults to the current simulation time; pass the run
        length explicitly for post-run reporting.
        """
        self._account()
        span = self.sim.now if horizon is None else horizon
        if span <= 0:
            return 0.0
        return self._busy_time / span

    # -- operations -----------------------------------------------------------

    def acquire(self, units: int = 1) -> Event:
        """Request ``units`` of capacity; yield the event to hold them."""
        if units < 1 or units > self.capacity:
            raise SimulationError(
                f"cannot acquire {units} units of {self.name!r} "
                f"(capacity {self.capacity})")
        ev = Event(self.sim, f"{self.name}.acquire")
        granted = not self._queue and self._in_use + units <= self.capacity
        if granted:
            self._account()
            self._in_use += units
            self.acquisitions += 1
            ev.trigger(None)
        else:
            self._queue.append((ev, units, self.sim.now))
            if len(self._queue) > self.max_queue_len:
                self.max_queue_len = len(self._queue)
        sanitizer = self.sim.sanitizer
        if sanitizer is not None:
            sanitizer.record_resource(self.name, self.sim.now, granted,
                                      process=self.sim.current_process)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.resource_acquire(self.sim.now, self.name, granted,
                                    self._in_use)
        return ev

    def release(self, units: int = 1) -> None:
        """Return ``units`` of capacity and grant queued requests (FIFO)."""
        if units > self._in_use:
            raise SimulationError(
                f"release of {units} exceeds in-use {self._in_use} "
                f"on {self.name!r}")
        self._account()
        self._in_use -= units
        self._grant_queued()
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.resource_release(self.sim.now, self.name, self._in_use)

    def _grant_queued(self) -> None:
        # Strict FIFO: grant from the head only, never skip ahead.
        while self._queue:
            ev, need, t_enq = self._queue[0]
            if self._in_use + need > self.capacity:
                break
            self._queue.popleft()
            self._in_use += need
            self.acquisitions += 1
            self.total_wait_time += self.sim.now - t_enq
            ev.trigger(None)

    def cancel(self, event: Event) -> bool:
        """Withdraw a still-queued acquire request.

        Returns True if ``event`` was waiting in the queue (it will now
        never trigger).  Removing a head request whose ``units`` demand
        was blocking smaller requests behind it re-runs FIFO granting.
        A request that was already granted cannot be cancelled — the
        holder owns capacity and must :meth:`release` it.
        """
        for i, (ev, _units, _t_enq) in enumerate(self._queue):
            if ev is event:
                del self._queue[i]
                self._grant_queued()
                return True
        return False

    def use(self, hold_time: float, units: int = 1):
        """Generator helper: acquire, hold ``hold_time``, release.

        Exception-safe in every phase: if the calling process is
        ``kill()``ed (or any exception is thrown in) while *holding*,
        the units are released; while still *queued* for the grant, the
        request is cancelled — either way no capacity leaks.
        """
        # The kill path releases via cancel(), not release(), which
        # the static leak check cannot model.
        grant = self.acquire(units)        # repro: noqa[PY012]
        try:
            yield grant
            yield hold_time
        finally:
            if grant.triggered:
                self.release(units)
            else:
                self.cancel(grant)

    #: Pearl-DSL spelling of :meth:`use`.
    using = use

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
                f"queued={len(self._queue)}>")
