"""Message channels — Pearl's synchronous and asynchronous object messages.

Pearl models communicate by sending messages between simulation objects.
:class:`Channel` provides both flavours used by the Mermaid templates:

* **asynchronous** (``capacity=None`` or a positive bound): the sender
  deposits the message and continues (blocking only when a bounded buffer
  is full);
* **synchronous / rendezvous** (``capacity=0``): sender and receiver must
  meet — whichever arrives first blocks for the other, exactly the
  semantics of Mermaid's blocking ``send``/``recv`` operations.

Both :meth:`Channel.send` and :meth:`Channel.receive` return kernel
:class:`~repro.pearl.kernel.Event` objects that the calling process must
``yield``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .errors import ChannelClosedError, SimulationError
from .kernel import Event, Simulator

__all__ = ["Channel"]


class Channel:
    """A FIFO message channel between simulation processes.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        ``None`` — unbounded asynchronous buffer;
        ``0`` — rendezvous (synchronous);
        ``k > 0`` — bounded asynchronous buffer of ``k`` messages.
    name:
        Diagnostic label.
    """

    __slots__ = ("sim", "name", "capacity", "_buffer", "_senders",
                 "_receivers", "closed", "sent_count", "received_count",
                 "max_buffered")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity < 0:
            raise SimulationError(f"channel capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.name = name or "channel"
        self.capacity = capacity
        self._buffer: deque = deque()
        # Pending senders: (event_to_wake_sender, message)
        self._senders: deque = deque()
        # Pending receivers: event to trigger with the message
        self._receivers: deque = deque()
        self.closed = False
        self.sent_count = 0
        self.received_count = 0
        self.max_buffered = 0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        """Number of buffered (deposited but not yet received) messages."""
        return len(self._buffer)

    @property
    def waiting_receivers(self) -> int:
        return len(self._receivers)

    @property
    def waiting_senders(self) -> int:
        return len(self._senders)

    # -- operations ----------------------------------------------------------

    def send(self, message: Any) -> Event:
        """Deposit ``message``; yield the returned event to complete the send.

        For a rendezvous channel the event triggers when a receiver takes
        the message.  For a buffered channel it triggers immediately
        unless the buffer is full.
        """
        if self.closed:
            raise ChannelClosedError(f"send on closed channel {self.name!r}")
        sim = self.sim
        done = Event(sim, f"{self.name}.send")
        self.sent_count += 1
        if sim.sanitizer is not None:
            sim.sanitizer.record_channel(self.name, sim.now, "send",
                                         process=sim.current_process)
        if sim.tracer is not None:
            sim.tracer.channel_send(sim.now, self.name)
        if self._receivers:
            # A receiver is already waiting: hand over directly.
            recv_ev = self._receivers.popleft()
            recv_ev.trigger(message)
            done.trigger(None)
            return done
        if self.capacity == 0:
            # Rendezvous: block until a receiver arrives.
            self._senders.append((done, message))
            return done
        if self.capacity is not None and len(self._buffer) >= self.capacity:
            # Bounded buffer full: block until space frees.
            self._senders.append((done, message))
            return done
        self._buffer.append(message)
        if len(self._buffer) > self.max_buffered:
            self.max_buffered = len(self._buffer)
        done.trigger(None)
        return done

    def receive(self) -> Event:
        """Take the next message; yield the returned event to obtain it."""
        sim = self.sim
        got = Event(sim, f"{self.name}.recv")
        if sim.sanitizer is not None:
            sim.sanitizer.record_channel(self.name, sim.now, "recv",
                                         process=sim.current_process)
        if sim.tracer is not None:
            sim.tracer.channel_recv(sim.now, self.name)
        if self._buffer:
            message = self._buffer.popleft()
            self.received_count += 1
            got.trigger(message)
            # Buffer space freed: admit a blocked sender, if any.
            if self._senders:
                send_ev, pending = self._senders.popleft()
                self._buffer.append(pending)
                send_ev.trigger(None)
            return got
        if self._senders:
            # Rendezvous (or full-buffer) sender waiting: meet it now.
            send_ev, message = self._senders.popleft()
            self.received_count += 1
            send_ev.trigger(None)
            got.trigger(message)
            return got
        if self.closed:
            raise ChannelClosedError(f"receive on drained closed channel {self.name!r}")
        self._receivers.append(got)
        return got

    def try_receive(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, message)`` or ``(False, None)``."""
        if self._buffer:
            message = self._buffer.popleft()
            self.received_count += 1
            if self._senders:
                send_ev, pending = self._senders.popleft()
                self._buffer.append(pending)
                send_ev.trigger(None)
            return True, message
        if self._senders:
            send_ev, message = self._senders.popleft()
            self.received_count += 1
            send_ev.trigger(None)
            return True, message
        return False, None

    def close(self) -> None:
        """Mark the channel closed; further sends raise, drains still work."""
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else self.capacity
        return (f"<Channel {self.name!r} cap={cap} buf={len(self._buffer)} "
                f"rx-wait={len(self._receivers)} tx-wait={len(self._senders)}>")
