"""Stochastic application descriptions.

"These descriptions are either stochastic representations of application
behaviour, or they consist of the sources of real programs ..."
(Section 3).  A :class:`StochasticAppDescription` is the probabilistic
kind: it captures an application *class* — instruction mix, memory
locality, loop structure, communication granularity and pattern — with
a handful of distribution parameters, "which can be useful when
fast-prototyping new architectures" and "offers the flexibility to
adjust the application loads easily".
"""

from __future__ import annotations

from dataclasses import dataclass, field


__all__ = ["InstructionMix", "MemoryBehaviour", "CommunicationBehaviour",
           "StochasticAppDescription"]


@dataclass
class InstructionMix:
    """Relative frequencies of the computational operations.

    Weights need not sum to one; they are normalized at generation time.
    ``ifetch`` operations are added implicitly (one per instruction),
    modelling the instruction-fetch stream separately.
    """

    load: float = 0.22
    store: float = 0.12
    loadc: float = 0.08
    add: float = 0.26
    sub: float = 0.08
    mul: float = 0.06
    div: float = 0.01
    branch: float = 0.14
    call: float = 0.015
    ret: float = 0.015
    #: probability an arithmetic op is float (vs int); floats split evenly
    #: between single and double precision.
    float_fraction: float = 0.3
    #: probability a memory access is a FLOAT64 (vs INT32) datum.
    double_data_fraction: float = 0.4

    def weights(self) -> list[tuple[str, float]]:
        pairs = [(k, getattr(self, k)) for k in
                 ("load", "store", "loadc", "add", "sub", "mul", "div",
                  "branch", "call", "ret")]
        total = sum(w for _, w in pairs)
        if total <= 0:
            raise ValueError("instruction mix weights must be positive")
        return [(k, w / total) for k, w in pairs]


@dataclass
class MemoryBehaviour:
    """Synthetic data-address stream parameters.

    A fraction of accesses walk sequentially through the working set
    (stride = datum size); the rest are uniform random within it.  Code
    addresses live in a separate region and follow the loop model below.
    """

    working_set_bytes: int = 256 * 1024
    sequential_fraction: float = 0.6
    data_base: int = 0x1000_0000
    stack_base: int = 0x7000_0000
    #: fraction of accesses that go to the (small, hot) stack region.
    stack_fraction: float = 0.25
    stack_bytes: int = 4 * 1024

    def validate(self) -> None:
        if self.working_set_bytes <= 0 or self.stack_bytes <= 0:
            raise ValueError("working set sizes must be positive")
        for f in (self.sequential_fraction, self.stack_fraction):
            if not 0.0 <= f <= 1.0:
                raise ValueError(f"fraction {f} outside [0, 1]")


@dataclass
class CommunicationBehaviour:
    """Synthetic communication structure.

    Communication is generated in *rounds* so that sends and receives
    always match (pairings within a round are drawn from a seeded RNG
    shared by all nodes): in each round nodes are paired off and each
    pair exchanges one message in both directions — the lower-numbered
    node sends first, the higher-numbered receives first, which is
    deadlock-free by construction.
    """

    #: mean computational operations (or task cycles) between rounds.
    mean_ops_between_rounds: float = 2000.0
    #: message size distribution: log-uniform between min and max bytes.
    min_message_bytes: int = 64
    max_message_bytes: int = 8192
    #: probability a message uses asynchronous (asend/arecv) transfer.
    async_fraction: float = 0.0
    #: "neighbour" pairing keeps partners close (node i with i^1);
    #: "random" draws a random perfect matching each round.
    pattern: str = "random"

    def validate(self) -> None:
        if self.mean_ops_between_rounds <= 0:
            raise ValueError("mean_ops_between_rounds must be positive")
        if not (0 < self.min_message_bytes <= self.max_message_bytes):
            raise ValueError("bad message size range")
        if not 0.0 <= self.async_fraction <= 1.0:
            raise ValueError("async_fraction outside [0, 1]")
        if self.pattern not in ("random", "neighbour"):
            raise ValueError(f"unknown pattern {self.pattern!r}")


@dataclass
class StochasticAppDescription:
    """A complete probabilistic description of an application class."""

    name: str = "synthetic"
    mix: InstructionMix = field(default_factory=InstructionMix)
    memory: MemoryBehaviour = field(default_factory=MemoryBehaviour)
    comm: CommunicationBehaviour = field(default_factory=CommunicationBehaviour)
    #: loop model: code is a ring of basic blocks; at a block end the
    #: next block is the same block (loop back) with probability
    #: ``loopback_prob``, else the successor; far jumps are rare.
    n_basic_blocks: int = 64
    mean_block_len: float = 8.0
    loopback_prob: float = 0.7
    far_jump_prob: float = 0.05
    code_base: int = 0x0040_0000
    instr_bytes: int = 4
    #: task-level generation: mean cycles per compute task.
    mean_task_cycles: float = 5000.0

    def validate(self) -> None:
        self.mix.weights()
        self.memory.validate()
        self.comm.validate()
        if self.n_basic_blocks < 1 or self.mean_block_len < 1:
            raise ValueError("bad basic-block model")
        if not 0.0 <= self.loopback_prob <= 1.0:
            raise ValueError("loopback_prob outside [0, 1]")
        if not 0.0 <= self.far_jump_prob <= 1.0:
            raise ValueError("far_jump_prob outside [0, 1]")
        if self.mean_task_cycles <= 0:
            raise ValueError("mean_task_cycles must be positive")
