"""The variable descriptor table (VDT).

"Every variable used in the application has an entry in the so-called
variable descriptor table.  This table determines whether a variable is
global, local, or a function argument.  It further contains information
on the addresses of variables, whether they are placed in a register or
not and the types of the variables" (Section 5.1).

The annotation translator consults the VDT to turn a source-level
annotation ("load variable x[i]") into the appropriate memory operation
with a concrete address — or into nothing at all when the variable
lives in a register.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from ..operations.optypes import MemType

__all__ = ["VarKind", "VarDescriptor", "VariableDescriptorTable",
           "TargetABI", "VDTError"]


class VDTError(ValueError):
    """Bad variable declaration or lookup."""


class VarKind(Enum):
    """Storage class of a variable."""

    GLOBAL = "global"
    LOCAL = "local"
    ARGUMENT = "argument"


class TargetABI:
    """Addressing and runtime capabilities of the target processor.

    "[The annotation translator] performs the translation of annotations
    according to the runtime and addressing capabilities of the target
    processor" — this object is those capabilities: segment bases,
    alignment, and how many scalars the register allocator may keep in
    registers.
    """

    __slots__ = ("n_int_registers", "n_float_registers", "data_base",
                 "stack_base", "code_base", "instr_bytes", "stack_align")

    def __init__(self, n_int_registers: int = 16, n_float_registers: int = 16,
                 data_base: int = 0x1000_0000, stack_base: int = 0x7000_0000,
                 code_base: int = 0x0040_0000, instr_bytes: int = 4,
                 stack_align: int = 8) -> None:
        if min(n_int_registers, n_float_registers) < 0:
            raise VDTError("register counts must be >= 0")
        self.n_int_registers = n_int_registers
        self.n_float_registers = n_float_registers
        self.data_base = data_base
        self.stack_base = stack_base
        self.code_base = code_base
        self.instr_bytes = instr_bytes
        self.stack_align = stack_align


class VarDescriptor:
    """One VDT entry."""

    __slots__ = ("name", "kind", "mem_type", "n_elements", "address",
                 "in_register", "scope")

    def __init__(self, name: str, kind: VarKind, mem_type: MemType,
                 n_elements: int, address: int, in_register: bool,
                 scope: int) -> None:
        self.name = name
        self.kind = kind
        self.mem_type = mem_type
        self.n_elements = n_elements
        self.address = address
        self.in_register = in_register
        self.scope = scope

    @property
    def size_bytes(self) -> int:
        return self.n_elements * self.mem_type.nbytes

    def element_address(self, index: int = 0) -> int:
        if not 0 <= index < self.n_elements:
            raise VDTError(
                f"index {index} out of bounds for {self.name!r} "
                f"[{self.n_elements}]")
        return self.address + index * self.mem_type.nbytes

    def __repr__(self) -> str:
        loc = "reg" if self.in_register else f"{self.address:#x}"
        return (f"<Var {self.name!r} {self.kind.value} "
                f"{self.mem_type.name}[{self.n_elements}] @ {loc}>")


class VariableDescriptorTable:
    """Allocates addresses/registers for an instrumented program's variables.

    Register allocation policy (a "generic compiler" heuristic): scalar
    locals and arguments go to registers while any remain — integer
    scalars to integer registers, floating scalars to float registers;
    arrays and globals always live in memory.  Function scopes stack:
    :meth:`push_scope` on call, :meth:`pop_scope` on return frees the
    frame's registers and stack space.
    """

    def __init__(self, abi: Optional[TargetABI] = None) -> None:
        self.abi = abi if abi is not None else TargetABI()
        self._globals: dict[str, VarDescriptor] = {}
        self._scopes: list[dict[str, VarDescriptor]] = [{}]
        self._data_cursor = self.abi.data_base
        self._stack_cursors = [self.abi.stack_base]
        self._int_regs_free = [self.abi.n_int_registers]
        self._float_regs_free = [self.abi.n_float_registers]

    # -- scopes -----------------------------------------------------------

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    def push_scope(self) -> None:
        """Enter a function: a fresh frame with its own register budget."""
        self._scopes.append({})
        self._stack_cursors.append(self._stack_cursors[-1])
        self._int_regs_free.append(self.abi.n_int_registers)
        self._float_regs_free.append(self.abi.n_float_registers)

    def pop_scope(self) -> None:
        """Leave a function: frame variables (and registers) are freed."""
        if len(self._scopes) == 1:
            raise VDTError("cannot pop the outermost scope")
        self._scopes.pop()
        self._stack_cursors.pop()
        self._int_regs_free.pop()
        self._float_regs_free.pop()

    # -- declaration -------------------------------------------------------

    def declare(self, name: str, kind: VarKind, mem_type: MemType,
                n_elements: int = 1) -> VarDescriptor:
        """Add a VDT entry, assigning a register or an address."""
        if n_elements < 1:
            raise VDTError(f"{name!r}: n_elements must be >= 1")
        table = (self._globals if kind is VarKind.GLOBAL
                 else self._scopes[-1])
        if name in table:
            raise VDTError(f"variable {name!r} already declared in this scope")
        in_register = False
        address = 0
        scalar = n_elements == 1
        if kind is VarKind.GLOBAL:
            address = self._alloc_data(mem_type, n_elements)
        elif scalar and self._take_register(mem_type):
            in_register = True
        else:
            address = self._alloc_stack(mem_type, n_elements)
        desc = VarDescriptor(name, kind, mem_type, n_elements, address,
                             in_register, len(self._scopes) - 1)
        table[name] = desc
        return desc

    def _take_register(self, mem_type: MemType) -> bool:
        pool = (self._float_regs_free if mem_type.is_float
                else self._int_regs_free)
        if pool[-1] > 0:
            pool[-1] -= 1
            return True
        return False

    def _alloc_data(self, mem_type: MemType, n_elements: int) -> int:
        align = mem_type.nbytes
        self._data_cursor += (-self._data_cursor) % align
        addr = self._data_cursor
        self._data_cursor += n_elements * mem_type.nbytes
        return addr

    def _alloc_stack(self, mem_type: MemType, n_elements: int) -> int:
        align = max(mem_type.nbytes, self.abi.stack_align)
        cursor = self._stack_cursors[-1]
        cursor += (-cursor) % align
        addr = cursor
        self._stack_cursors[-1] = cursor + n_elements * mem_type.nbytes
        return addr

    # -- lookup -----------------------------------------------------------

    def lookup(self, name: str) -> VarDescriptor:
        """Innermost-scope-first name resolution (then globals)."""
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self._globals:
            return self._globals[name]
        raise VDTError(f"undeclared variable {name!r}")

    def __contains__(self, name: str) -> bool:
        try:
            self.lookup(name)
            return True
        except VDTError:
            return False

    def __len__(self) -> int:
        return len(self._globals) + sum(len(s) for s in self._scopes)
