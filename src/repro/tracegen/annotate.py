"""The annotation translator — "a kind of generic compiler" (Section 5.1).

"The annotation translator is a library that is linked together with the
instrumented applications, while the annotations simply are calls to the
library.  By executing the instrumented program, the annotations are
dynamically translated into the appropriate trace of operations."

Annotations describe *what the source program does* (read x, write y[i],
multiply, loop back, call f, send to node 3); the translator turns each
into the Table-1 operations a particular target processor would execute,
using the variable descriptor table for addressing and register
placement, and a virtual program counter for the instruction-fetch
stream.

Static code sites: every annotation call site is assigned a fixed
instruction address on first execution, so re-executing a loop body
"leads to recurring addresses of instruction fetches" exactly as the
paper requires (Section 3.3) — the trace generator evaluates the control
flow, the simulator just sees the fetch stream.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..operations.ops import (
    OpCode,
    Operation,
    arecv,
    asend,
    recv,
    send,
)
from ..operations.optypes import ArithType, MemType
from .vdt import TargetABI, VarDescriptor, VariableDescriptorTable, VarKind

__all__ = ["AnnotationTranslator"]

_ARITH_CODES = {
    "add": OpCode.ADD, "sub": OpCode.SUB,
    "mul": OpCode.MUL, "div": OpCode.DIV,
}


class AnnotationTranslator:
    """Translates source-level annotations into an operation stream.

    Parameters
    ----------
    emit:
        Sink called with each generated :class:`Operation` (typically a
        ``list.append`` or a node thread's buffer).
    abi:
        Target addressing/runtime capabilities.

    The translator owns a :class:`VariableDescriptorTable` and a virtual
    program counter.  It is deliberately sequential and deterministic:
    one translator per node thread.
    """

    def __init__(self, emit: Callable[[Operation], None],
                 abi: Optional[TargetABI] = None) -> None:
        self.abi = abi if abi is not None else TargetABI()
        self.vdt = VariableDescriptorTable(self.abi)
        self.emit = emit
        self._site_addr: dict = {}       # static call site -> instr address
        self._next_code_addr = self.abi.code_base
        self._call_stack: list[int] = []
        self.ops_emitted = 0
        # Operations are immutable value objects, so the recurring ops
        # of a static site (its ifetch; a loadc/arith/back-edge with
        # fixed operands) are built once and re-emitted by reference —
        # loop bodies then cost no allocations beyond their variable
        # memory accesses.
        self._ifetch_cache: dict = {}    # site -> shared IFETCH op
        self._pair_cache: dict = {}      # tagged key -> (ifetch, op)

    # -- the virtual program counter ------------------------------------

    def _site_address(self, site) -> int:
        """Fixed instruction address for a static annotation site."""
        addr = self._site_addr.get(site)
        if addr is None:
            addr = self._next_code_addr
            self._next_code_addr += self.abi.instr_bytes
            self._site_addr[site] = addr
        return addr

    def _site_ifetch(self, site) -> Operation:
        """The shared IFETCH operation of a static site."""
        op = self._ifetch_cache.get(site)
        if op is None:
            op = Operation(OpCode.IFETCH, 0, self._site_address(site))
            self._ifetch_cache[site] = op
        return op

    def _fetch(self, site) -> int:
        op = self._site_ifetch(site)
        self.emit(op)
        self.ops_emitted += 1
        return op.arg

    def _out(self, op: Operation) -> None:
        self.emit(op)
        self.ops_emitted += 1

    # -- variable declarations --------------------------------------------

    def declare_global(self, name: str, mem_type: MemType,
                       n_elements: int = 1) -> VarDescriptor:
        return self.vdt.declare(name, VarKind.GLOBAL, mem_type, n_elements)

    def declare_local(self, name: str, mem_type: MemType,
                      n_elements: int = 1) -> VarDescriptor:
        return self.vdt.declare(name, VarKind.LOCAL, mem_type, n_elements)

    def declare_argument(self, name: str, mem_type: MemType,
                         n_elements: int = 1) -> VarDescriptor:
        return self.vdt.declare(name, VarKind.ARGUMENT, mem_type, n_elements)

    # -- computational annotations -------------------------------------------

    def read(self, var: VarDescriptor, index: int = 0, *, site) -> None:
        """Use the value of ``var[index]``.

        Register-resident scalars cost nothing extra (the consuming
        instruction names the register); memory-resident variables emit
        an instruction fetch plus the load.
        """
        if var.in_register:
            return
        op = self._ifetch_cache.get(site)
        if op is None:
            op = Operation(OpCode.IFETCH, 0, self._site_address(site))
            self._ifetch_cache[site] = op
        emit = self.emit
        emit(op)
        emit(Operation(OpCode.LOAD, int(var.mem_type),
                       var.element_address(index)))
        self.ops_emitted += 2

    def write(self, var: VarDescriptor, index: int = 0, *, site) -> None:
        """Assign to ``var[index]``: ifetch + store (memory variables)."""
        if var.in_register:
            return
        op = self._ifetch_cache.get(site)
        if op is None:
            op = Operation(OpCode.IFETCH, 0, self._site_address(site))
            self._ifetch_cache[site] = op
        emit = self.emit
        emit(op)
        emit(Operation(OpCode.STORE, int(var.mem_type),
                       var.element_address(index)))
        self.ops_emitted += 2

    def const(self, mem_type: MemType = MemType.INT32, *, site) -> None:
        """Load an immediate: ifetch + loadc."""
        key = ("c", site, int(mem_type))
        pair = self._pair_cache.get(key)
        if pair is None:
            pair = (self._site_ifetch(site),
                    Operation(OpCode.LOADC, int(mem_type)))
            self._pair_cache[key] = pair
        emit = self.emit
        emit(pair[0])
        emit(pair[1])
        self.ops_emitted += 2

    def arith(self, kind: str, arith_type: ArithType = ArithType.INT,
              count: int = 1, *, site) -> None:
        """``count`` arithmetic operations of ``kind`` at one site."""
        key = ("a", site, kind, int(arith_type))
        pair = self._pair_cache.get(key)
        if pair is None:
            try:
                code = _ARITH_CODES[kind]
            except KeyError:
                raise ValueError(f"unknown arithmetic kind {kind!r}; "
                                 f"expected one of "
                                 f"{sorted(_ARITH_CODES)}") from None
            pair = (self._site_ifetch(site),
                    Operation(code, int(arith_type)))
            self._pair_cache[key] = pair
        f, o = pair
        emit = self.emit
        for _ in range(count):
            emit(f)
            emit(o)
        self.ops_emitted += 2 * count

    def branch(self, *, site, target_site=None) -> None:
        """A taken branch.  ``target_site`` defaults to the branch's own
        site (a tight loop back-edge, the common case)."""
        if target_site is None:
            key = ("b", site)
            pair = self._pair_cache.get(key)
            if pair is None:
                f = self._site_ifetch(site)
                pair = (f, Operation(OpCode.BRANCH, 0, f.arg))
                self._pair_cache[key] = pair
            emit = self.emit
            emit(pair[0])
            emit(pair[1])
            self.ops_emitted += 2
            return
        self._fetch(site)
        self._out(Operation(OpCode.BRANCH, 0,
                            self._site_address(target_site)))

    def call(self, *, site) -> int:
        """Procedure call: ifetch + call, new VDT scope.

        Returns the call-site address (used by :meth:`ret`).
        """
        addr = self._fetch(site)
        self._out(Operation(OpCode.CALL, 0, addr))
        self.vdt.push_scope()
        self._call_stack.append(addr)
        return addr

    def ret(self, *, site) -> None:
        """Procedure return: ifetch + ret, pops the VDT scope."""
        if not self._call_stack:
            raise ValueError("ret annotation without a matching call")
        return_to = self._call_stack.pop() + self.abi.instr_bytes
        self._fetch(site)
        self._out(Operation(OpCode.RET, 0, return_to))
        self.vdt.pop_scope()

    # -- communication annotations ---------------------------------------------

    # "Annotations describing communication behaviour at the application
    # level directly map onto the operations listed in Table 1."

    def send(self, size: int, dest: int) -> Operation:
        op = send(size, dest)
        self._out(op)
        return op

    def recv(self, source: int) -> Operation:
        op = recv(source)
        self._out(op)
        return op

    def asend(self, size: int, dest: int) -> Operation:
        op = asend(size, dest)
        self._out(op)
        return op

    def arecv(self, source: int) -> Operation:
        op = arecv(source)
        self._out(op)
        return op
